//! # dsn — Distributed Shortcut Networks (umbrella crate)
//!
//! Re-exports the full public API of the DSN reproduction workspace:
//!
//! * [`core`] — graph substrate + every topology (DSN and baselines)
//! * [`metrics`] — parallel graph analysis (diameter, ASPL, ...)
//! * [`layout`] — machine-room floorplan and cable-length model
//! * [`route`] — DSN custom routing, up*/down*, deadlock analysis
//! * [`sim`] — cycle-driven flit-level network simulator
//!
//! ```
//! use dsn::core::dsn::Dsn;
//! use dsn::metrics::path_stats;
//! use dsn::route::dsn_routing::route;
//!
//! // The paper's headline structure in three lines:
//! let dsn = Dsn::new_clean(256).unwrap();
//! assert!(dsn.graph().max_degree() <= 5);                      // Fact 1
//! assert!(path_stats(dsn.graph()).diameter as f64
//!         <= 2.5 * dsn.p() as f64 + dsn.r() as f64);           // Thm 1b
//! assert!(route(&dsn, 0, 200).unwrap().hops()
//!         <= 3 * dsn.p() as usize + dsn.r());                  // Fact 2
//! ```

#![warn(missing_docs)]

pub use dsn_core as core;
pub use dsn_layout as layout;
pub use dsn_metrics as metrics;
pub use dsn_route as route;
pub use dsn_sim as sim;
