//! Cross-crate fault oracles: the simulator's delivery behaviour after a
//! fault must agree with the static connectivity analysis of the survivor
//! graph — `dsn-core::fault` component labelling and the `dsn-metrics`
//! max-flow connectivity kernels are the ground truth.

use dsn::core::fault::{components_masked, is_connected_masked, survivor_graph, EdgeMask};
use dsn::core::graph::{Graph, LinkKind};
use dsn::metrics::{edge_connectivity, edge_disjoint_paths};
use dsn::sim::{AdaptiveEscape, FaultKind, FaultPlan, SimConfig, SimRouting, Simulator, Workload};
use std::sync::Arc;

/// A ring of `n` switches — the one-edge-per-cut backbone whose min-cuts
/// are trivially enumerable (any two edges form one).
fn ring(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        g.add_edge(i.min(j), i.max(j), LinkKind::Ring);
    }
    g
}

fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 0,
        measure_cycles: 1_000,
        drain_cycles: 30_000,
        ..SimConfig::test_small()
    }
}

/// Run a closed batch with the faults landing at cycle 0 — i.e. before any
/// packet exists — so drops are purely routing-determined (unroutable on
/// the survivor graph), never in-flight casualties.
fn run_batch(g: &Arc<Graph>, plan: FaultPlan, workload: Workload) -> dsn::sim::RunStats {
    let cfg = SimConfig {
        fault_plan: plan,
        ..cfg()
    };
    let routing: Arc<dyn SimRouting> = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    Simulator::with_workload(g.clone(), cfg, routing, workload, 5).run()
}

fn masked(g: &Graph, dead: &[usize]) -> EdgeMask {
    let mut m = EdgeMask::fully_alive(g);
    for &e in dead {
        m.set_edge_admin(g, e, false);
    }
    m
}

/// Connected survivor at cycle 0 ⇒ nothing is unroutable: the batch fully
/// delivers with zero drops, matching `is_connected_masked` and a positive
/// survivor edge connectivity.
#[test]
fn connected_survivor_delivers_everything() {
    let g = Arc::new(ring(10));
    let dead = [3usize];
    let mask = masked(&g, &dead);
    assert!(
        is_connected_masked(&g, &mask),
        "ring minus one edge is a path"
    );
    let survivor = survivor_graph(&g, &mask);
    assert!(edge_connectivity(&survivor) >= 1);

    let stats = run_batch(&g, FaultPlan::single_link(3, 0), Workload::all_to_all(10));
    assert_eq!(stats.total_packets_all_time, 10 * 9);
    assert_eq!(stats.dropped_packets_all_time, 0);
    assert!(stats.completion_cycle.is_some(), "all delivered");
}

/// Killing a min-cut (two ring edges) partitions delivery counts exactly:
/// delivered == Σ_i |C_i|·(|C_i|−1) over the masked components, dropped ==
/// the cross-component remainder, and per-pair deliverability matches the
/// max-flow oracle pair by pair.
#[test]
fn min_cut_partitions_delivery_exactly() {
    let n = 12;
    let g = Arc::new(ring(n));
    // Edges 0 (0-1) and 6 (6-7) form a min-cut: components {1..=6} and
    // {7..=11, 0}.
    let dead = [0usize, 6];
    let mask = masked(&g, &dead);
    assert!(!is_connected_masked(&g, &mask));
    let labels = components_masked(&g, &mask);
    let survivor = survivor_graph(&g, &mask);
    assert_eq!(edge_connectivity(&survivor), 0, "disconnected survivor");

    // Σ over components of ordered same-component host pairs (one host per
    // switch under test_small).
    let mut comp_size = std::collections::HashMap::new();
    for &l in &labels {
        *comp_size.entry(l).or_insert(0u64) += 1;
    }
    let expected_delivered: u64 = comp_size.values().map(|&c| c * (c - 1)).sum();
    assert_eq!(expected_delivered, 2 * 6 * 5, "two components of six");

    let stats = run_batch(&g, FaultPlan::burst(&dead, 0), Workload::all_to_all(n));
    assert_eq!(stats.total_packets_all_time, (n * (n - 1)) as u64);
    assert_eq!(stats.delivered_packets, expected_delivered);
    assert_eq!(
        stats.dropped_packets_all_time,
        (n * (n - 1)) as u64 - expected_delivered
    );
    assert!(
        stats.completion_cycle.is_some(),
        "batch resolves once cross-component packets are dropped"
    );

    // Pair-by-pair: the simulator delivers (s, d) iff the survivor graph
    // has positive max-flow between them iff they share a component label.
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let reachable = labels[s] == labels[d];
            assert_eq!(
                edge_disjoint_paths(&survivor, s, d) > 0,
                reachable,
                "max-flow oracle disagrees with components for {s}->{d}"
            );
            let pair = run_batch(
                &g,
                FaultPlan::burst(&dead, 0),
                Workload::Closed {
                    packets: vec![(s, d)],
                },
            );
            assert_eq!(
                pair.delivered_packets, reachable as u64,
                "sim reachability diverges from oracle for {s}->{d}"
            );
            assert_eq!(pair.dropped_packets_all_time, !reachable as u64);
        }
    }
}

/// A switch death mid-ring: the survivor components from the node mask
/// drive delivery exactly, same as edge cuts.
#[test]
fn switch_death_matches_node_masked_components() {
    let n = 9;
    let g = Arc::new(ring(n));
    let mut mask = EdgeMask::fully_alive(&g);
    mask.set_node_up(&g, 4, false);
    let labels = components_masked(&g, &mask);
    // Hosts on a dead switch can neither send nor receive; every pair
    // touching switch 4 drops, the rest (a path of 8 switches) delivers.
    let alive: Vec<usize> = (0..n).filter(|&v| v != 4).collect();
    assert!(alive
        .iter()
        .all(|&a| alive.iter().all(|&b| labels[a] == labels[b])));

    let plan = FaultPlan::none().with_event(0, FaultKind::SwitchDown(4));
    let stats = run_batch(&g, plan, Workload::all_to_all(n));
    let expected = (alive.len() * (alive.len() - 1)) as u64;
    assert_eq!(stats.delivered_packets, expected);
    assert_eq!(
        stats.dropped_packets_all_time,
        (n * (n - 1)) as u64 - expected
    );
    assert!(stats.completion_cycle.is_some());
}
