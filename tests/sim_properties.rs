//! Property tests over the simulator: for arbitrary small topologies,
//! loads and seeds, the engine must uphold its accounting invariants —
//! no panics, sane ratios, conservation between offered and delivered.

use dsn::core::topology::TopologySpec;
use dsn::sim::{
    AdaptiveEscape, FaultPlan, RetryPolicy, SimConfig, Simulator, TrafficPattern, Workload,
};
use proptest::prelude::*;
use std::sync::Arc;

fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 100,
        measure_cycles: 1_500,
        drain_cycles: 3_000,
        ..SimConfig::test_small()
    }
}

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (8usize..40).prop_map(|n| TopologySpec::Ring { n }),
        (8usize..40).prop_map(|n| TopologySpec::Dsn {
            n,
            x: dsn::core::util::ceil_log2(n) - 1
        }),
        (3usize..7).prop_map(|k| TopologySpec::Torus2D { n: k * k }),
        (8usize..33).prop_map(|n| TopologySpec::DlnRandom {
            n,
            x: 2,
            y: 2,
            seed: 7
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn open_loop_invariants(spec in arb_topology(), rate_millis in 1u32..30, seed in 0u64..100) {
        let built = spec.build().unwrap();
        let g = Arc::new(built.graph);
        let cfg = cfg();
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let rate = rate_millis as f64 / 1000.0;
        let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, seed).run();

        prop_assert!(stats.delivery_ratio() >= 0.0 && stats.delivery_ratio() <= 1.0);
        prop_assert!(stats.delivered_packets <= stats.created_packets);
        prop_assert!(stats.accepted_flits_per_cycle_per_host >= 0.0);
        prop_assert!(stats.max_channel_utilization <= 1.0 + 1e-9);
        prop_assert!(stats.mean_channel_utilization <= stats.max_channel_utilization + 1e-9);
        if stats.delivered_packets > 0 {
            prop_assert!(stats.min_latency_cycles <= stats.max_latency_cycles);
            prop_assert!(stats.avg_latency_cycles >= stats.min_latency_cycles as f64);
            prop_assert!(stats.avg_latency_cycles <= stats.max_latency_cycles as f64);
        }
        // Adaptive + escape on 4 VCs is deadlock-free; the watchdog must
        // never fire regardless of load.
        prop_assert!(!stats.deadlock_suspected, "stall {}", stats.longest_stall_cycles);
    }

    #[test]
    fn closed_batches_conserve_packets(spec in arb_topology(), shift in 1usize..5, seed in 0u64..50) {
        let built = spec.build().unwrap();
        let n = built.graph.node_count();
        let g = Arc::new(built.graph);
        let mut c = cfg();
        c.drain_cycles = 200_000;
        let hosts = n * c.hosts_per_switch;
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), c.vcs));
        let w = Workload::ring_shift(hosts, shift % hosts.max(1), 2);
        let expected = match &w {
            Workload::Closed { packets } => packets.len() as u64,
            _ => unreachable!(),
        };
        let stats = Simulator::with_workload(g, c, routing, w, seed).run();
        prop_assert_eq!(stats.total_packets_all_time, expected);
        prop_assert!(stats.completion_cycle.is_some(), "batch did not drain");
    }

    /// Fault tolerance property: for any seeded fault schedule that keeps
    /// the survivor graph connected, every packet not explicitly dropped by
    /// a fault is eventually delivered — `completion_cycle` closes the
    /// delivered + dropped == created accounting with no retry pending —
    /// and the deadlock watchdog never fires. Closed batch, so the run has
    /// a well-defined end state.
    #[test]
    fn connected_faults_deliver_every_survivor(
        spec in arb_topology(),
        shift in 1usize..5,
        fault_count in 1usize..4,
        fault_seed in 0u64..1_000,
        seed in 0u64..100,
    ) {
        let built = spec.build().unwrap();
        let n = built.graph.node_count();
        let g = Arc::new(built.graph);
        let mut cfg = cfg();
        cfg.drain_cycles = 200_000;
        cfg.fault_plan = FaultPlan::random_connected(&g, fault_seed, fault_count, 50, 100)
            .with_retry(RetryPolicy::new(2, 50, 25));
        let hosts = n * cfg.hosts_per_switch;
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let w = Workload::ring_shift(hosts, shift % hosts.max(1), 2);
        let stats = Simulator::with_workload(g, cfg, routing, w, seed).run();

        prop_assert!(!stats.deadlock_suspected, "watchdog fired under faults");
        prop_assert!(
            stats.completion_cycle.is_some(),
            "undelivered non-dropped packets remain (dropped {} retried {} of {})",
            stats.dropped_packets_all_time,
            stats.retried_packets,
            stats.total_packets_all_time
        );
        prop_assert!(stats.dropped_packets_all_time <= stats.total_packets_all_time);
        prop_assert!(stats.delivery_ratio() >= 0.0 && stats.delivery_ratio() <= 1.0);
    }
}
