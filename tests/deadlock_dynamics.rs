//! The static deadlock analysis and the dynamic simulator must agree: the
//! provably-cyclic single-VC basic DSN routing wedges under load, while the
//! provably-acyclic DSN-V discipline never stalls.

use dsn::core::dsn::Dsn;
use dsn::route::deadlock::{basic_cdg, dsnv_cdg};
use dsn::sim::{SimConfig, Simulator, SourceRouted, TrafficPattern};
use std::sync::Arc;

fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 10_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    }
}

fn run(dsn: &Arc<Dsn>, unsafe_mode: bool, gbps: f64) -> dsn::sim::RunStats {
    let graph = Arc::new(dsn.graph().clone());
    let cfg = cfg();
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let routing: Arc<dyn dsn::sim::SimRouting> = if unsafe_mode {
        Arc::new(SourceRouted::dsn_basic_single_vc(dsn.clone()))
    } else {
        Arc::new(SourceRouted::dsn_custom(dsn.clone()))
    };
    Simulator::new(graph, cfg, routing, TrafficPattern::Uniform, rate, 0xDEAD).run()
}

#[test]
fn static_and_dynamic_analyses_agree() {
    let dsn = Arc::new(Dsn::new(60, 5).unwrap());

    // Static: basic is cyclic, DSN-V is acyclic.
    assert!(basic_cdg(&dsn).find_cycle().is_some());
    assert!(dsnv_cdg(&dsn).is_acyclic());

    // Dynamic: under pressure the cyclic scheme wedges...
    let bad = run(&dsn, true, 4.0);
    assert!(
        bad.deadlock_suspected,
        "expected a deadlock; longest stall {} cycles, delivery {:.3}",
        bad.longest_stall_cycles,
        bad.delivery_ratio()
    );
    assert!(bad.delivery_ratio() < 0.5);

    // ... while DSN-V keeps making progress (it may saturate, but every
    // stall stays within normal pipeline waits).
    let good = run(&dsn, false, 4.0);
    assert!(
        !good.deadlock_suspected,
        "DSN-V stalled {} cycles",
        good.longest_stall_cycles
    );
    assert!(good.delivered_packets > 0);
}

#[test]
fn both_schemes_fine_at_trickle_load() {
    // At near-zero load even the unsafe scheme rarely forms the cycle in a
    // short run — deadlock is a congestion phenomenon.
    let dsn = Arc::new(Dsn::new(60, 5).unwrap());
    let bad = run(&dsn, true, 0.5);
    assert!(
        bad.delivery_ratio() > 0.9,
        "delivery {}",
        bad.delivery_ratio()
    );
}
