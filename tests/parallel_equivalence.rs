//! Serial-vs-parallel equivalence of the analysis and sweep kernels.
//!
//! Every parallel kernel in the workspace merges integer per-item partials
//! in item order (the vendored rayon materializes results in index order),
//! so the parallel result must be **bit-identical** to the serial loop —
//! these tests assert full structural equality, including `f64` fields,
//! with a forced multi-worker policy so the chunked worker path actually
//! runs even on a single-core machine.

use dsn::core::dsn::Dsn;
use dsn::core::parallel::Parallelism;
use dsn::core::topology::TopologySpec;
use dsn::metrics::{path_stats, path_stats_with, sampled_path_stats_with};
use dsn::route::{routing_stats, routing_stats_serial, routing_stats_with};
use dsn::sim::sweep::{find_saturation_with, load_sweep_with};
use dsn::sim::{AdaptiveEscape, SimConfig, TrafficPattern};
use std::sync::Arc;

const FORCED_WORKERS: usize = 4;

#[test]
fn routing_stats_parallel_matches_serial_on_dsn_p_minus_1_1024() {
    // DSN-(p-1) at target 1024 resolves to n = 1020, p = 10, x = 9.
    let dsn = Dsn::new_clean(1024).expect("clean DSN at 1024");
    assert_eq!(dsn.n(), 1020);
    let serial = routing_stats_serial(&dsn);
    let parallel = routing_stats_with(&dsn, &Parallelism::threads(FORCED_WORKERS));
    assert_eq!(
        serial, parallel,
        "parallel routing sweep must be bit-identical"
    );
    assert_eq!(serial, routing_stats(&dsn));
    assert_eq!(serial.pairs, 1020 * 1019);
}

#[test]
fn path_stats_parallel_matches_serial_on_dsn_torus_dln() {
    let specs = [
        TopologySpec::Dsn { n: 256, x: 7 },
        TopologySpec::Torus2D { n: 256 },
        TopologySpec::DlnRandom {
            n: 256,
            x: 2,
            y: 2,
            seed: 0xD5B0_2013,
        },
    ];
    for spec in specs {
        let built = spec.build().expect("spec must build");
        let serial = path_stats_with(&built.graph, &Parallelism::serial());
        let parallel = path_stats_with(&built.graph, &Parallelism::threads(FORCED_WORKERS));
        assert_eq!(
            serial, parallel,
            "{}: APSP must be bit-identical",
            built.name
        );
        assert_eq!(serial, path_stats(&built.graph), "{}", built.name);

        let s_sampled = sampled_path_stats_with(&built.graph, 37, &Parallelism::serial());
        let p_sampled =
            sampled_path_stats_with(&built.graph, 37, &Parallelism::threads(FORCED_WORKERS));
        assert_eq!(
            s_sampled, p_sampled,
            "{}: sampled APSP must match",
            built.name
        );
    }
}

#[test]
fn load_sweep_parallel_matches_serial() {
    let g = Arc::new(
        TopologySpec::Torus2D { n: 16 }
            .build()
            .expect("torus")
            .graph,
    );
    let cfg = SimConfig::test_small();
    let vcs = cfg.vcs;
    let grid = [0.5, 2.0, 6.0];
    let run = |par: &Parallelism| {
        load_sweep_with(
            "torus-16",
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            &grid,
            7,
            par,
        )
    };
    let serial = run(&Parallelism::serial());
    let parallel = run(&Parallelism::threads(FORCED_WORKERS));
    assert_eq!(serial.points.len(), parallel.points.len());
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.offered_gbps, p.offered_gbps);
        assert_eq!(
            s.stats, p.stats,
            "sweep point {} must be bit-identical",
            s.offered_gbps
        );
    }
}

#[test]
fn find_saturation_parallel_matches_serial() {
    let g = Arc::new(TopologySpec::Ring { n: 8 }.build().expect("ring").graph);
    let cfg = SimConfig::test_small();
    let vcs = cfg.vcs;
    let run = |par: &Parallelism| {
        find_saturation_with(
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            1.0,
            200.0,
            10.0,
            3,
            par,
        )
    };
    let serial = run(&Parallelism::serial());
    let parallel = run(&Parallelism::threads(FORCED_WORKERS));
    assert_eq!(
        serial.to_bits(),
        parallel.to_bits(),
        "sectioned saturation search must not depend on the worker count"
    );
    assert!((1.0..=200.0).contains(&serial));
}
