//! Integration tests pinning the paper's headline *graph-level* claims
//! (the in-text "tables" T1–T3 of DESIGN.md) across crates.

use dsn::core::topology::TopologySpec;
use dsn::layout::{cable_stats, CableModel, LinearPlacement};
use dsn::metrics::path_stats;

const SEED: u64 = 0xD5B0_2013;

fn build(spec: TopologySpec) -> dsn::core::BuiltTopology {
    spec.build().expect("topology builds")
}

#[test]
fn t1_dsn_beats_torus_and_tracks_random_on_diameter() {
    // Figure 7 shape: torus diameter grows ~sqrt(N); DSN stays logarithmic,
    // within 1.5x of RANDOM; improvement over torus grows with N and
    // reaches >= 60% at N = 2048 (paper: up to 67%).
    let mut last_improvement = 0.0;
    for k in [6u32, 8, 11] {
        let n = 1usize << k;
        let [dsn, torus, random] = TopologySpec::paper_trio(n, SEED);
        let d_dsn = path_stats(&build(dsn).graph).diameter as f64;
        let d_torus = path_stats(&build(torus).graph).diameter as f64;
        let d_rand = path_stats(&build(random).graph).diameter as f64;
        assert!(d_dsn < d_torus, "n={n}: DSN {d_dsn} !< torus {d_torus}");
        assert!(
            d_dsn <= 1.6 * d_rand,
            "n={n}: DSN {d_dsn} too far from RANDOM {d_rand}"
        );
        last_improvement = (d_torus - d_dsn) / d_torus;
    }
    assert!(
        last_improvement >= 0.60,
        "diameter improvement at 2048 is {last_improvement:.2}, paper cites up to 0.67"
    );
}

#[test]
fn t1_aspl_improvement_grows_with_size() {
    // Figure 8 shape, and the paper's "up to 55%" ASPL gain (we hit ~67%
    // at 2048; the paper's sweep stops there too — accept >= 50%).
    let mut best = 0.0f64;
    for k in [6u32, 9, 11] {
        let n = 1usize << k;
        let [dsn, torus, _] = TopologySpec::paper_trio(n, SEED);
        let a_dsn = path_stats(&build(dsn).graph).aspl;
        let a_torus = path_stats(&build(torus).graph).aspl;
        assert!(a_dsn < a_torus, "n={n}");
        best = best.max((a_torus - a_dsn) / a_torus);
    }
    assert!(best >= 0.50, "best ASPL improvement {best:.2} < 0.50");
}

#[test]
fn t3_aspl_trio_at_64_matches_paper() {
    // Paper Section VII.B: 3.2 / 3.2 / 4.1 hops for DSN / RANDOM / torus.
    let [dsn, torus, random] = TopologySpec::paper_trio(64, SEED);
    let a_dsn = path_stats(&build(dsn).graph).aspl;
    let a_rand = path_stats(&build(random).graph).aspl;
    let a_torus = path_stats(&build(torus).graph).aspl;
    assert!((a_dsn - 3.2).abs() < 0.4, "DSN aspl {a_dsn} vs paper 3.2");
    assert!(
        (a_rand - 3.2).abs() < 0.4,
        "RANDOM aspl {a_rand} vs paper 3.2"
    );
    assert!(
        (a_torus - 4.1).abs() < 0.1,
        "torus aspl {a_torus} vs paper 4.1"
    );
}

#[test]
fn t2_cable_length_ordering() {
    // Figure 9: DSN average cable length is near torus and far below
    // RANDOM; at N = 2048 the reduction vs RANDOM reaches the paper's 38%.
    let model = CableModel::default();
    for k in [8u32, 11] {
        let n = 1usize << k;
        let placement = LinearPlacement::new(n, model.switches_per_cabinet);
        let [dsn, torus, random] = TopologySpec::paper_trio(n, SEED);
        let c_dsn = cable_stats(&build(dsn).graph, &placement, &model).avg_m;
        let c_torus = cable_stats(&build(torus).graph, &placement, &model).avg_m;
        let c_rand = cable_stats(&build(random).graph, &placement, &model).avg_m;
        assert!(c_dsn < c_rand, "n={n}: DSN {c_dsn} !< RANDOM {c_rand}");
        assert!(
            c_dsn <= 1.35 * c_torus,
            "n={n}: DSN {c_dsn} not near torus {c_torus}"
        );
        if n == 2048 {
            let reduction = (c_rand - c_dsn) / c_rand;
            assert!(
                reduction >= 0.30,
                "cable reduction {reduction:.2} at 2048, paper cites up to 0.38"
            );
        }
    }
}

#[test]
fn section6b_degree6_dsn_beats_3d_torus_cable() {
    // "our DSN with degree 6 surprisingly has shorter average cable length
    // than 3-D torus in conventional floor layout"
    let model = CableModel::default();
    for n in [512usize, 2048] {
        let placement = LinearPlacement::new(n, model.switches_per_cabinet);
        let dsn_e = build(TopologySpec::DsnE { n });
        let t3 = build(TopologySpec::Torus3D { n });
        let c_dsn = cable_stats(&dsn_e.graph, &placement, &model).avg_m;
        let c_t3 = cable_stats(&t3.graph, &placement, &model).avg_m;
        assert!(c_dsn < c_t3, "n={n}: DSN-E {c_dsn} !< 3-D torus {c_t3}");
    }
}

#[test]
fn degree4_counterparts_are_fair() {
    // The comparison is only meaningful if all three contenders really have
    // (average) degree ~4 — the paper stresses "same average degree".
    for n in [64usize, 256, 2048] {
        let [dsn, torus, random] = TopologySpec::paper_trio(n, SEED);
        let g_dsn = build(dsn).graph;
        let g_torus = build(torus).graph;
        let g_rand = build(random).graph;
        assert!(g_dsn.avg_degree() <= 4.0 + 1e-9);
        assert!(g_dsn.avg_degree() >= 3.4, "DSN degree too low at n={n}");
        assert_eq!(g_torus.avg_degree(), 4.0);
        assert_eq!(g_rand.avg_degree(), 4.0);
    }
}
