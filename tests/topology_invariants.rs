//! Property tests over every topology family: whatever the parameters,
//! a successfully built topology must be connected, loop-free, degree-sane
//! and reproducible.

use dsn::core::topology::TopologySpec;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (8usize..300).prop_map(|n| {
            let p = dsn::core::util::ceil_log2(n);
            TopologySpec::Dsn { n, x: p - 1 }
        }),
        (8usize..300, 1u32..4).prop_map(|(n, xsel)| {
            let p = dsn::core::util::ceil_log2(n);
            TopologySpec::Dsn {
                n,
                x: 1 + (xsel % (p - 1)).min(p - 2),
            }
        }),
        (8usize..200).prop_map(|n| TopologySpec::DsnE { n }),
        (16usize..200, 1u32..4).prop_map(|(n, x)| TopologySpec::DsnD { n, x }),
        (4usize..150).prop_map(|n| TopologySpec::Ring { n: n.max(4) }),
        (2usize..12, 2usize..12).prop_map(|(a, b)| TopologySpec::Torus2D { n: a * b * 4 }),
        (8usize..150, 0u64..50).prop_map(|(n, seed)| TopologySpec::DlnRandom {
            n,
            x: 2,
            y: 2,
            seed
        }),
        (3usize..14, 0u64..20).prop_map(|(side, seed)| TopologySpec::Kleinberg {
            side,
            q: 1,
            seed
        }),
        (3u32..9).prop_map(|dim| TopologySpec::Hypercube { dim }),
        (3u32..7).prop_map(|dim| TopologySpec::Ccc { dim }),
        (2usize..4, 2u32..7).prop_map(|(base, dim)| TopologySpec::DeBruijn { base, dim }),
        (2usize..6, 2u32..4).prop_map(|(k, nflat)| TopologySpec::FlattenedButterfly { k, nflat }),
        (2usize..7, 1usize..4).prop_map(|(a, h)| TopologySpec::Dragonfly { a, h }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn built_topologies_are_sane(spec in arb_spec()) {
        let built = match spec.build() {
            Ok(b) => b,
            // Some parameter draws are legitimately rejected (e.g. a 2-D
            // torus size without a good factorization); that's fine.
            Err(_) => return Ok(()),
        };
        let g = &built.graph;
        prop_assert!(g.node_count() >= 2, "{}", built.name);
        prop_assert!(g.is_connected(), "{} disconnected", built.name);
        for e in g.edges() {
            prop_assert_ne!(e.a, e.b, "self-loop in {}", &built.name);
            prop_assert!(e.a < g.node_count() && e.b < g.node_count());
        }
        // Degree sanity: no isolated nodes, no absurd blowup.
        prop_assert!(g.min_degree() >= 1, "{}", built.name);
        prop_assert!(g.max_degree() < g.node_count(), "{}", built.name);
        // Handshake identity.
        let degree_sum: usize = (0..g.node_count()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn builds_are_deterministic(spec in arb_spec()) {
        let (Ok(a), Ok(b)) = (spec.build(), spec.build()) else { return Ok(()); };
        prop_assert_eq!(a.name, b.name);
        prop_assert_eq!(
            dsn::core::export::fingerprint(&a.graph),
            dsn::core::export::fingerprint(&b.graph)
        );
    }

    #[test]
    fn edge_list_roundtrip_for_any_family(spec in arb_spec()) {
        let Ok(built) = spec.build() else { return Ok(()); };
        let text = dsn::core::export::to_edge_list(&built.graph);
        let back = dsn::core::export::from_edge_list(&text).expect("parse back");
        prop_assert_eq!(built.graph.edges(), back.edges());
    }
}
