//! Worker-count independence: the analysis kernels must produce the same
//! bits under `RAYON_NUM_THREADS=1` as under a multi-worker pool.
//!
//! This file holds a single `#[test]` because it manipulates the
//! process-global worker configuration (the `RAYON_NUM_THREADS` variable
//! and the global pool override); a lone test per binary cannot race with
//! siblings.

use dsn::core::dsn::Dsn;
use dsn::metrics::path_stats;
use dsn::route::routing_stats;

/// Order-sensitive fingerprint of every field the kernels report.
fn fingerprint(dsn: &Dsn) -> Vec<u64> {
    let p = path_stats(dsn.graph());
    let r = routing_stats(dsn);
    let mut fp = vec![
        p.nodes as u64,
        p.diameter as u64,
        p.aspl.to_bits(),
        p.unreachable_pairs,
        r.pairs as u64,
        r.max_hops as u64,
        r.avg_hops.to_bits(),
        r.avg_phase_hops.0.to_bits(),
        r.avg_phase_hops.1.to_bits(),
        r.avg_phase_hops.2.to_bits(),
        r.overshoot_rate.to_bits(),
    ];
    fp.extend(p.histogram.iter().copied());
    fp.extend(p.eccentricity.iter().map(|&e| e as u64));
    fp
}

#[test]
fn kernels_are_worker_count_independent() {
    let dsn = Dsn::new_clean(256).expect("clean DSN at 256");

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let one_worker = fingerprint(&dsn);

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four_workers = fingerprint(&dsn);

    std::env::remove_var("RAYON_NUM_THREADS");
    let default_workers = fingerprint(&dsn);

    assert_eq!(one_worker, four_workers, "1 vs 4 workers diverged");
    assert_eq!(one_worker, default_workers, "1 vs default workers diverged");

    // The explicit pool override must agree too.
    rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build_global()
        .unwrap();
    let pool_override = fingerprint(&dsn);
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    assert_eq!(one_worker, pool_override, "pool override diverged");
}
