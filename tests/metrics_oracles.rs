//! Property tests pitting the fast metrics implementations against naive
//! oracles on small random graphs.
#![allow(clippy::needless_range_loop)] // indices are node ids throughout

use dsn::core::graph::{Graph, LinkKind};
use dsn::metrics::{
    bfs_distances, cut_size, edge_disjoint_paths, estimate_bisection, path_stats, UNREACHABLE,
};
use proptest::prelude::*;

/// Build a random connected-ish graph from a proptest-chosen edge set over
/// `n` nodes (a ring backbone guarantees connectivity).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        4usize..24,
        proptest::collection::vec((0usize..24, 0usize..24), 0..40),
    )
        .prop_map(|(n, extra)| {
            let mut g = Graph::new(n);
            for i in 0..n {
                let j = (i + 1) % n;
                g.add_edge(i.min(j), i.max(j), LinkKind::Ring);
            }
            for (a, b) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge_dedup(a.min(b), a.max(b), LinkKind::Random);
                }
            }
            g
        })
}

/// O(n^3) Floyd–Warshall oracle.
fn floyd_warshall(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.node_count();
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for e in g.edges() {
        d[e.a][e.b] = 1;
        d[e.b][e.a] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_matches_floyd_warshall(g in arb_graph()) {
        let oracle = floyd_warshall(&g);
        for s in 0..g.node_count() {
            let bfs = bfs_distances(&g, s);
            for t in 0..g.node_count() {
                let expect = oracle[s][t];
                let got = if bfs[t] == UNREACHABLE { u32::MAX / 4 } else { bfs[t] };
                prop_assert_eq!(got, expect, "{} -> {}", s, t);
            }
        }
    }

    #[test]
    fn path_stats_match_oracle(g in arb_graph()) {
        let oracle = floyd_warshall(&g);
        let stats = path_stats(&g);
        let n = g.node_count();
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for s in 0..n {
            for t in 0..n {
                if s != t && oracle[s][t] < u32::MAX / 8 {
                    max = max.max(oracle[s][t]);
                    sum += oracle[s][t] as u64;
                    cnt += 1;
                }
            }
        }
        prop_assert_eq!(stats.diameter, max);
        prop_assert!((stats.aspl - sum as f64 / cnt as f64).abs() < 1e-9);
    }

    #[test]
    fn disjoint_paths_bounded_and_symmetric(g in arb_graph()) {
        let n = g.node_count();
        let pairs = [(0usize, n / 2), (1, n - 1), (n / 3, 2 * n / 3)];
        for &(s, t) in &pairs {
            if s == t { continue; }
            let k_st = edge_disjoint_paths(&g, s, t);
            let k_ts = edge_disjoint_paths(&g, t, s);
            prop_assert_eq!(k_st, k_ts, "max-flow must be symmetric");
            prop_assert!(k_st >= 2, "ring backbone guarantees 2");
            prop_assert!(k_st <= g.degree(s).min(g.degree(t)));
        }
    }

    #[test]
    fn bisection_is_a_valid_balanced_cut(g in arb_graph()) {
        let b = estimate_bisection(&g, 2, 11);
        let n = g.node_count();
        let ones = b.side.iter().filter(|&&s| s).count();
        prop_assert!(ones == n / 2 || ones == n.div_ceil(2));
        prop_assert_eq!(cut_size(&g, &b.side), b.width);
        // A valid cut of a connected graph crosses at least once.
        prop_assert!(b.width >= 1);
    }
}
