//! Deterministic pins of the counterexamples recorded in the checked-in
//! `.proptest-regressions` files, plus inputs the offline proptest harness
//! found. The vendored proptest (see `vendor/proptest`) does not replay
//! regression files, so each recorded failure is frozen here as a plain
//! `#[test]` that exercises the exact same assertions as the property it
//! came from.

use dsn::core::topology::TopologySpec;
use dsn::sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

/// The `built_topologies_are_sane` body from `tests/topology_invariants.rs`
/// as a plain assertion function.
fn assert_topology_sane(spec: TopologySpec) {
    let built = spec.build().expect("spec must build");
    let g = &built.graph;
    assert!(g.node_count() >= 2, "{}", built.name);
    assert!(g.is_connected(), "{} disconnected", built.name);
    for e in g.edges() {
        assert_ne!(e.a, e.b, "self-loop in {}", built.name);
        assert!(e.a < g.node_count() && e.b < g.node_count());
    }
    assert!(g.min_degree() >= 1, "{}", built.name);
    assert!(
        g.max_degree() < g.node_count(),
        "{}: max degree {} vs {} nodes",
        built.name,
        g.max_degree(),
        g.node_count()
    );
    let degree_sum: usize = (0..g.node_count()).map(|v| g.degree(v)).sum();
    assert_eq!(degree_sum, 2 * g.edge_count());
}

/// The `builds_are_deterministic` body.
fn assert_build_deterministic(spec: TopologySpec) {
    let a = spec.build().expect("spec must build");
    let b = spec.build().expect("spec must build");
    assert_eq!(a.name, b.name);
    assert_eq!(
        dsn::core::export::fingerprint(&a.graph),
        dsn::core::export::fingerprint(&b.graph)
    );
}

/// The `edge_list_roundtrip_for_any_family` body.
fn assert_edge_list_roundtrip(spec: TopologySpec) {
    let built = spec.build().expect("spec must build");
    let text = dsn::core::export::to_edge_list(&built.graph);
    let back = dsn::core::export::from_edge_list(&text).expect("parse back");
    assert_eq!(built.graph.edges(), back.edges());
}

/// Pinned from `tests/topology_invariants.proptest-regressions`:
/// `Hypercube { dim: 3 }` was recorded as a failing shrink of the
/// topology invariants.
#[test]
fn pinned_hypercube_dim3_topology_invariants() {
    let spec = TopologySpec::Hypercube { dim: 3 };
    assert_topology_sane(spec.clone());
    assert_build_deterministic(spec.clone());
    assert_edge_list_roundtrip(spec);
}

/// Found by the offline property harness: DSN-E at n <= 9 stacks Up and
/// Extra lanes on the short ring until some node's multigraph degree
/// reaches the node count. The builder now rejects those sizes; the first
/// accepted size must satisfy every invariant.
#[test]
fn pinned_dsn_e_small_n() {
    assert!(TopologySpec::DsnE { n: 8 }.build().is_err());
    assert!(TopologySpec::DsnE { n: 9 }.build().is_err());
    let spec = TopologySpec::DsnE { n: 10 };
    assert_topology_sane(spec.clone());
    assert_build_deterministic(spec.clone());
    assert_edge_list_roundtrip(spec);
}

/// Pinned from `tests/sim_properties.proptest-regressions`:
/// `Torus2D { n: 36 }, rate_millis = 1, seed = 34` was recorded as
/// violating `open_loop_invariants`. Exact same config and assertions as
/// the property in `tests/sim_properties.rs`.
#[test]
fn pinned_torus36_rate1_seed34_open_loop_invariants() {
    let spec = TopologySpec::Torus2D { n: 36 };
    let built = spec.build().unwrap();
    let g = Arc::new(built.graph);
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 1_500,
        drain_cycles: 3_000,
        ..SimConfig::test_small()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let rate = 1.0 / 1000.0;
    let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, 34).run();

    assert!(stats.delivery_ratio() >= 0.0 && stats.delivery_ratio() <= 1.0);
    assert!(stats.delivered_packets <= stats.created_packets);
    assert!(stats.accepted_flits_per_cycle_per_host >= 0.0);
    assert!(stats.max_channel_utilization <= 1.0 + 1e-9);
    assert!(stats.mean_channel_utilization <= stats.max_channel_utilization + 1e-9);
    if stats.delivered_packets > 0 {
        assert!(stats.min_latency_cycles <= stats.max_latency_cycles);
        assert!(stats.avg_latency_cycles >= stats.min_latency_cycles as f64);
        assert!(stats.avg_latency_cycles <= stats.max_latency_cycles as f64);
    }
    assert!(
        !stats.deadlock_suspected,
        "stall {}",
        stats.longest_stall_cycles
    );
}
