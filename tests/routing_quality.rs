//! Cross-crate tests of the custom routing algorithm's quality: the routed
//! path versus the true shortest path (dsn-route vs dsn-metrics).
#![allow(clippy::needless_range_loop)] // indices are node ids throughout

use dsn::core::dsn::Dsn;
use dsn::metrics::{bfs_distances, path_stats};
use dsn::route::dsn_routing::{route, routing_stats};
use dsn::route::updown::UpDown;

#[test]
fn custom_route_never_shorter_than_bfs_and_never_absurd() {
    let dsn = Dsn::new(256, 7).unwrap();
    let g = dsn.graph();
    for s in (0..256).step_by(17) {
        let dist = bfs_distances(g, s);
        for t in 0..256 {
            if s == t {
                continue;
            }
            let tr = route(&dsn, s, t).unwrap();
            let shortest = dist[t] as usize;
            assert!(tr.hops() >= shortest, "{s}->{t}");
            // Fact 2 bounds the absolute length; relative stretch is small
            // in practice (custom routing is "almost optimum").
            assert!(
                tr.hops() <= shortest + 2 * dsn.p() as usize,
                "{s}->{t}: routed {} vs shortest {shortest}",
                tr.hops()
            );
        }
    }
}

#[test]
fn average_stretch_is_modest() {
    // Theorem 2a: E[route] <= 2p while E[shortest] <= 1.5p; so the average
    // stretch should be well under 2.
    for n in [128usize, 512] {
        let p = dsn::core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        let rstats = routing_stats(&dsn);
        let pstats = path_stats(dsn.graph());
        let stretch = rstats.avg_hops / pstats.aspl;
        assert!((1.0..2.0).contains(&stretch), "n={n}: stretch {stretch:.3}");
    }
}

#[test]
fn custom_vs_updown_tradeoff() {
    // Section VII.B positions custom routing as *simpler and better
    // balanced*, not shorter: up*/down* picks globally shortest legal
    // paths from precomputed tables, while the custom algorithm routes
    // with local information only. Pin the measured relationship: custom
    // stays within 1.5x of up*/down* average length, and both respect the
    // ASPL floor.
    let dsn = Dsn::new(126, 6).unwrap(); // p = 7, complete super nodes
    let rstats = routing_stats(&dsn);
    let ud = UpDown::new(dsn.graph(), 0);
    let ud_avg = ud.avg_path_length();
    let aspl = path_stats(dsn.graph()).aspl;
    assert!(ud_avg >= aspl);
    assert!(rstats.avg_hops >= aspl);
    assert!(
        rstats.avg_hops <= ud_avg * 1.5,
        "custom avg {} too far above up*/down* avg {ud_avg}",
        rstats.avg_hops
    );
    // And the custom algorithm's bound from Theorem 2a still holds.
    assert!(rstats.avg_hops <= 2.0 * dsn.p() as f64);
}

#[test]
fn updown_vs_shortest_inflation_exists() {
    // Sanity that the up*/down* inflation the paper worries about is real
    // and measurable on DSN graphs.
    let dsn = Dsn::new(128, 6).unwrap();
    let ud = UpDown::new(dsn.graph(), 0);
    let pstats = path_stats(dsn.graph());
    assert!(ud.avg_path_length() >= pstats.aspl);
}

#[test]
fn overshoot_is_bounded_by_p_plus_r() {
    // Figure 5's overshoot analysis: the FINISH walk after an overshoot
    // covers at most p + r hops.
    for n in [100usize, 256, 500] {
        let p = dsn::core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        for s in (0..n).step_by(7) {
            for t in (0..n).step_by(11) {
                if s == t {
                    continue;
                }
                let tr = route(&dsn, s, t).unwrap();
                if tr.overshoot {
                    let finish = tr.hops_in(dsn::route::RoutePhase::Finish);
                    assert!(
                        finish <= p as usize + dsn.r() + 1,
                        "n={n} {s}->{t}: overshoot finish {finish}"
                    );
                }
            }
        }
    }
}
