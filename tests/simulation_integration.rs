//! End-to-end simulation tests: the Figure 10 *shape* claims on a reduced
//! (but structurally identical) configuration so the suite stays fast.
//!
//! The paper's full-scale parameters are exercised by
//! `cargo run -p dsn-bench --bin fig10_simulation`.

use dsn::core::topology::TopologySpec;
use dsn::sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

const SEED: u64 = 0xD5B0_2013;

/// Paper parameters with shortened windows.
fn quick_cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 3_000,
        measure_cycles: 10_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    }
}

fn run(graph: Arc<dsn::core::Graph>, pattern: TrafficPattern, gbps: f64) -> dsn::sim::RunStats {
    let cfg = quick_cfg();
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
    Simulator::new(graph, cfg, routing, pattern, rate, 99).run()
}

#[test]
fn fig10_low_load_latency_ordering_uniform() {
    // Figure 10(a): under low uniform load, DSN and RANDOM sit below torus.
    let [dsn, torus, random] = TopologySpec::paper_trio(64, SEED);
    let l_dsn = run(
        Arc::new(dsn.build().unwrap().graph),
        TrafficPattern::Uniform,
        2.0,
    );
    let l_torus = run(
        Arc::new(torus.build().unwrap().graph),
        TrafficPattern::Uniform,
        2.0,
    );
    let l_rand = run(
        Arc::new(random.build().unwrap().graph),
        TrafficPattern::Uniform,
        2.0,
    );
    assert!(l_dsn.delivery_ratio() > 0.95);
    assert!(l_torus.delivery_ratio() > 0.95);
    assert!(
        l_dsn.avg_latency_ns < l_torus.avg_latency_ns,
        "DSN {:.0} ns !< torus {:.0} ns",
        l_dsn.avg_latency_ns,
        l_torus.avg_latency_ns
    );
    // DSN within ~15% of RANDOM ("almost the same curves").
    let gap = (l_dsn.avg_latency_ns - l_rand.avg_latency_ns).abs() / l_rand.avg_latency_ns;
    assert!(gap < 0.15, "DSN vs RANDOM latency gap {gap:.3}");
}

#[test]
fn fig10_latency_grows_with_load() {
    let [dsn, _, _] = TopologySpec::paper_trio(64, SEED);
    let g = Arc::new(dsn.build().unwrap().graph);
    let low = run(g.clone(), TrafficPattern::Uniform, 1.0);
    let high = run(g, TrafficPattern::Uniform, 10.0);
    assert!(high.avg_latency_ns > low.avg_latency_ns);
    assert!(low.delivery_ratio() > 0.95);
}

#[test]
fn fig10_all_patterns_deliver_at_low_load() {
    let [dsn, _, _] = TopologySpec::paper_trio(64, SEED);
    let g = Arc::new(dsn.build().unwrap().graph);
    for pattern in [
        TrafficPattern::Uniform,
        TrafficPattern::BitReversal,
        TrafficPattern::neighboring_paper(),
    ] {
        let stats = run(g.clone(), pattern.clone(), 2.0);
        assert!(
            stats.delivery_ratio() > 0.95,
            "{}: delivery {:.3}",
            pattern.name(),
            stats.delivery_ratio()
        );
        assert!(
            stats.avg_latency_ns > 300.0,
            "{} latency implausibly low",
            pattern.name()
        );
        assert!(
            stats.avg_latency_ns < 3_000.0,
            "{} latency implausibly high",
            pattern.name()
        );
    }
}

#[test]
fn accepted_tracks_offered_at_low_load() {
    let [dsn, _, _] = TopologySpec::paper_trio(64, SEED);
    let g = Arc::new(dsn.build().unwrap().graph);
    for gbps in [1.0, 4.0] {
        let stats = run(g.clone(), TrafficPattern::Uniform, gbps);
        let err = (stats.accepted_gbps_per_host - gbps).abs() / gbps;
        assert!(
            err < 0.1,
            "accepted {} vs offered {gbps}",
            stats.accepted_gbps_per_host
        );
    }
}
