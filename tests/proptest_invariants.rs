//! Property-based tests (proptest) over randomly drawn parameters: the
//! paper's structural invariants must hold for *every* valid DSN, not just
//! the sizes in the figures.
#![allow(clippy::needless_range_loop)] // indices are node ids throughout

use dsn::core::dsn::Dsn;
use dsn::core::dsn_ext::{DsnD, DsnE, FlexibleDsn};
use dsn::core::util::ceil_log2;
use dsn::metrics::bfs_distances;
use dsn::route::dsn_routing::route;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fact1_degrees_for_random_params(n in 8usize..1200, xsel in 0u32..8) {
        let p = ceil_log2(n);
        let x = 1 + xsel % (p - 1).max(1);
        let dsn = Dsn::new(n, x).unwrap();
        let g = dsn.graph();
        let mut deg5 = 0usize;
        for v in 0..n {
            let d = g.degree(v);
            prop_assert!((2..=5).contains(&d), "n={} x={} v={} deg={}", n, x, v, d);
            if d == 5 { deg5 += 1; }
        }
        prop_assert!(deg5 <= p as usize);
        prop_assert!(g.avg_degree() <= 4.0 + 1e-9);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn routing_always_reaches_and_respects_bound(n in 16usize..600, seed in 0u64..1000) {
        let p = ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        // Derive a pseudo-random pair from the seed.
        let s = (seed as usize * 7919) % n;
        let t = (seed as usize * 104729 + 1) % n;
        let tr = route(&dsn, s, t).unwrap();
        prop_assert_eq!(tr.path[0], s);
        prop_assert_eq!(*tr.path.last().unwrap(), t);
        if s != t {
            let bound = 3 * p as usize + dsn.r();
            prop_assert!(tr.hops() <= bound, "{}->{} took {} > {}", s, t, tr.hops(), bound);
        }
        // Every hop is a physical link or the logical shortcut pointer.
        for w in tr.path.windows(2) {
            prop_assert!(
                dsn.graph().has_edge(w[0], w[1]),
                "hop {}->{} is not a link", w[0], w[1]
            );
        }
    }

    #[test]
    fn routed_path_at_least_shortest(n in 16usize..300, seed in 0u64..500) {
        let p = ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        let s = (seed as usize * 31) % n;
        let t = (seed as usize * 17 + 3) % n;
        let tr = route(&dsn, s, t).unwrap();
        let dist = bfs_distances(dsn.graph(), s)[t] as usize;
        prop_assert!(tr.hops() >= dist);
    }

    #[test]
    fn shortcut_invariants(n in 8usize..1200) {
        let p = ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        for v in 0..n {
            match dsn.shortcut(v) {
                Some(t) => {
                    let l = dsn.level(v);
                    prop_assert!(l <= dsn.x());
                    prop_assert_eq!(dsn.level(t), l + 1);
                    let min_jump = n.div_ceil(1usize << l);
                    prop_assert!(dsn.cw_dist(v, t) >= min_jump);
                }
                None => prop_assert!(dsn.level(v) > dsn.x()),
            }
        }
    }

    #[test]
    fn dsn_e_connected_and_bounded_degree(n in 8usize..800) {
        let e = DsnE::new(n).unwrap();
        prop_assert!(e.graph().is_connected());
        prop_assert!(e.graph().max_degree() <= 9);
    }

    #[test]
    fn dsn_d_connected_and_no_worse_eccentricity_from_0(n in 16usize..800, x in 1u32..4) {
        let d = DsnD::new(n, x).unwrap();
        prop_assert!(d.graph().is_connected());
        let ecc_d = bfs_distances(d.graph(), 0).iter().copied().max().unwrap();
        let ecc_base = bfs_distances(d.base().graph(), 0).iter().copied().max().unwrap();
        prop_assert!(ecc_d <= ecc_base);
    }

    #[test]
    fn flexible_dsn_minor_invariants(base_k in 3usize..40, minors in 0usize..10) {
        // base_n = a multiple of its own p; search downward from 32*base_k.
        let target = 32 * base_k;
        let p = ceil_log2(target) as usize;
        let base_n = (target / p) * p;
        prop_assume!(base_n >= 8);
        let p2 = ceil_log2(base_n);
        prop_assume!(base_n.is_multiple_of(p2 as usize));
        let spread: Vec<usize> = (0..minors).map(|i| (i + 1) * base_n / (minors + 1) % base_n).collect();
        let f = FlexibleDsn::new(base_n, p2 - 1, &spread).unwrap();
        prop_assert_eq!(f.n(), base_n + minors);
        prop_assert!(f.graph().is_connected());
        for v in 0..f.n() {
            if !f.is_major(v) {
                prop_assert_eq!(f.graph().degree(v), 2);
                let m = f.major_before(v);
                prop_assert!(f.is_major(m));
            }
        }
    }
}
