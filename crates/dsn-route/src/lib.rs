//! # dsn-route — routing algorithms and deadlock analysis for DSN
//!
//! Implements the paper's custom three-phase DSN routing (Figure 2), the
//! deadlock-free DSN-V / DSN-E variants of Theorem 3, topology-agnostic
//! up*/down* routing (the escape routing of the paper's simulator), and
//! dimension-order routing for the torus baseline — plus a channel
//! dependency graph (CDG) checker that machine-verifies every
//! deadlock-freedom claim by exhaustive route enumeration.
//!
//! ```
//! use dsn_core::dsn::Dsn;
//! use dsn_route::dsn_routing::route;
//!
//! let dsn = Dsn::new(256, 7).unwrap();
//! let trace = route(&dsn, 3, 200).unwrap();
//! // Fact 2: routing diameter <= 3p + r
//! assert!(trace.hops() <= 3 * dsn.p() as usize + dsn.r());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdg;
pub mod cost;
pub mod deadlock;
pub mod dor;
pub mod dsn_routing;
pub mod ext_routing;
pub mod load;
pub mod updown;

pub use cdg::{Cdg, VirtualChannel};
pub use dsn_routing::{
    route, route_avoid_overshoot, routing_stats, routing_stats_serial, routing_stats_with,
    RouteError, RoutePhase, RouteStep, RouteTrace, RoutingStats,
};
pub use updown::{UdPhase, UpDown};
