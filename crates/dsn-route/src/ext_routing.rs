//! Routing on the Section V extended topologies:
//!
//! * [`route_dsnd`] — DSN-D-x routing: the basic three-phase algorithm with
//!   the PRE-WORK/FINISH local walks accelerated by the stride-`q` Skip
//!   links ("this helps to reduce the long local walks ... our routing
//!   algorithm can also be updated a little bit to reduce routing diameter
//!   to 2p", Section V.B);
//! * [`route_flexible`] — flexible-DSN routing: the base algorithm over
//!   major nodes, lifted to physical ids, with the paper's minor-node rule
//!   ("to route to a minor node we need to firstly route to the major node
//!   just before it, and then use Succ links to reach it", Section V.C).

use crate::dsn_routing::{route, RouteError, RoutePhase, RouteStep, RouteTrace};
use dsn_core::dsn_ext::{DsnD, FlexibleDsn};
use dsn_core::NodeId;

/// Route on DSN-D-x: run the basic algorithm on the reduced-shortcut base,
/// then compress every maximal run of same-direction local (ring) steps
/// with Skip links where a full stride fits.
pub fn route_dsnd(dsnd: &DsnD, s: NodeId, t: NodeId) -> Result<RouteTrace, RouteError> {
    let base_trace = route(dsnd.base(), s, t)?;
    let n = dsnd.n();
    let q = dsnd.q();
    let g = dsnd.graph();

    let mut out = RouteTrace {
        path: vec![s],
        steps: Vec::new(),
        phases: Vec::new(),
        overshoot: base_trace.overshoot,
    };

    // Walk the base trace, grouping consecutive (step, phase) ring moves.
    let mut i = 0usize;
    while i < base_trace.steps.len() {
        let step = base_trace.steps[i];
        let phase = base_trace.phases[i];
        if step == RouteStep::Shortcut {
            let v = base_trace.path[i + 1];
            out.path.push(v);
            out.steps.push(RouteStep::Shortcut);
            out.phases.push(phase);
            i += 1;
            continue;
        }
        // Extent of this run of identical ring moves.
        let mut j = i;
        while j < base_trace.steps.len()
            && base_trace.steps[j] == step
            && base_trace.phases[j] == phase
        {
            j += 1;
        }
        let run_len = j - i;
        let target = base_trace.path[j];
        // Re-walk the run from the current endpoint using Skip links.
        let mut cur = *out.path.last().expect("non-empty path");
        let mut remaining = run_len;
        while remaining > 0 {
            let skip_target = match step {
                RouteStep::Succ => (cur + q) % n,
                RouteStep::Pred => (cur + n - q) % n,
                RouteStep::Shortcut => unreachable!(),
            };
            if remaining >= q && cur.is_multiple_of(q) && g.has_edge(cur, skip_target) {
                cur = skip_target;
                remaining -= q;
                out.path.push(cur);
                out.steps.push(RouteStep::Shortcut); // rides a Skip link
                out.phases.push(phase);
            } else {
                cur = match step {
                    RouteStep::Succ => (cur + 1) % n,
                    RouteStep::Pred => (cur + n - 1) % n,
                    RouteStep::Shortcut => unreachable!(),
                };
                remaining -= 1;
                out.path.push(cur);
                out.steps.push(step);
                out.phases.push(phase);
            }
        }
        debug_assert_eq!(cur, target, "skip-compressed run must land on target");
        i = j;
    }
    Ok(out)
}

/// Route on a flexible DSN between *physical* node ids. The path is the
/// base algorithm's route over majors, lifted to physical ids (ring steps
/// between adjacent majors expand over any minors in between), with a
/// final Succ walk for a minor destination and an initial walk from a
/// minor source to its preceding major.
pub fn route_flexible(flex: &FlexibleDsn, s: NodeId, t: NodeId) -> Result<RouteTrace, RouteError> {
    let n = flex.n();
    if s >= n {
        return Err(RouteError::NodeOutOfRange(s));
    }
    if t >= n {
        return Err(RouteError::NodeOutOfRange(t));
    }
    let mut out = RouteTrace {
        path: vec![s],
        steps: Vec::new(),
        phases: Vec::new(),
        overshoot: false,
    };
    if s == t {
        return Ok(out);
    }

    // 1. From a minor source, walk pred to the preceding major (these are
    //    PRE-WORK-like local moves).
    let mut cur = s;
    while !flex.is_major(cur) {
        cur = (cur + n - 1) % n;
        out.path.push(cur);
        out.steps.push(RouteStep::Pred);
        out.phases.push(RoutePhase::PreWork);
    }
    let s_major = flex.major_of(cur).expect("major");

    // 2. Destination's covering major.
    let t_anchor = flex.major_before(t);
    let t_major = flex.major_of(t_anchor).expect("major");

    // 3. Base route over majors, lifted to physical ids.
    if s_major != t_major {
        let base_trace = route(flex.base(), s_major, t_major)?;
        for (k, &step) in base_trace.steps.iter().enumerate() {
            let next_major = base_trace.path[k + 1];
            let next_phys = flex.phys_of(next_major);
            match step {
                RouteStep::Shortcut => {
                    out.path.push(next_phys);
                    out.steps.push(RouteStep::Shortcut);
                    out.phases.push(base_trace.phases[k]);
                    cur = next_phys;
                }
                RouteStep::Succ => {
                    while cur != next_phys {
                        cur = (cur + 1) % n;
                        out.path.push(cur);
                        out.steps.push(RouteStep::Succ);
                        out.phases.push(base_trace.phases[k]);
                    }
                }
                RouteStep::Pred => {
                    while cur != next_phys {
                        cur = (cur + n - 1) % n;
                        out.path.push(cur);
                        out.steps.push(RouteStep::Pred);
                        out.phases.push(base_trace.phases[k]);
                    }
                }
            }
        }
    }

    // 4. Succ-walk from the covering major to the destination (minor rule).
    while cur != t {
        cur = (cur + 1) % n;
        out.path.push(cur);
        out.steps.push(RouteStep::Succ);
        out.phases.push(RoutePhase::Finish);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsn_routing::routing_stats;
    use dsn_core::dsn::Dsn;

    fn check_physical(g: &dsn_core::Graph, tr: &RouteTrace, s: NodeId, t: NodeId) {
        assert_eq!(tr.path[0], s);
        assert_eq!(*tr.path.last().unwrap(), t);
        for w in tr.path.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "hop {}->{} missing", w[0], w[1]);
        }
    }

    #[test]
    fn dsnd_routes_everywhere() {
        let d = DsnD::new(256, 2).unwrap();
        for s in (0..256).step_by(7) {
            for t in (0..256).step_by(11) {
                let tr = route_dsnd(&d, s, t).unwrap();
                check_physical(d.graph(), &tr, s, t);
            }
        }
    }

    #[test]
    fn dsnd_never_longer_than_base() {
        let d = DsnD::new(512, 2).unwrap();
        let mut saved = 0usize;
        for s in (0..512).step_by(13) {
            for t in (0..512).step_by(17) {
                let base = route(d.base(), s, t).unwrap();
                let skip = route_dsnd(&d, s, t).unwrap();
                assert!(skip.hops() <= base.hops(), "{s}->{t}");
                saved += base.hops() - skip.hops();
            }
        }
        assert!(saved > 0, "skip links should shorten some routes");
    }

    #[test]
    fn dsnd_routing_diameter_improves() {
        // Section V.B: the updated routing reduces the routing diameter
        // (paper: toward ~2p). Verify DSN-D-2 beats the plain base and
        // stays within 2.5p.
        let n = 1024usize; // p = 10
        let d = DsnD::new(n, 2).unwrap();
        let mut max_base = 0usize;
        let mut max_skip = 0usize;
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(41) {
                max_base = max_base.max(route(d.base(), s, t).unwrap().hops());
                max_skip = max_skip.max(route_dsnd(&d, s, t).unwrap().hops());
            }
        }
        assert!(max_skip <= max_base);
        assert!(
            max_skip as f64 <= 2.5 * 10.0,
            "routing diameter {max_skip} > 2.5p"
        );
    }

    #[test]
    fn flexible_routes_between_all_kinds_of_nodes() {
        let flex = FlexibleDsn::new(60, 5, &[5, 20, 20, 40]).unwrap();
        let n = flex.n();
        for s in 0..n {
            for t in 0..n {
                let tr = route_flexible(&flex, s, t).unwrap();
                check_physical(flex.graph(), &tr, s, t);
            }
        }
    }

    #[test]
    fn flexible_route_cost_is_near_base() {
        // Minors only add local Succ/Pred hops; average should stay within
        // a few hops of the pure-major base.
        let flex = FlexibleDsn::new(126, 6, &[10, 50, 100]).unwrap();
        let base = Dsn::new(126, 6).unwrap();
        let base_avg = routing_stats(&base).avg_hops;
        let n = flex.n();
        let mut sum = 0usize;
        let mut cnt = 0usize;
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(5) {
                if s != t {
                    sum += route_flexible(&flex, s, t).unwrap().hops();
                    cnt += 1;
                }
            }
        }
        let avg = sum as f64 / cnt as f64;
        assert!(
            avg <= base_avg + 3.0,
            "flexible avg {avg} vs base {base_avg}"
        );
    }

    #[test]
    fn flexible_trivial_and_error_cases() {
        let flex = FlexibleDsn::new(60, 5, &[7]).unwrap();
        assert_eq!(route_flexible(&flex, 5, 5).unwrap().hops(), 0);
        assert!(route_flexible(&flex, 0, 61).is_err());
        assert!(route_flexible(&flex, 61, 0).is_err());
    }
}
