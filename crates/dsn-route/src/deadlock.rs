//! Deadlock-free DSN routing — the paper's Section V.A / Theorem 3.
//!
//! The basic three-phase algorithm is *not* deadlock-free on a single
//! virtual channel: PRE-WORK and FINISH share `pred` channels, and FINISH
//! walks can chain into a cycle around the ring. The paper proposes two
//! remedies and we implement (and *verify*, via exhaustive channel-
//! dependency-graph construction) both:
//!
//! * **DSN-V** — virtual channels. We use a 4-VC scheme (conveniently
//!   matching the 4 VCs of the paper's simulator):
//!   VC0 = PRE-WORK `pred` hops, VC1 = MAIN `succ`/shortcut hops,
//!   VC2 = FINISH hops, VC3 = FINISH hops after crossing the ring's
//!   0/n-1 *dateline* in either direction. VC0→VC1→VC2→VC3 transitions are
//!   monotone; within VC0/VC1 the DSN level changes monotonically; within
//!   VC2 a cycle would have to cross the dateline, which bumps to VC3; and
//!   a VC3 FINISH segment is far too short (≤ p + r hops) to wrap again.
//!   This refines the paper's three-group argument into a scheme whose
//!   acyclicity we machine-check over every source/destination pair.
//! * **DSN-E** — extra physical links instead of VCs: PRE-WORK rides the
//!   dedicated `Up` links, and FINISH hops that *land at* ids `<= 2p` ride
//!   the `Extra` links, so both the succ- and pred-direction ring-channel
//!   cycles are broken at the `0..2p` region, exactly in the spirit of
//!   Theorem 3's "use Extra links when available in the FINISH".

use crate::cdg::{Cdg, VirtualChannel};
use crate::dsn_routing::{route, RoutePhase, RouteStep, RouteTrace};
use dsn_core::dsn::Dsn;
use dsn_core::dsn_ext::DsnE;
use dsn_core::graph::{Graph, LinkKind};
use dsn_core::NodeId;

/// Find the edge joining `a` and `b` whose kind satisfies `pred`, if any.
fn find_edge(g: &Graph, a: NodeId, b: NodeId, pred: impl Fn(LinkKind) -> bool) -> Option<usize> {
    g.neighbors(a)
        .find(|&(u, e)| u == b && pred(g.edge(e).kind))
        .map(|(_, e)| e)
}

/// Channel sequence of the *basic* routing on a single VC — used to show
/// the basic scheme is NOT deadlock-free (its CDG has cycles).
pub fn basic_route_channels(dsn: &Dsn, s: NodeId, t: NodeId) -> Vec<VirtualChannel> {
    let g = dsn.graph();
    let tr = route(dsn, s, t).expect("basic route");
    trace_channels(g, &tr, |_, _, _| 0)
}

/// Channel sequence of the DSN-V routing: basic path, 4-VC assignment.
pub fn dsnv_route_channels(dsn: &Dsn, s: NodeId, t: NodeId) -> Vec<VirtualChannel> {
    let g = dsn.graph();
    let n = dsn.n();
    let tr = route(dsn, s, t).expect("basic route");
    let mut crossed = false;
    let mut prev = s;
    let mut out = Vec::with_capacity(tr.steps.len());
    for (i, &step) in tr.steps.iter().enumerate() {
        let cur = tr.path[i + 1];
        let vc = match tr.phases[i] {
            RoutePhase::PreWork => 0u8,
            RoutePhase::Main => 1,
            RoutePhase::Finish => {
                // dateline between n-1 and 0, either direction
                let crossing = (prev == n - 1 && cur == 0) || (prev == 0 && cur == n - 1);
                if crossing {
                    crossed = true;
                }
                if crossed {
                    3
                } else {
                    2
                }
            }
        };
        let edge = edge_for_step(g, prev, cur, step);
        out.push((g.channel_id(edge, prev), vc));
        prev = cur;
    }
    out
}

/// Channel sequence of the DSN-E routing: basic path over the DSN-E graph,
/// single VC, with PRE-WORK on `Up` links and the Extra links acting as a
/// *dateline lane* for FINISH walks.
///
/// The Extra-link discipline matters. A naive "use Extra while inside
/// `0..2p`" still deadlocks, because FINISH walks of *different* routes
/// chain across the region and close a full-ring cycle (our CDG checker
/// finds it). Instead, Extra links carry only the hops a FINISH walk takes
/// *after crossing a dateline*:
///
/// * a forward (succ) walk crosses at the `n-1 -> 0` wrap and then rides
///   Extra; since a FINISH walk is at most `p + r < 2p` hops, it ends while
///   still inside the Extra zone and never re-enters the ring lane;
/// * a backward (pred) walk crosses at the `2p -> 2p-1` hop and then rides
///   Extra; it ends at id `>= p - r >= 1` (for `p | n`, at `>= p`), so it
///   never wraps past 0.
///
/// Every ring-direction dependency cycle must pass one of the two dateline
/// hops, and the post-crossing traffic lives on the Extra lane which no
/// other walk shares — so the CDG is acyclic, as the tests verify
/// exhaustively. Deadlock freedom is guaranteed for `p | n` (the paper's
/// own recommendation; an incomplete final super node lets MAIN-PROCESS
/// wrap the ring with a level decrease, which breaks the monotonicity that
/// keeps the MAIN group acyclic).
pub fn dsne_route_channels(dsne: &DsnE, s: NodeId, t: NodeId) -> Vec<VirtualChannel> {
    let dsn = dsne.base();
    let g = dsne.graph();
    let p = dsn.p() as usize;
    let n = dsn.n();
    let tr = route(dsn, s, t).expect("basic route");
    let mut prev = s;
    let mut crossed = false;
    let mut out = Vec::with_capacity(tr.steps.len());
    for (i, &step) in tr.steps.iter().enumerate() {
        let cur = tr.path[i + 1];
        let edge = match (tr.phases[i], step) {
            (RoutePhase::PreWork, RouteStep::Pred) => {
                // PRE-WORK stays inside a super node, where Up links always
                // exist (levels >= 2 own one toward their pred).
                find_edge(g, prev, cur, |k| k == LinkKind::Up)
                    .unwrap_or_else(|| edge_for_step(g, prev, cur, step))
            }
            (RoutePhase::Finish, _) => {
                // Dateline detection for this hop.
                match step {
                    RouteStep::Succ if prev == n - 1 && cur == 0 => crossed = true,
                    RouteStep::Pred if prev == 2 * p && cur + 1 == 2 * p => crossed = true,
                    _ => {}
                }
                if crossed {
                    find_edge(g, prev, cur, |k| k == LinkKind::Extra)
                        .unwrap_or_else(|| edge_for_step(g, prev, cur, step))
                } else {
                    edge_for_step(g, prev, cur, step)
                }
            }
            _ => edge_for_step(g, prev, cur, step),
        };
        out.push((g.channel_id(edge, prev), 0u8));
        prev = cur;
    }
    out
}

/// Channel sequence of the Section V.D overshoot-avoiding routing under
/// the same DSN-V 4-VC discipline. Its FINISH is forward-only, so the
/// pred-side dateline never triggers; the succ-side dateline still
/// protects the wrap. The tests CDG-verify acyclicity exhaustively.
pub fn dsnv_avoid_overshoot_channels(dsn: &Dsn, s: NodeId, t: NodeId) -> Vec<VirtualChannel> {
    let g = dsn.graph();
    let n = dsn.n();
    let tr = crate::dsn_routing::route_avoid_overshoot(dsn, s, t).expect("route");
    let mut crossed = false;
    let mut prev = s;
    let mut out = Vec::with_capacity(tr.steps.len());
    for (i, &step) in tr.steps.iter().enumerate() {
        let cur = tr.path[i + 1];
        let vc = match tr.phases[i] {
            RoutePhase::PreWork => 0u8,
            RoutePhase::Main => 1,
            RoutePhase::Finish => {
                let crossing = (prev == n - 1 && cur == 0) || (prev == 0 && cur == n - 1);
                if crossing {
                    crossed = true;
                }
                if crossed {
                    3
                } else {
                    2
                }
            }
        };
        let edge = edge_for_step(g, prev, cur, step);
        out.push((g.channel_id(edge, prev), vc));
        prev = cur;
    }
    out
}

/// Per-packet state of the *incremental* DSN-V router: the three-phase
/// walk is memoryless given `(current node, destination)` **within** a
/// phase, but the phase itself is genuine state — a MAIN node whose level
/// exceeds the required level walks `succ`, while a fresh route from the
/// same node would walk `pred` (PRE-WORK), so per-hop route restarts
/// livelock. Carrying `(phase, crossed)` — 3 bits — is exactly enough to
/// reproduce the full [`dsnv_route_channels`] hop/VC sequence one hop at a
/// time in O(levels) per hop and O(1) memory per packet, with no
/// materialized path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DsnvState {
    /// Current phase of the three-phase walk.
    pub phase: IncPhase,
    /// Whether a FINISH hop has crossed the ring's 0/n-1 dateline (bumps
    /// the FINISH VC from 2 to 3, permanently).
    pub crossed: bool,
}

/// Phase component of [`DsnvState`]. Monotone: PreWork → Main → Finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncPhase {
    /// Climbing to the required level via `pred`.
    #[default]
    PreWork,
    /// Distance-halving shortcut/`succ` loop.
    Main,
    /// Local ring walk to the destination.
    Finish,
}

impl DsnvState {
    /// Pack into 3 bits (phase in bits 0–1, dateline flag in bit 2), for
    /// embedding in compact per-packet state words.
    #[inline]
    pub fn to_bits(self) -> u8 {
        let p = match self.phase {
            IncPhase::PreWork => 0u8,
            IncPhase::Main => 1,
            IncPhase::Finish => 2,
        };
        p | ((self.crossed as u8) << 2)
    }

    /// Inverse of [`Self::to_bits`]. Unknown phase encodings map to
    /// `Finish` (they cannot be produced by `to_bits`).
    #[inline]
    pub fn from_bits(bits: u8) -> Self {
        DsnvState {
            phase: match bits & 3 {
                0 => IncPhase::PreWork,
                1 => IncPhase::Main,
                _ => IncPhase::Finish,
            },
            crossed: bits & 4 != 0,
        }
    }
}

/// One hop of the incremental DSN-V walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsnvHop {
    /// The node after the hop.
    pub next: NodeId,
    /// Ring direction / shortcut kind of the hop.
    pub step: RouteStep,
    /// DSN-V virtual channel of the hop (0 = PRE-WORK, 1 = MAIN,
    /// 2/3 = FINISH before/after the dateline).
    pub vc: u8,
    /// State to carry to the next hop.
    pub state: DsnvState,
}

/// Compute the next hop of the DSN-V walk from `u` toward `t` given the
/// packet's carried [`DsnvState`], replicating the per-iteration decisions
/// of [`route`] (and therefore the exact hop/VC sequence of
/// [`dsnv_route_channels`]) without materializing the trace. Returns
/// `None` when `u == t`.
///
/// Decision cascade per call, mirroring the loop structure of `route()`:
/// a PRE-WORK packet whose level has dropped to the required level falls
/// through to the MAIN decision *at the same node*, and a MAIN packet
/// whose distance is `<= p` (or whose level exceeds `x`) falls through to
/// FINISH — each hop is labeled with the phase that actually emitted it.
pub fn dsnv_step(dsn: &Dsn, u: NodeId, t: NodeId, st: DsnvState) -> Option<DsnvHop> {
    if u == t {
        return None;
    }
    let d = dsn.cw_dist(u, t);
    let p = dsn.p() as usize;
    let x = dsn.x();
    let mut phase = st.phase;

    if phase == IncPhase::PreWork {
        let l = dsn.required_level(d);
        if dsn.level(u) > l {
            return Some(DsnvHop {
                next: dsn.pred(u),
                step: RouteStep::Pred,
                vc: 0,
                state: DsnvState {
                    phase: IncPhase::PreWork,
                    crossed: st.crossed,
                },
            });
        }
        phase = IncPhase::Main;
    }

    if phase == IncPhase::Main {
        let lu = dsn.level(u);
        if d > p && lu <= x {
            let l = dsn.required_level(d);
            let (next, step, next_phase) = if lu == l {
                let target = dsn
                    .shortcut(u)
                    .expect("level <= x nodes always own a shortcut");
                let overshoot = dsn.cw_dist(u, target) > d;
                (
                    target,
                    RouteStep::Shortcut,
                    if overshoot {
                        IncPhase::Finish
                    } else {
                        IncPhase::Main
                    },
                )
            } else {
                (dsn.succ(u), RouteStep::Succ, IncPhase::Main)
            };
            return Some(DsnvHop {
                next,
                step,
                vc: 1,
                state: DsnvState {
                    phase: next_phase,
                    crossed: st.crossed,
                },
            });
        }
        phase = IncPhase::Finish;
    }

    debug_assert_eq!(phase, IncPhase::Finish);
    let back = dsn.cw_dist(t, u);
    let (next, step) = if d <= back {
        (dsn.succ(u), RouteStep::Succ)
    } else {
        (dsn.pred(u), RouteStep::Pred)
    };
    let n = dsn.n();
    let crossing = (u == n - 1 && next == 0) || (u == 0 && next == n - 1);
    let crossed = st.crossed || crossing;
    Some(DsnvHop {
        next,
        step,
        vc: if crossed { 3 } else { 2 },
        state: DsnvState {
            phase: IncPhase::Finish,
            crossed,
        },
    })
}

/// [`dsnv_step`] resolved to a physical `(channel, vc)` over the DSN's own
/// graph — the incremental counterpart of one element of
/// [`dsnv_route_channels`].
pub fn dsnv_step_channel(
    dsn: &Dsn,
    u: NodeId,
    t: NodeId,
    st: DsnvState,
) -> Option<(VirtualChannel, NodeId, DsnvState)> {
    let hop = dsnv_step(dsn, u, t, st)?;
    let g = dsn.graph();
    let edge = edge_for_step(g, u, hop.next, hop.step);
    Some(((g.channel_id(edge, u), hop.vc), hop.next, hop.state))
}

/// Only the FIRST hop of the DSN-V channel sequence, without materializing
/// the whole route — O(1)-ish helper for per-cycle retry paths in the
/// simulator (the first hop of the three-phase algorithm is determined by
/// the PRE-WORK/MAIN decision at the source alone).
pub fn dsnv_first_hop(dsn: &Dsn, s: NodeId, t: NodeId) -> Option<VirtualChannel> {
    if s == t {
        return None;
    }
    let g = dsn.graph();
    let d = dsn.cw_dist(s, t);
    let l = dsn.required_level(d);
    let ls = dsn.level(s);
    let p = dsn.p() as usize;
    // Mirror the basic algorithm's first decision.
    let (next, step, phase) = if ls > l {
        (dsn.pred(s), RouteStep::Pred, RoutePhase::PreWork)
    } else if d <= p || ls > dsn.x() {
        // Straight to FINISH (forward, distance d <= p or no shortcut).
        let back = dsn.cw_dist(t, s);
        if d <= back {
            (dsn.succ(s), RouteStep::Succ, RoutePhase::Finish)
        } else {
            (dsn.pred(s), RouteStep::Pred, RoutePhase::Finish)
        }
    } else if ls == l {
        (
            dsn.shortcut(s).expect("level <= x owns a shortcut"),
            RouteStep::Shortcut,
            RoutePhase::Main,
        )
    } else {
        (dsn.succ(s), RouteStep::Succ, RoutePhase::Main)
    };
    let vc = match phase {
        RoutePhase::PreWork => 0u8,
        RoutePhase::Main => 1,
        RoutePhase::Finish => {
            // A first hop can only cross the dateline if it starts there.
            let n = dsn.n();
            let crossing = (s == n - 1 && next == 0) || (s == 0 && next == n - 1);
            if crossing {
                3
            } else {
                2
            }
        }
    };
    let edge = edge_for_step(g, s, next, step);
    Some((g.channel_id(edge, s), vc))
}

/// Pick the physical edge realizing one basic-route hop.
fn edge_for_step(g: &Graph, prev: NodeId, cur: NodeId, step: RouteStep) -> usize {
    match step {
        RouteStep::Succ | RouteStep::Pred => {
            find_edge(g, prev, cur, |k| k == LinkKind::Ring).expect("ring link must exist")
        }
        RouteStep::Shortcut => {
            find_edge(g, prev, cur, |k| matches!(k, LinkKind::Shortcut { .. }))
                // On tiny rings a shortcut may have been deduped against a
                // ring link; fall back to any link joining the pair.
                .or_else(|| find_edge(g, prev, cur, |_| true))
                .expect("shortcut link must exist")
        }
    }
}

fn trace_channels(
    g: &Graph,
    tr: &RouteTrace,
    vc_of: impl Fn(usize, RoutePhase, RouteStep) -> u8,
) -> Vec<VirtualChannel> {
    let mut prev = tr.path[0];
    let mut out = Vec::with_capacity(tr.steps.len());
    for (i, &step) in tr.steps.iter().enumerate() {
        let cur = tr.path[i + 1];
        let edge = edge_for_step(g, prev, cur, step);
        out.push((g.channel_id(edge, prev), vc_of(i, tr.phases[i], step)));
        prev = cur;
    }
    out
}

/// Build the CDG of the given per-pair channel function over every ordered
/// pair of distinct nodes.
pub fn build_cdg(
    n: usize,
    mut channels_of: impl FnMut(NodeId, NodeId) -> Vec<VirtualChannel>,
) -> Cdg {
    let mut cdg = Cdg::new();
    for s in 0..n {
        for t in 0..n {
            if s != t {
                cdg.add_route(&channels_of(s, t));
            }
        }
    }
    cdg
}

/// CDG of basic single-VC DSN routing (expected cyclic).
pub fn basic_cdg(dsn: &Dsn) -> Cdg {
    build_cdg(dsn.n(), |s, t| basic_route_channels(dsn, s, t))
}

/// CDG of DSN-V routing (expected acyclic — Theorem 3).
pub fn dsnv_cdg(dsn: &Dsn) -> Cdg {
    build_cdg(dsn.n(), |s, t| dsnv_route_channels(dsn, s, t))
}

/// CDG of DSN-E routing over individual channels.
///
/// **Reproduction finding:** this fine-grained CDG is *not* acyclic, even
/// with the Up/Extra links and a dateline discipline: a cycle closes
/// through position-wrapping shortcuts (a level-l shortcut near the end of
/// the ring lands at a small id without using the ring wrap channel)
/// bridged by forward-FINISH hops whose head level wraps at super-node
/// boundaries. The paper's Theorem 3 argument operates on three *groups*
/// of links (Figure 6) and holds at that granularity — see
/// [`dsne_group_dependencies`] — but group-level acyclicity does not imply
/// channel-level acyclicity. The virtual-channel variant DSN-V
/// ([`dsnv_cdg`]) is acyclic at full channel granularity.
pub fn dsne_cdg(dsne: &DsnE) -> Cdg {
    build_cdg(dsne.n(), |s, t| dsne_route_channels(dsne, s, t))
}

/// The paper's own coarse CDG for DSN-E (Figure 6): vertices are the three
/// link groups — `Up`, `Succ + Shortcut`, `Pred + Extra` — and an arc
/// records that some route holds a channel of one group while requesting a
/// channel of another. Theorem 3 claims this graph has no cycle among
/// distinct groups; [`dsne_group_dependencies`] lets the tests verify that
/// inter-group dependencies only ever point "forward" (Up -> Main ->
/// Finish).
pub fn dsne_group_dependencies(dsne: &DsnE) -> Vec<(u8, u8)> {
    let g = dsne.graph();
    let group_of = |channel: usize| -> u8 {
        let edge = g.edge(channel / 2);
        let (from, to) = g.channel_endpoints(channel);
        match edge.kind {
            LinkKind::Up => 0,
            LinkKind::Shortcut { .. } => 1,
            LinkKind::Ring => {
                let n = g.node_count();
                let succ = to == (from + 1) % n;
                if succ {
                    1
                } else {
                    2
                }
            }
            LinkKind::Extra => 2,
            k => unreachable!("unexpected link kind {k} in DSN-E"),
        }
    };
    let mut deps: Vec<(u8, u8)> = Vec::new();
    let n = dsne.n();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let ch = dsne_route_channels(dsne, s, t);
            for w in ch.windows(2) {
                let a = group_of(w[0].0);
                let b = group_of(w[1].0);
                if a != b && !deps.contains(&(a, b)) {
                    deps.push((a, b));
                }
            }
        }
    }
    deps.sort_unstable();
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_routing_has_cdg_cycles() {
        // The motivation for Section V.A: without VCs or extra links the
        // three-phase algorithm deadlocks.
        let dsn = Dsn::new(64, 5).unwrap();
        let cdg = basic_cdg(&dsn);
        assert!(
            cdg.find_cycle().is_some(),
            "basic single-VC DSN routing should exhibit a CDG cycle"
        );
    }

    #[test]
    fn theorem3_dsnv_acyclic() {
        // Complete super nodes (p | n), the paper's own recommendation: an
        // incomplete final super node lets MAIN wrap the ring with a level
        // decrease and reintroduces cycles.
        for &n in &[30usize, 60, 126, 248] {
            let p = dsn_core::util::ceil_log2(n);
            assert_eq!(
                n % p as usize,
                0,
                "test sizes must have complete super nodes"
            );
            let dsn = Dsn::new(n, p - 1).unwrap();
            let cdg = dsnv_cdg(&dsn);
            assert!(
                cdg.is_acyclic(),
                "DSN-V CDG must be acyclic for n = {n}; cycle: {:?}",
                cdg.find_cycle()
            );
        }
    }

    #[test]
    fn theorem3_dsne_group_level_acyclic() {
        // The paper's Figure 6 argument: inter-group dependencies only go
        // Up(0) -> Main(1) -> Finish(2). We verify that exhaustively.
        for &n in &[30usize, 60, 126] {
            let dsne = DsnE::new(n).unwrap();
            let deps = dsne_group_dependencies(&dsne);
            for &(a, b) in &deps {
                assert!(
                    a < b,
                    "n={n}: backward group dependency {a} -> {b}; all deps: {deps:?}"
                );
            }
        }
    }

    #[test]
    fn dsne_channel_level_cycle_exists() {
        // Reproduction finding: group-level acyclicity does NOT imply
        // channel-level acyclicity. The fine-grained CDG of DSN-E closes a
        // cycle through position-wrapping shortcuts bridged by
        // forward-FINISH hops. (DSN-V fixes this with its dateline VC.)
        let dsne = DsnE::new(30).unwrap();
        let cdg = dsne_cdg(&dsne);
        assert!(
            cdg.find_cycle().is_some(),
            "expected the documented fine-grained DSN-E cycle"
        );
    }

    #[test]
    fn dsne_routing_diameter_preserved() {
        // Theorem 3: the extended routing keeps routing diameter <= 3p + r
        // (the path is the same as the basic algorithm's, only the links
        // ridden differ).
        let dsne = DsnE::new(128).unwrap();
        let dsn = dsne.base();
        let bound = 3 * dsn.p() as usize + dsn.r();
        for s in 0..128 {
            for t in 0..128 {
                let ch = dsne_route_channels(&dsne, s, t);
                assert!(ch.len() <= bound, "{s}->{t}: {} > {bound}", ch.len());
            }
        }
    }

    #[test]
    fn dsnv_channel_count_matches_route_length() {
        let dsn = Dsn::new(64, 5).unwrap();
        for (s, t) in [(0usize, 33usize), (10, 3), (63, 0), (5, 6)] {
            let tr = route(&dsn, s, t).unwrap();
            let ch = dsnv_route_channels(&dsn, s, t);
            assert_eq!(ch.len(), tr.hops());
        }
    }

    #[test]
    fn dsnv_vcs_monotone_per_route() {
        let dsn = Dsn::new(100, 6).unwrap();
        for s in 0..100 {
            for t in 0..100 {
                if s == t {
                    continue;
                }
                let ch = dsnv_route_channels(&dsn, s, t);
                let mut prev_vc = 0u8;
                for &(_, vc) in &ch {
                    assert!(vc >= prev_vc, "{s}->{t}: VC regressed");
                    prev_vc = vc;
                }
            }
        }
    }

    #[test]
    fn avoid_overshoot_dsnv_discipline_acyclic() {
        // The Section V.D variant under the DSN-V VC discipline stays
        // deadlock-free (machine-checked).
        for &n in &[30usize, 60, 126] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            let cdg = build_cdg(n, |s, t| dsnv_avoid_overshoot_channels(&dsn, s, t));
            assert!(
                cdg.is_acyclic(),
                "avoid-overshoot DSN-V CDG cyclic at n = {n}: {:?}",
                cdg.find_cycle()
            );
        }
    }

    #[test]
    fn dsnv_first_hop_matches_full_route() {
        for &n in &[30usize, 64, 100, 126] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            for s in 0..n {
                for t in 0..n {
                    let full = dsnv_route_channels(&dsn, s, t);
                    let first = dsnv_first_hop(&dsn, s, t);
                    assert_eq!(
                        full.first().copied(),
                        first,
                        "n={n} {s}->{t}: fast first hop diverges from full route"
                    );
                }
            }
        }
    }

    #[test]
    fn dsnv_step_matches_full_route_all_pairs() {
        // The incremental automaton must reproduce the materialized
        // hop/VC sequence bit-exactly — clean and non-clean sizes.
        for &n in &[30usize, 64, 100, 126] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            for s in 0..n {
                for t in 0..n {
                    let full = dsnv_route_channels(&dsn, s, t);
                    let mut stepped = Vec::new();
                    let mut u = s;
                    let mut st = DsnvState::default();
                    while let Some((ch, next, nst)) = dsnv_step_channel(&dsn, u, t, st) {
                        stepped.push(ch);
                        u = next;
                        st = nst;
                        assert!(stepped.len() <= 4 * n, "n={n} {s}->{t}: runaway walk");
                    }
                    assert_eq!(u, t, "n={n} {s}->{t}: stepped walk did not terminate at t");
                    assert_eq!(
                        full, stepped,
                        "n={n} {s}->{t}: incremental walk diverges from full route"
                    );
                }
            }
        }
    }

    #[test]
    fn dsnv_step_matches_full_route_sampled_large() {
        // Spot-check at the Fig. 7 scale the simulator targets.
        let dsn = Dsn::new_clean(1024).unwrap();
        let n = dsn.n();
        assert_eq!(n, 1020);
        for s in (0..n).step_by(37) {
            for t in (0..n).step_by(23) {
                let full = dsnv_route_channels(&dsn, s, t);
                let mut stepped = Vec::new();
                let mut u = s;
                let mut st = DsnvState::default();
                while let Some((ch, next, nst)) = dsnv_step_channel(&dsn, u, t, st) {
                    stepped.push(ch);
                    u = next;
                    st = nst;
                }
                assert_eq!(full, stepped, "n={n} {s}->{t}");
            }
        }
    }

    #[test]
    fn dsnv_state_bits_roundtrip() {
        for phase in [IncPhase::PreWork, IncPhase::Main, IncPhase::Finish] {
            for crossed in [false, true] {
                let st = DsnvState { phase, crossed };
                assert_eq!(DsnvState::from_bits(st.to_bits()), st);
            }
        }
    }

    #[test]
    fn dsne_uses_up_links_in_prework() {
        let dsne = DsnE::new(64).unwrap();
        let g = dsne.graph();
        // Find a pair with nonempty PRE-WORK: s level high, long distance.
        // Node 5 has level 6 (p = 6); distance to 37 is 32 = n/2 -> l = 1.
        let ch = dsne_route_channels(&dsne, 5, 37);
        let first_kind = g.edge(ch[0].0 / 2).kind;
        assert_eq!(first_kind, LinkKind::Up, "PRE-WORK must ride Up links");
    }
}
