//! Dimension-order routing (DOR) for tori and meshes, with the classic
//! dateline virtual-channel scheme for wrap-around deadlock freedom.
//!
//! DOR resolves dimensions one at a time (dimension 0 first); inside a
//! dimension it takes the shorter ring direction. A packet starts on VC 0
//! and switches to VC 1 when it crosses the dateline (the wrap link) of the
//! current dimension — the standard k-ary n-cube scheme from Dally &
//! Towles. This is the torus baseline's natural custom routing, which we
//! verify deadlock-free via the CDG checker.

use crate::cdg::{Cdg, VirtualChannel};
use dsn_core::graph::LinkKind;
use dsn_core::torus::Torus;
use dsn_core::NodeId;

/// One hop of a DOR route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DorHop {
    /// Edge traversed.
    pub edge: usize,
    /// Node arrived at.
    pub node: NodeId,
    /// Virtual channel used for this hop (0 before the dateline of the
    /// current dimension, 1 after).
    pub vc: u8,
}

/// Route `s -> t` by dimension order on `torus`, returning the hop list.
///
/// # Panics
/// Panics if a required link is missing (cannot happen for graphs built by
/// [`Torus`]).
pub fn dor_route(torus: &Torus, s: NodeId, t: NodeId) -> Vec<DorHop> {
    let g = torus.graph();
    let radices = torus.radices().to_vec();
    let mut hops = Vec::new();
    let mut cur = s;
    let mut cur_coords = torus.coords(cur);
    let t_coords = torus.coords(t);

    for (d, &k) in radices.iter().enumerate() {
        let mut vc = 0u8;
        while cur_coords[d] != t_coords[d] {
            // pick the shorter ring direction (+1 on tie)
            let up = (t_coords[d] + k - cur_coords[d]) % k; // steps going +1
            let step_up = if torus.is_torus() {
                up <= k - up
            } else {
                t_coords[d] > cur_coords[d]
            };
            let next_c = if step_up {
                (cur_coords[d] + 1) % k
            } else {
                (cur_coords[d] + k - 1) % k
            };
            // wrap detection: moving +1 from k-1 to 0, or -1 from 0 to k-1
            let wrapped = (step_up && next_c == 0) || (!step_up && cur_coords[d] == 0);
            if wrapped {
                vc = 1;
            }
            cur_coords[d] = next_c;
            let next = torus.node_at(&cur_coords);
            let edge = g
                .neighbors(cur)
                .find(|&(u, e)| {
                    u == next
                        && matches!(g.edge(e).kind, LinkKind::Torus { dim, .. } if dim as usize == d)
                })
                .map(|(_, e)| e)
                .expect("torus link must exist");
            cur = next;
            hops.push(DorHop {
                edge,
                node: cur,
                vc,
            });
        }
    }
    debug_assert_eq!(cur, t);
    hops
}

/// Build the CDG induced by DOR over every ordered pair and return it —
/// acyclic by construction, which the tests verify.
pub fn dor_cdg(torus: &Torus) -> Cdg {
    let g = torus.graph();
    let n = g.node_count();
    let mut cdg = Cdg::new();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let hops = dor_route(torus, s, t);
            let mut prev = s;
            let channels: Vec<VirtualChannel> = hops
                .iter()
                .map(|h| {
                    let c = (g.channel_id(h.edge, prev), h.vc);
                    prev = h.node;
                    c
                })
                .collect();
            cdg.add_route(&channels);
        }
    }
    cdg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_minimal_on_torus() {
        let torus = Torus::new(&[4, 4]).unwrap();
        for s in 0..16 {
            for t in 0..16 {
                let hops = dor_route(&torus, s, t);
                assert_eq!(hops.len(), torus.hop_distance(s, t), "{s}->{t}");
                if let Some(last) = hops.last() {
                    assert_eq!(last.node, t);
                }
            }
        }
    }

    #[test]
    fn dimension_order_respected() {
        let torus = Torus::new(&[4, 8]).unwrap();
        let g = torus.graph();
        for (s, t) in [(0usize, 27usize), (5, 30), (31, 1)] {
            let hops = dor_route(&torus, s, t);
            // Once a dim-1 link is used, no dim-0 link may follow.
            let mut seen_d1 = false;
            for h in &hops {
                match g.edge(h.edge).kind {
                    LinkKind::Torus { dim: 0, .. } => {
                        assert!(!seen_d1, "dimension order violated {s}->{t}")
                    }
                    LinkKind::Torus { dim: 1, .. } => seen_d1 = true,
                    k => panic!("unexpected link kind {k}"),
                }
            }
        }
    }

    #[test]
    fn dateline_bumps_vc() {
        let torus = Torus::new(&[8, 8]).unwrap();
        // 7 -> 0 in dim 1 crosses the wrap: route from (0,6) to (0,1) going
        // +1 twice wraps at 7 -> 0.
        let s = torus.node_at(&[0, 6]);
        let t = torus.node_at(&[0, 1]);
        let hops = dor_route(&torus, s, t);
        assert_eq!(hops.len(), 3);
        assert!(hops.iter().any(|h| h.vc == 1), "wrap must bump VC");
    }

    #[test]
    fn mesh_routes_never_wrap() {
        let mesh = Torus::mesh(&[4, 4]).unwrap();
        for s in 0..16 {
            for t in 0..16 {
                let hops = dor_route(&mesh, s, t);
                assert!(hops.iter().all(|h| h.vc == 0));
                assert_eq!(hops.len(), mesh.hop_distance(s, t));
            }
        }
    }

    #[test]
    fn dor_cdg_is_acyclic() {
        for radices in [[4usize, 4], [4, 8], [3, 5]] {
            let torus = Torus::new(&radices).unwrap();
            let cdg = dor_cdg(&torus);
            assert!(
                cdg.is_acyclic(),
                "DOR CDG must be acyclic on {radices:?} torus"
            );
        }
    }

    #[test]
    fn single_vc_torus_would_deadlock() {
        // Sanity for the checker: collapse all hops to VC 0 and the wrap
        // cycles appear.
        let torus = Torus::new(&[4, 4]).unwrap();
        let g = torus.graph();
        let mut cdg = Cdg::new();
        for s in 0..16 {
            for t in 0..16 {
                if s == t {
                    continue;
                }
                let hops = dor_route(&torus, s, t);
                let mut prev = s;
                let channels: Vec<VirtualChannel> = hops
                    .iter()
                    .map(|h| {
                        let c = (g.channel_id(h.edge, prev), 0u8);
                        prev = h.node;
                        c
                    })
                    .collect();
                cdg.add_route(&channels);
            }
        }
        assert!(
            cdg.find_cycle().is_some(),
            "single-VC torus DOR must show a wrap cycle"
        );
    }
}
