//! Routing hardware-cost estimation — the paper's recurring argument that
//! DSN's topological regularity "makes routing logic simple and small"
//! while topology-agnostic routing "needs a global knowledge of the
//! topology" (Sections I, II, VIII).
//!
//! We estimate the per-switch routing state in bits:
//!
//! * **DSN custom routing** — a switch needs its own id, `n`, `p`, `x` and
//!   its shortcut pointer; the decision is pure arithmetic on the
//!   destination id. State is `O(log n)` bits, table-free.
//! * **up*/down*** (as used for escape paths) — a per-destination next-hop
//!   table: `n` entries, each holding a port set (up to `degree` bits) plus
//!   the link orientation bits; `O(n * degree)` bits.
//! * **minimal-adaptive** — a per-destination candidate-port table of the
//!   same shape as up*/down* (it needs hop distances or precomputed
//!   next-hop sets).
//! * **torus DOR** — coordinates arithmetic: `O(log n)` bits, table-free.

use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_core::util::ceil_log2;

/// Estimated routing-logic cost for one scheme on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingCost {
    /// Scheme name.
    pub scheme: String,
    /// Worst-case per-switch state, in bits.
    pub state_bits_per_switch: u64,
    /// Table entries per switch (0 for arithmetic/table-free schemes).
    pub table_entries_per_switch: u64,
    /// One-line description of the per-hop decision logic.
    pub decision_logic: &'static str,
}

impl RoutingCost {
    /// Aggregate state over the whole network, in bytes.
    pub fn total_bytes(&self, switches: usize) -> u64 {
        self.state_bits_per_switch * switches as u64 / 8
    }
}

/// Cost of the DSN custom three-phase routing.
pub fn dsn_custom_cost(dsn: &Dsn) -> RoutingCost {
    let id_bits = ceil_log2(dsn.n().max(2)) as u64;
    // own id + n + p + x + shortcut target + a handful of comparators'
    // operand registers (destination, distance, required level).
    let state = id_bits /* own id */
        + id_bits /* n */
        + 8 /* p */
        + 8 /* x */
        + id_bits /* shortcut pointer */
        + 3 * id_bits /* dest, distance, level scratch */;
    RoutingCost {
        scheme: format!("dsn-custom (n = {})", dsn.n()),
        state_bits_per_switch: state,
        table_entries_per_switch: 0,
        decision_logic: "compare level(u) with floor(log2(n/d))+1; pick pred/succ/shortcut",
    }
}

/// Cost of table-based up*/down* routing on an arbitrary graph.
pub fn updown_cost(g: &Graph) -> RoutingCost {
    let n = g.node_count() as u64;
    let ports = g.max_degree() as u64;
    // Per destination: a legal-next-hop bitmask over ports, for each of the
    // two phases, plus per-port orientation bits.
    let entry_bits = 2 * ports;
    let state = n * entry_bits + ports /* up/down orientation */;
    RoutingCost {
        scheme: format!("up*/down* table (n = {})", g.node_count()),
        state_bits_per_switch: state,
        table_entries_per_switch: n,
        decision_logic: "index table by destination; mask by phase legality",
    }
}

/// Cost of minimal-adaptive routing with an escape layer (the paper's
/// simulator scheme): candidate table + the up*/down* escape table.
pub fn adaptive_escape_cost(g: &Graph) -> RoutingCost {
    let n = g.node_count() as u64;
    let ports = g.max_degree() as u64;
    let ud = updown_cost(g);
    let state = n * ports /* minimal candidate mask per destination */
        + ud.state_bits_per_switch;
    RoutingCost {
        scheme: format!("adaptive+escape tables (n = {})", g.node_count()),
        state_bits_per_switch: state,
        table_entries_per_switch: 2 * n,
        decision_logic: "candidate mask lookup; fall back to escape table",
    }
}

/// Cost of dimension-order routing on a torus.
pub fn dor_cost(t: &Torus) -> RoutingCost {
    let coord_bits: u64 = t
        .radices()
        .iter()
        .map(|&k| ceil_log2(k.max(2)) as u64)
        .sum();
    let state = 2 * coord_bits /* own + destination coordinates */ + 8 /* dim cursor + vc */;
    RoutingCost {
        scheme: format!("torus DOR ({:?})", t.radices()),
        state_bits_per_switch: state,
        table_entries_per_switch: 0,
        decision_logic: "per-dimension coordinate compare; dateline VC flip",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_routing_is_logarithmic() {
        let small = dsn_custom_cost(&Dsn::new(64, 5).unwrap());
        let large = dsn_custom_cost(&Dsn::new(2048, 10).unwrap());
        // Growing n 32x adds only a few bits per id field.
        assert!(large.state_bits_per_switch < small.state_bits_per_switch + 64);
        assert_eq!(large.table_entries_per_switch, 0);
    }

    #[test]
    fn table_routing_is_linear() {
        let small = updown_cost(Dsn::new(64, 5).unwrap().graph());
        let large = updown_cost(Dsn::new(2048, 10).unwrap().graph());
        assert!(large.state_bits_per_switch >= 16 * small.state_bits_per_switch);
        assert_eq!(large.table_entries_per_switch, 2048);
    }

    #[test]
    fn paper_claim_custom_much_smaller_than_tables() {
        // "routing logic at each switch is expected to be simple and small"
        let dsn = Dsn::new(1020, 9).unwrap();
        let custom = dsn_custom_cost(&dsn);
        let table = updown_cost(dsn.graph());
        let adaptive = adaptive_escape_cost(dsn.graph());
        assert!(custom.state_bits_per_switch * 50 < table.state_bits_per_switch);
        assert!(table.state_bits_per_switch < adaptive.state_bits_per_switch);
    }

    #[test]
    fn dor_is_tiny_too() {
        let t = Torus::square_2d(1024).unwrap();
        let c = dor_cost(&t);
        assert!(c.state_bits_per_switch < 64);
        assert_eq!(c.table_entries_per_switch, 0);
    }

    #[test]
    fn total_bytes_scales_with_switches() {
        let dsn = Dsn::new(256, 7).unwrap();
        let c = updown_cost(dsn.graph());
        assert_eq!(c.total_bytes(256), c.state_bits_per_switch * 256 / 8);
    }
}
