//! Channel Dependency Graph (CDG) construction and cycle detection —
//! Dally & Seitz's classic criterion: a routing function is deadlock-free
//! if (and for coherent functions, only if) its CDG is acyclic.
//!
//! The paper's Theorem 3 argues deadlock freedom of the extended DSN-E /
//! DSN-V routing by grouping channels (Up, Succ+Shortcut, Pred+Extra) and
//! showing the inter-group and intra-group dependencies are acyclic. Here
//! we verify that *empirically and exactly*: enumerate every route the
//! deterministic routing algorithm produces, record each consecutive
//! virtual-channel pair as a dependency, and run a cycle check.

use std::collections::{HashMap, HashSet};

/// A virtual channel: a directed physical channel id (see
/// [`dsn_core::graph::Graph::channel_id`]) plus a virtual-channel index.
pub type VirtualChannel = (usize, u8);

/// A channel dependency graph over virtual channels.
#[derive(Debug, Default, Clone)]
pub struct Cdg {
    /// Adjacency: `deps[c]` = set of channels that `c` can wait on
    /// (i.e. the packet holds `c` while requesting them).
    deps: HashMap<VirtualChannel, HashSet<VirtualChannel>>,
}

impl Cdg {
    /// Empty CDG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a packet holding `from` may request `to`.
    pub fn add_dependency(&mut self, from: VirtualChannel, to: VirtualChannel) {
        self.deps.entry(from).or_default().insert(to);
        self.deps.entry(to).or_default();
    }

    /// Record all consecutive dependencies along a route given as a
    /// sequence of virtual channels.
    pub fn add_route(&mut self, channels: &[VirtualChannel]) {
        for w in channels.windows(2) {
            self.add_dependency(w[0], w[1]);
        }
        if let [only] = channels {
            self.deps.entry(*only).or_default();
        }
    }

    /// Number of channels that appear in the CDG.
    pub fn channel_count(&self) -> usize {
        self.deps.len()
    }

    /// Number of dependency arcs.
    pub fn dependency_count(&self) -> usize {
        self.deps.values().map(HashSet::len).sum()
    }

    /// Find a dependency cycle, if any, as a channel sequence whose last
    /// element depends on the first. Returns `None` when the CDG is acyclic
    /// (routing is deadlock-free by the Dally–Seitz criterion).
    pub fn find_cycle(&self) -> Option<Vec<VirtualChannel>> {
        // Iterative DFS with tri-color marking.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<VirtualChannel, Color> =
            self.deps.keys().map(|&c| (c, Color::White)).collect();
        let mut parent: HashMap<VirtualChannel, VirtualChannel> = HashMap::new();

        // Deterministic iteration order for reproducible counterexamples.
        let mut roots: Vec<VirtualChannel> = self.deps.keys().copied().collect();
        roots.sort_unstable();

        for &root in &roots {
            if color[&root] != Color::White {
                continue;
            }
            // stack holds (node, next-neighbor-cursor)
            let mut order: Vec<VirtualChannel> = Vec::new();
            let mut stack: Vec<(VirtualChannel, Vec<VirtualChannel>, usize)> = Vec::new();
            let mut nbrs: Vec<VirtualChannel> = self.deps[&root].iter().copied().collect();
            nbrs.sort_unstable();
            color.insert(root, Color::Gray);
            order.push(root);
            stack.push((root, nbrs, 0));
            while let Some((v, nbrs, cursor)) = stack.last_mut() {
                if *cursor >= nbrs.len() {
                    color.insert(*v, Color::Black);
                    order.pop();
                    stack.pop();
                    continue;
                }
                let u = nbrs[*cursor];
                *cursor += 1;
                match color[&u] {
                    Color::White => {
                        parent.insert(u, *v);
                        color.insert(u, Color::Gray);
                        order.push(u);
                        let mut un: Vec<VirtualChannel> = self.deps[&u].iter().copied().collect();
                        un.sort_unstable();
                        stack.push((u, un, 0));
                    }
                    Color::Gray => {
                        // Found a back edge v -> u: cycle = u ... v.
                        let pos = order.iter().position(|&c| c == u).expect("gray in order");
                        return Some(order[pos..].to_vec());
                    }
                    Color::Black => {}
                }
            }
        }
        None
    }

    /// True when no dependency cycle exists.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_acyclic() {
        assert!(Cdg::new().is_acyclic());
    }

    #[test]
    fn chain_is_acyclic() {
        let mut cdg = Cdg::new();
        cdg.add_route(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.channel_count(), 4);
        assert_eq!(cdg.dependency_count(), 3);
    }

    #[test]
    fn two_cycle_detected() {
        let mut cdg = Cdg::new();
        cdg.add_dependency((0, 0), (1, 0));
        cdg.add_dependency((1, 0), (0, 0));
        let cycle = cdg.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn ring_cycle_detected() {
        // Classic ring deadlock: c0 -> c1 -> c2 -> c3 -> c0.
        let mut cdg = Cdg::new();
        for i in 0..4usize {
            cdg.add_dependency((i, 0), ((i + 1) % 4, 0));
        }
        let cycle = cdg.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 4);
        // Every consecutive pair (and the wrap) must be a real dependency.
        for w in cycle.windows(2) {
            assert!(cdg.deps[&w[0]].contains(&w[1]));
        }
        assert!(cdg.deps[cycle.last().unwrap()].contains(&cycle[0]));
    }

    #[test]
    fn vc_split_breaks_cycle() {
        // Same ring but the last hop moves to VC 1 — the standard dateline
        // fix. Must be acyclic.
        let mut cdg = Cdg::new();
        cdg.add_dependency((0, 0), (1, 0));
        cdg.add_dependency((1, 0), (2, 0));
        cdg.add_dependency((2, 0), (3, 0));
        cdg.add_dependency((3, 0), (0, 1)); // crosses the dateline: bump VC
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn diamond_with_reconvergence_is_acyclic() {
        let mut cdg = Cdg::new();
        cdg.add_route(&[(0, 0), (1, 0), (3, 0)]);
        cdg.add_route(&[(0, 0), (2, 0), (3, 0)]);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn single_channel_route() {
        let mut cdg = Cdg::new();
        cdg.add_route(&[(5, 2)]);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.channel_count(), 1);
    }
}
