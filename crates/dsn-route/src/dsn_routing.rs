//! The paper's custom three-phase routing algorithm for DSN-x (Figure 2).
//!
//! Routing from `s` to `t` works on clockwise ring distance `d`:
//!
//! 1. **PRE-WORK** — walk `pred` links until the current node's level drops
//!    to the *required level* `l = floor(log2(n/d)) + 1`, i.e. climb to a
//!    node high enough to "look over" to `t`;
//! 2. **MAIN-PROCESS** — repeatedly either take the owned shortcut (when
//!    the current level equals the required level; this halves the
//!    remaining distance) or walk one `succ` step (to reach the super-node
//!    sibling that owns the right shortcut). Stops when the level runs out
//!    of shortcuts (`l_u = x + 1`), the remaining distance is at most `p`,
//!    or a shortcut overshot `t`;
//! 3. **FINISH** — a local `succ`/`pred` walk to `t`.
//!
//! Fact 2 bounds the resulting path by `3p + r` hops for
//! `x > p - log2 p`; Theorem 2a bounds the expected length by `2p`.

use dsn_core::dsn::Dsn;
use dsn_core::parallel::Parallelism;
use dsn_core::NodeId;
use rayon::prelude::*;

/// Kind of move the router took on one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStep {
    /// Counter-clockwise ring move (PRE-WORK, or FINISH after overshoot).
    Pred,
    /// Clockwise ring move (MAIN-PROCESS gap walk, or FINISH).
    Succ,
    /// Distance-halving shortcut (MAIN-PROCESS).
    Shortcut,
}

/// Which phase a hop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePhase {
    /// Climb to the required height.
    PreWork,
    /// Distance-halving loop.
    Main,
    /// Local walk to the destination.
    Finish,
}

/// A fully traced route: node sequence plus per-hop step/phase labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTrace {
    /// Visited nodes, starting at the source and ending at the destination.
    pub path: Vec<NodeId>,
    /// `steps[i]` describes the hop from `path[i]` to `path[i+1]`.
    pub steps: Vec<RouteStep>,
    /// `phases[i]` is the phase of hop `i`.
    pub phases: Vec<RoutePhase>,
    /// Whether the MAIN-PROCESS overshot the destination.
    pub overshoot: bool,
}

impl RouteTrace {
    /// Total hop count.
    #[inline]
    pub fn hops(&self) -> usize {
        self.steps.len()
    }

    /// Hops spent in the given phase.
    pub fn hops_in(&self, phase: RoutePhase) -> usize {
        self.phases.iter().filter(|&&p| p == phase).count()
    }

    /// Number of shortcut hops taken.
    pub fn shortcut_hops(&self) -> usize {
        self.steps
            .iter()
            .filter(|&&s| s == RouteStep::Shortcut)
            .count()
    }
}

/// Errors the router can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A node id was out of range.
    NodeOutOfRange(NodeId),
    /// The step cap was exceeded — indicates a construction bug, never an
    /// expected outcome.
    StepCapExceeded {
        /// Source of the failed route.
        s: NodeId,
        /// Destination of the failed route.
        t: NodeId,
        /// Cap that was hit.
        cap: usize,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            RouteError::StepCapExceeded { s, t, cap } => {
                write!(f, "routing {s} -> {t} exceeded the {cap}-hop step cap")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Route `s -> t` on the basic DSN with the paper's algorithm and return the
/// full trace.
pub fn route(dsn: &Dsn, s: NodeId, t: NodeId) -> Result<RouteTrace, RouteError> {
    let n = dsn.n();
    if s >= n {
        return Err(RouteError::NodeOutOfRange(s));
    }
    if t >= n {
        return Err(RouteError::NodeOutOfRange(t));
    }

    let mut trace = RouteTrace {
        path: vec![s],
        steps: Vec::new(),
        phases: Vec::new(),
        overshoot: false,
    };
    if s == t {
        return Ok(trace);
    }

    let p = dsn.p() as usize;
    let x = dsn.x();
    // Generous cap: PRE-WORK <= p, MAIN <= 2p + overshoot, FINISH can be
    // long for small x (up to n / 2^x), so cap at the trivially safe 4n.
    let cap = 4 * n;
    let mut u = s;

    let push = |trace: &mut RouteTrace, v: NodeId, step: RouteStep, phase: RoutePhase| {
        trace.path.push(v);
        trace.steps.push(step);
        trace.phases.push(phase);
    };

    // PRE-WORK: move pred while our level is below the required height
    // (numerically: level greater than required level).
    loop {
        let d = dsn.cw_dist(u, t);
        if d == 0 {
            return Ok(trace);
        }
        let l = dsn.required_level(d);
        if dsn.level(u) <= l {
            break;
        }
        u = dsn.pred(u);
        push(&mut trace, u, RouteStep::Pred, RoutePhase::PreWork);
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }

    // MAIN-PROCESS: shortcut when level matches, otherwise succ.
    loop {
        let d = dsn.cw_dist(u, t);
        if d == 0 {
            return Ok(trace);
        }
        if d <= p {
            break; // close enough; leave the rest to FINISH
        }
        let lu = dsn.level(u);
        if lu > x {
            // The paper writes this stop condition as "l_u = x + 1"; for
            // small x the current level can also sit above x + 1 right
            // after PRE-WORK, so test the general form.
            break; // no shortcut at this level
        }
        let l = dsn.required_level(d);
        if lu == l {
            let target = dsn
                .shortcut(u)
                .expect("level <= x nodes always own a shortcut");
            let jump = dsn.cw_dist(u, target);
            let overshoot = jump > d;
            u = target;
            push(&mut trace, u, RouteStep::Shortcut, RoutePhase::Main);
            if overshoot {
                trace.overshoot = true;
                break;
            }
        } else {
            u = dsn.succ(u);
            push(&mut trace, u, RouteStep::Succ, RoutePhase::Main);
        }
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }

    // FINISH: local walk. If the last shortcut overshot, walk back via
    // pred; otherwise walk forward via succ.
    while u != t {
        let d = dsn.cw_dist(u, t);
        let back = dsn.cw_dist(t, u);
        if d <= back {
            u = dsn.succ(u);
            push(&mut trace, u, RouteStep::Succ, RoutePhase::Finish);
        } else {
            u = dsn.pred(u);
            push(&mut trace, u, RouteStep::Pred, RoutePhase::Finish);
        }
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }

    Ok(trace)
}

/// The Section V.D *overshoot-avoiding* routing variant: when the selected
/// shortcut would overshoot the destination, step to the successor and use
/// its (shorter, next-level) shortcut instead. The returned trace never
/// overshoots, so FINISH only ever walks forward — at the cost of a
/// possibly longer MAIN-PROCESS, exactly the trade-off the paper predicts.
pub fn route_avoid_overshoot(dsn: &Dsn, s: NodeId, t: NodeId) -> Result<RouteTrace, RouteError> {
    let n = dsn.n();
    if s >= n {
        return Err(RouteError::NodeOutOfRange(s));
    }
    if t >= n {
        return Err(RouteError::NodeOutOfRange(t));
    }
    let mut trace = RouteTrace {
        path: vec![s],
        steps: Vec::new(),
        phases: Vec::new(),
        overshoot: false,
    };
    if s == t {
        return Ok(trace);
    }
    let p = dsn.p() as usize;
    let x = dsn.x();
    let cap = 4 * n;
    let mut u = s;

    let push = |trace: &mut RouteTrace, v: NodeId, step: RouteStep, phase: RoutePhase| {
        trace.path.push(v);
        trace.steps.push(step);
        trace.phases.push(phase);
    };

    // PRE-WORK: identical to the basic algorithm.
    loop {
        let d = dsn.cw_dist(u, t);
        if d == 0 {
            return Ok(trace);
        }
        let l = dsn.required_level(d);
        if dsn.level(u) <= l {
            break;
        }
        u = dsn.pred(u);
        push(&mut trace, u, RouteStep::Pred, RoutePhase::PreWork);
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }

    // MAIN: take any non-overshooting shortcut at or above the required
    // level; otherwise step succ (which also walks past overshooting
    // shortcuts onto the next, shorter one — the Section V.D twist).
    loop {
        let d = dsn.cw_dist(u, t);
        if d == 0 {
            return Ok(trace);
        }
        if d <= p {
            break;
        }
        let lu = dsn.level(u);
        if lu > x {
            break;
        }
        let l = dsn.required_level(d);
        let jump_ok = lu >= l && dsn.shortcut(u).is_some_and(|sc| dsn.cw_dist(u, sc) <= d);
        if jump_ok {
            let target = dsn.shortcut(u).expect("checked above");
            u = target;
            push(&mut trace, u, RouteStep::Shortcut, RoutePhase::Main);
        } else {
            u = dsn.succ(u);
            push(&mut trace, u, RouteStep::Succ, RoutePhase::Main);
        }
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }

    // FINISH: forward-only by construction.
    while u != t {
        u = dsn.succ(u);
        push(&mut trace, u, RouteStep::Succ, RoutePhase::Finish);
        if trace.steps.len() > cap {
            return Err(RouteError::StepCapExceeded { s, t, cap });
        }
    }
    Ok(trace)
}

/// Summary statistics of the custom routing over every ordered pair
/// (or a deterministic sample when `sample` is set below `n*(n-1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingStats {
    /// Pairs measured.
    pub pairs: usize,
    /// Maximum route length (the *routing diameter* of Fact 2).
    pub max_hops: usize,
    /// Mean route length (Theorem 2a bounds this by `2p`).
    pub avg_hops: f64,
    /// Mean hops per phase: (PRE-WORK, MAIN, FINISH).
    pub avg_phase_hops: (f64, f64, f64),
    /// Fraction of routes that overshot.
    pub overshoot_rate: f64,
}

/// Per-source accumulation of the all-pairs sweep. Integer-only, so the
/// parallel per-source merge is exact (no float-order effects): the final
/// averages are computed once from the merged integer sums, which makes
/// the parallel result bit-identical to the serial loop by construction.
#[derive(Debug, Clone, Copy, Default)]
struct StatsPartial {
    max_hops: usize,
    sum: u64,
    phase_sums: (u64, u64, u64),
    overshoots: usize,
    pairs: usize,
}

impl StatsPartial {
    fn merge(mut self, other: StatsPartial) -> StatsPartial {
        self.max_hops = self.max_hops.max(other.max_hops);
        self.sum += other.sum;
        self.phase_sums.0 += other.phase_sums.0;
        self.phase_sums.1 += other.phase_sums.1;
        self.phase_sums.2 += other.phase_sums.2;
        self.overshoots += other.overshoots;
        self.pairs += other.pairs;
        self
    }
}

/// Routes from one source to every other node — the unit of work both the
/// serial and the parallel sweep share.
fn source_partial(dsn: &Dsn, s: NodeId) -> StatsPartial {
    let mut part = StatsPartial::default();
    for t in 0..dsn.n() {
        if s == t {
            continue;
        }
        let tr = route(dsn, s, t).expect("routing must not fail on a valid DSN");
        part.max_hops = part.max_hops.max(tr.hops());
        part.sum += tr.hops() as u64;
        part.phase_sums.0 += tr.hops_in(RoutePhase::PreWork) as u64;
        part.phase_sums.1 += tr.hops_in(RoutePhase::Main) as u64;
        part.phase_sums.2 += tr.hops_in(RoutePhase::Finish) as u64;
        part.overshoots += tr.overshoot as usize;
        part.pairs += 1;
    }
    part
}

fn finish_stats(total: StatsPartial) -> RoutingStats {
    let pf = total.pairs.max(1) as f64;
    RoutingStats {
        pairs: total.pairs,
        max_hops: total.max_hops,
        avg_hops: total.sum as f64 / pf,
        avg_phase_hops: (
            total.phase_sums.0 as f64 / pf,
            total.phase_sums.1 as f64 / pf,
            total.phase_sums.2 as f64 / pf,
        ),
        overshoot_rate: total.overshoots as f64 / pf,
    }
}

/// Route every ordered pair `(s, t)` with `s != t` and aggregate, fanned
/// out per source over the rayon pool.
pub fn routing_stats(dsn: &Dsn) -> RoutingStats {
    routing_stats_with(dsn, &Parallelism::auto())
}

/// [`routing_stats`] under an explicit [`Parallelism`] policy. The serial
/// and parallel paths run the same per-source unit and merge integer
/// partials in source order, so their results are bit-identical.
pub fn routing_stats_with(dsn: &Dsn, par: &Parallelism) -> RoutingStats {
    let n = dsn.n();
    let total = if par.is_serial() {
        (0..n)
            .map(|s| source_partial(dsn, s))
            .fold(StatsPartial::default(), StatsPartial::merge)
    } else {
        (0..n)
            .into_par_iter()
            .map(|s| source_partial(dsn, s))
            .reduce(StatsPartial::default, StatsPartial::merge)
    };
    finish_stats(total)
}

/// The reference sequential sweep (`routing_stats_with` with
/// [`Parallelism::serial`]); kept as a named entry point for equivalence
/// tests and benchmarks.
pub fn routing_stats_serial(dsn: &Dsn) -> RoutingStats {
    routing_stats_with(dsn, &Parallelism::serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_path_valid(dsn: &Dsn, tr: &RouteTrace, s: NodeId, t: NodeId) {
        assert_eq!(tr.path[0], s);
        assert_eq!(*tr.path.last().unwrap(), t);
        assert_eq!(tr.path.len(), tr.steps.len() + 1);
        for (i, step) in tr.steps.iter().enumerate() {
            let (a, b) = (tr.path[i], tr.path[i + 1]);
            match step {
                RouteStep::Succ => assert_eq!(b, dsn.succ(a), "hop {i}"),
                RouteStep::Pred => assert_eq!(b, dsn.pred(a), "hop {i}"),
                RouteStep::Shortcut => {
                    assert_eq!(Some(b), dsn.shortcut(a), "hop {i}");
                    // Shortcuts are physical links.
                    assert!(dsn.graph().has_edge(a, b), "hop {i} not a link");
                }
            }
        }
    }

    #[test]
    fn reaches_every_destination_small() {
        let dsn = Dsn::new(64, 5).unwrap();
        for s in 0..64 {
            for t in 0..64 {
                let tr = route(&dsn, s, t).unwrap();
                check_path_valid(&dsn, &tr, s, t);
            }
        }
    }

    #[test]
    fn trivial_route() {
        let dsn = Dsn::new(64, 5).unwrap();
        let tr = route(&dsn, 7, 7).unwrap();
        assert_eq!(tr.hops(), 0);
        assert_eq!(tr.path, vec![7]);
    }

    #[test]
    fn fact2_routing_diameter_bound() {
        // Fact 2: max path length <= 3p + r for x > p - log2 p.
        for &n in &[64usize, 128, 200, 256] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            let stats = routing_stats(&dsn);
            let bound = 3 * p as usize + dsn.r();
            assert!(
                stats.max_hops <= bound,
                "n={n}: routing diameter {} > {bound}",
                stats.max_hops
            );
        }
    }

    #[test]
    fn theorem2a_expected_route_length() {
        // E[route] <= 2p for uniform s, t (Theorem 2a).
        for &n in &[128usize, 256, 512] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            let stats = routing_stats(&dsn);
            assert!(
                stats.avg_hops <= 2.0 * p as f64,
                "n={n}: avg {} > 2p = {}",
                stats.avg_hops,
                2 * p
            );
        }
    }

    #[test]
    fn phases_ordered_correctly() {
        let dsn = Dsn::new(256, 7).unwrap();
        for (s, t) in [(3usize, 250usize), (100, 5), (0, 128), (255, 254)] {
            let tr = route(&dsn, s, t).unwrap();
            // Phases must appear in PreWork* Main* Finish* order.
            let mut max_rank = 0u8;
            for ph in &tr.phases {
                let rank = match ph {
                    RoutePhase::PreWork => 0,
                    RoutePhase::Main => 1,
                    RoutePhase::Finish => 2,
                };
                assert!(rank >= max_rank, "phase order violated for {s}->{t}");
                max_rank = max_rank.max(rank);
            }
        }
    }

    #[test]
    fn prework_bounded_by_p() {
        let dsn = Dsn::new(512, 8).unwrap();
        for s in (0..512).step_by(7) {
            for t in (0..512).step_by(13) {
                let tr = route(&dsn, s, t).unwrap();
                assert!(tr.hops_in(RoutePhase::PreWork) <= dsn.p() as usize);
            }
        }
    }

    #[test]
    fn small_x_still_terminates() {
        // With x = 1 the MAIN loop stops at level 2 and FINISH may be long,
        // but routing must still succeed.
        let dsn = Dsn::new(64, 1).unwrap();
        for s in 0..64 {
            for t in 0..64 {
                let tr = route(&dsn, s, t).unwrap();
                check_path_valid(&dsn, &tr, s, t);
            }
        }
    }

    #[test]
    fn incomplete_supernode_handled() {
        // n = 100, p = 7, r = 2: the final super node is incomplete.
        let dsn = Dsn::new(100, 6).unwrap();
        assert!(dsn.r() > 0);
        let stats = routing_stats(&dsn);
        assert!(stats.max_hops <= 3 * 7 + dsn.r());
    }

    #[test]
    fn stats_consistency() {
        let dsn = Dsn::new(64, 5).unwrap();
        let stats = routing_stats(&dsn);
        assert_eq!(stats.pairs, 64 * 63);
        let (a, b, c) = stats.avg_phase_hops;
        assert!((a + b + c - stats.avg_hops).abs() < 1e-9);
        assert!(stats.overshoot_rate >= 0.0 && stats.overshoot_rate <= 1.0);
    }

    #[test]
    fn avoid_overshoot_never_overshoots_and_reaches() {
        for &n in &[64usize, 100, 256] {
            let p = dsn_core::util::ceil_log2(n);
            let dsn = Dsn::new(n, p - 1).unwrap();
            for s in (0..n).step_by(3) {
                for t in (0..n).step_by(5) {
                    let tr = route_avoid_overshoot(&dsn, s, t).unwrap();
                    assert!(!tr.overshoot);
                    assert_eq!(*tr.path.last().unwrap(), t);
                    // Forward-only FINISH: no Pred steps outside PRE-WORK.
                    for (i, &st) in tr.steps.iter().enumerate() {
                        if st == RouteStep::Pred {
                            assert_eq!(tr.phases[i], RoutePhase::PreWork, "{s}->{t}");
                        }
                    }
                    // Every hop is still a physical link.
                    for w in tr.path.windows(2) {
                        assert!(dsn.graph().has_edge(w[0], w[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn avoid_overshoot_stays_within_routing_bound() {
        // The variant should stay within the same asymptotic envelope; use
        // a slightly relaxed 3.5p + r cap (MAIN may be longer, FINISH
        // shorter).
        let n = 252; // p = 8, r = 4
        let dsn = Dsn::new(n, 7).unwrap();
        let bound = (3.5 * 8.0) as usize + dsn.r();
        for s in 0..n {
            for t in 0..n {
                let tr = route_avoid_overshoot(&dsn, s, t).unwrap();
                assert!(tr.hops() <= bound, "{s}->{t}: {} > {bound}", tr.hops());
            }
        }
    }

    #[test]
    fn avoid_overshoot_shrinks_finish_on_average() {
        // Section V.D: "will help to reduce a lot in the FINISH, but may
        // prolong the MAIN-PROCESS".
        let dsn = Dsn::new(256, 7).unwrap();
        let (mut fin_basic, mut fin_avoid) = (0usize, 0usize);
        let (mut main_basic, mut main_avoid) = (0usize, 0usize);
        for s in (0..256).step_by(3) {
            for t in (0..256).step_by(7) {
                let b = route(&dsn, s, t).unwrap();
                let a = route_avoid_overshoot(&dsn, s, t).unwrap();
                fin_basic += b.hops_in(RoutePhase::Finish);
                fin_avoid += a.hops_in(RoutePhase::Finish);
                main_basic += b.hops_in(RoutePhase::Main);
                main_avoid += a.hops_in(RoutePhase::Main);
            }
        }
        assert!(
            fin_avoid <= fin_basic,
            "FINISH should shrink: {fin_avoid} vs {fin_basic}"
        );
        assert!(
            main_avoid >= main_basic,
            "MAIN expected to grow or stay: {main_avoid} vs {main_basic}"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let dsn = Dsn::new(64, 5).unwrap();
        assert_eq!(route(&dsn, 64, 0), Err(RouteError::NodeOutOfRange(64)));
        assert_eq!(route(&dsn, 0, 99), Err(RouteError::NodeOutOfRange(99)));
    }
}
