//! Static channel-load analysis — the traffic-balance study of
//! Section VII.B ("our custom routing makes traffic significantly more
//! balanced than using up*/down* routing").
//!
//! Under all-to-all (uniform) traffic, each ordered pair contributes one
//! unit of flow along its route; the per-directed-channel totals expose the
//! imbalance a routing function induces. For deterministic routing the
//! route is unique; for up*/down* we split flow *equally across all minimal
//! legal next hops* (the idealized behavior of an adaptive router), which
//! is both deterministic and the most charitable reading of up*/down*.

use crate::dsn_routing::{route, RouteStep};
use crate::updown::{UdPhase, UpDown};
use dsn_core::dsn::Dsn;
use dsn_core::graph::{Graph, LinkKind};
use dsn_core::NodeId;

/// Summary statistics of a per-channel load vector.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Number of directed channels considered (all of them, including
    /// idle ones).
    pub channels: usize,
    /// Total flow units routed (= sum of route lengths).
    pub total: f64,
    /// Mean channel load.
    pub mean: f64,
    /// Maximum channel load — the bottleneck that caps throughput.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Gini coefficient of the load distribution (0 = perfectly even).
    pub gini: f64,
}

impl LoadStats {
    /// Bottleneck ratio `max / mean`; lower is better balanced, and the
    /// saturation throughput of uniform traffic scales as `1 / max`.
    pub fn max_over_mean(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max / self.mean
        }
    }

    /// Compute from a raw per-channel load vector.
    pub fn from_loads(loads: &[f64]) -> LoadStats {
        let n = loads.len();
        if n == 0 {
            return LoadStats {
                channels: 0,
                total: 0.0,
                mean: 0.0,
                max: 0.0,
                std: 0.0,
                gini: 0.0,
            };
        }
        let total: f64 = loads.iter().sum();
        let mean = total / n as f64;
        let max = loads.iter().copied().fold(0.0f64, f64::max);
        let var = loads.iter().map(|&l| (l - mean) * (l - mean)).sum::<f64>() / n as f64;
        let mut sorted = loads.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n  (1-indexed)
        let gini = if total > 0.0 {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x)
                .sum();
            (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
        } else {
            0.0
        };
        LoadStats {
            channels: n,
            total,
            mean,
            max,
            std: var.sqrt(),
            gini,
        }
    }
}

/// Channel loads induced by the DSN custom routing under all-to-all
/// traffic (one unit per ordered pair; deterministic single path).
pub fn dsn_custom_loads(dsn: &Dsn) -> Vec<f64> {
    let g = dsn.graph();
    let n = dsn.n();
    let mut loads = vec![0.0f64; g.channel_count()];
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let tr = route(dsn, s, t).expect("route");
            let mut prev = s;
            for (i, &step) in tr.steps.iter().enumerate() {
                let cur = tr.path[i + 1];
                let edge = pick_edge(g, prev, cur, step);
                loads[g.channel_id(edge, prev)] += 1.0;
                prev = cur;
            }
        }
    }
    loads
}

fn pick_edge(g: &Graph, a: NodeId, b: NodeId, step: RouteStep) -> usize {
    let want_ring = matches!(step, RouteStep::Succ | RouteStep::Pred);
    g.neighbors(a)
        .find(|&(u, e)| {
            u == b
                && if want_ring {
                    g.edge(e).kind == LinkKind::Ring
                } else {
                    matches!(g.edge(e).kind, LinkKind::Shortcut { .. })
                }
        })
        .or_else(|| g.neighbors(a).find(|&(u, _)| u == b))
        .map(|(_, e)| e)
        .expect("hop must be a physical link")
}

/// Channel loads induced by up*/down* routing under all-to-all traffic,
/// with flow split equally over all minimal legal next hops (idealized
/// adaptive behavior). Exact fractional-flow computation per destination.
pub fn updown_loads(g: &Graph, ud: &UpDown) -> Vec<f64> {
    let n = g.node_count();
    let mut loads = vec![0.0f64; g.channel_count()];
    // Flow over states (node, phase); phase 0 = Up, 1 = Down.
    let mut flow = vec![0.0f64; 2 * n];
    for t in 0..n {
        flow.iter_mut().for_each(|f| *f = 0.0);
        // Each source injects 1 unit in the Up phase.
        for s in 0..n {
            if s != t {
                flow[2 * s] += 1.0;
            }
        }
        // Process states in decreasing legal distance so every incoming
        // contribution arrives before a state is expanded.
        let mut order: Vec<usize> = (0..2 * n)
            .filter(|&st| {
                let (v, ph) = (st / 2, st % 2);
                let phase = if ph == 0 { UdPhase::Up } else { UdPhase::Down };
                v != t && ud.distance_phased(v, phase, t) != u32::MAX
            })
            .collect();
        order.sort_by_key(|&st| {
            let (v, ph) = (st / 2, st % 2);
            let phase = if ph == 0 { UdPhase::Up } else { UdPhase::Down };
            std::cmp::Reverse(ud.distance_phased(v, phase, t))
        });
        for st in order {
            let (v, ph) = (st / 2, st % 2);
            let f = flow[st];
            if f == 0.0 {
                continue;
            }
            let phase = if ph == 0 { UdPhase::Up } else { UdPhase::Down };
            let hops = ud.next_hops(g, v, phase, t);
            let share = f / hops.len() as f64;
            for (e, next_phase) in hops {
                let ch = g.channel_id(e, v);
                loads[ch] += share;
                let u = g.edge(e).other(v);
                if u != t {
                    let next_ph = match next_phase {
                        UdPhase::Up => 0,
                        UdPhase::Down => 1,
                    };
                    flow[2 * u + next_ph] += share;
                }
            }
        }
    }
    loads
}

/// Convenience: balance comparison on one DSN instance. Returns
/// `(custom, updown)` load statistics.
pub fn balance_comparison(dsn: &Dsn) -> (LoadStats, LoadStats) {
    let g = dsn.graph();
    let custom = LoadStats::from_loads(&dsn_custom_loads(dsn));
    let ud = UpDown::new(g, 0);
    let updown = LoadStats::from_loads(&updown_loads(g, &ud));
    (custom, updown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::ring::Ring;

    #[test]
    fn load_stats_of_uniform_vector() {
        let s = LoadStats::from_loads(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert!(s.gini.abs() < 1e-12);
        assert!((s.max_over_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_stats_of_skewed_vector() {
        let s = LoadStats::from_loads(&[0.0, 0.0, 0.0, 4.0]);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 1.0);
        assert!(s.gini > 0.7, "gini {}", s.gini);
        assert_eq!(s.max_over_mean(), 4.0);
    }

    #[test]
    fn custom_loads_conserve_total() {
        // Total load = sum over pairs of route length.
        let dsn = Dsn::new(64, 5).unwrap();
        let loads = dsn_custom_loads(&dsn);
        let total: f64 = loads.iter().sum();
        let expected: f64 = {
            let mut sum = 0.0;
            for s in 0..64 {
                for t in 0..64 {
                    if s != t {
                        sum += route(&dsn, s, t).unwrap().hops() as f64;
                    }
                }
            }
            sum
        };
        assert!((total - expected).abs() < 1e-6);
    }

    #[test]
    fn updown_loads_conserve_total() {
        // Total fractional load = sum over pairs of legal distance
        // (all split paths have the same, minimal length).
        let g = Ring::new(12).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        let loads = updown_loads(&g, &ud);
        let total: f64 = loads.iter().sum();
        let mut expected = 0.0f64;
        for s in 0..12 {
            for t in 0..12 {
                if s != t {
                    expected += ud.distance(s, t) as f64;
                }
            }
        }
        assert!(
            (total - expected).abs() < 1e-6,
            "total {total} vs expected {expected}"
        );
    }

    #[test]
    fn updown_root_is_hot() {
        // The classic up*/down* pathology: links near the root carry
        // disproportionate load.
        let dsn = Dsn::new(64, 5).unwrap();
        let g = dsn.graph();
        let ud = UpDown::new(g, 0);
        let loads = updown_loads(g, &ud);
        let stats = LoadStats::from_loads(&loads);
        assert!(
            stats.max_over_mean() > 2.0,
            "expected root hotspot, max/mean = {}",
            stats.max_over_mean()
        );
    }

    #[test]
    fn section7b_custom_routing_balances_better() {
        // The paper's claim: custom routing yields significantly more
        // balanced traffic than up*/down*.
        let dsn = Dsn::new(126, 6).unwrap();
        let (custom, updown) = balance_comparison(&dsn);
        assert!(
            custom.max_over_mean() < updown.max_over_mean(),
            "custom max/mean {} !< up*/down* {}",
            custom.max_over_mean(),
            updown.max_over_mean()
        );
        assert!(
            custom.gini < updown.gini,
            "custom gini {} !< up*/down* gini {}",
            custom.gini,
            updown.gini
        );
    }
}
