//! Topology-agnostic **up*/down*** routing (Silla & Duato, paper ref. \[24\]).
//!
//! A BFS spanning tree from a root assigns every link a direction: the end
//! closer to the root (breaking ties by smaller node id) is *up*. A legal
//! path is zero or more up-moves followed by zero or more down-moves; this
//! forbids every down→up turn and is therefore deadlock-free (the CDG test
//! in this crate verifies it). The paper's simulator uses up*/down* for the
//! escape paths of its adaptive routing; we do the same in `dsn-sim`.
//!
//! Routing state is the pair `(node, phase)` where the phase records
//! whether the packet has taken a down-move yet. Shortest legal distances
//! are precomputed per destination over that state graph (parallel over
//! destinations), and next hops are enumerated on demand from the current
//! phase — which is exactly what a switch's routing logic needs.

use dsn_core::fault::EdgeMask;
use dsn_core::graph::Graph;
use dsn_core::NodeId;
use rayon::prelude::*;
use std::collections::VecDeque;

/// Distance marker for unroutable states (cannot occur on connected graphs
/// when starting in the Up phase).
const INF: u32 = u32::MAX;

/// Phase of a packet along an up*/down* path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdPhase {
    /// May still move up (or turn down).
    Up,
    /// Has moved down; must keep moving down.
    Down,
}

impl UdPhase {
    #[inline]
    fn idx(self) -> usize {
        match self {
            UdPhase::Up => 0,
            UdPhase::Down => 1,
        }
    }
}

/// Up*/down* link orientation plus shortest legal-path distance tables.
#[derive(Debug, Clone)]
pub struct UpDown {
    root: NodeId,
    /// BFS depth of each node.
    depth: Vec<u32>,
    /// `dist[t][2v + phase]` = shortest legal path length from `(v, phase)`
    /// to `t`.
    dist: Vec<Vec<u32>>,
    /// Liveness overlay when built on a survivor graph (`None` = strict
    /// mode: the full graph, connectivity asserted).
    mask: Option<EdgeMask>,
}

impl UpDown {
    /// Orient links from a BFS tree rooted at `root` and precompute
    /// shortest legal-path distances for every destination.
    ///
    /// # Panics
    /// Panics if the graph is disconnected or `root` is out of range.
    pub fn new(g: &Graph, root: NodeId) -> Self {
        let n = g.node_count();
        assert!(root < n, "root out of range");
        let depth = bfs_depth(g, root, None);
        assert!(
            depth.iter().all(|&d| d != INF),
            "up*/down* requires a connected graph"
        );

        let dist: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|t| legal_distances(g, &depth, t, None))
            .collect();
        UpDown {
            root,
            depth,
            dist,
            mask: None,
        }
    }

    /// Orient links on the *survivor* graph defined by `mask`: a BFS
    /// forest grown from `root` (when it is up), then from the smallest
    /// still-unreached up node of each remaining component. The survivor
    /// graph may be disconnected — unreachable `(state, dest)` pairs keep
    /// distance `INF` and [`Self::next_hops`] returns no hops for them
    /// instead of panicking, so the caller (the simulator's online-reroute
    /// path) can treat them as unroutable.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn new_masked(g: &Graph, root: NodeId, mask: &EdgeMask) -> Self {
        let n = g.node_count();
        assert!(root < n, "root out of range");
        let mut depth = vec![INF; n];
        let mut seeds: Vec<NodeId> = Vec::with_capacity(1 + n);
        seeds.push(root);
        seeds.extend(0..n);
        for s in seeds {
            if depth[s] != INF || !mask.node_up(s) {
                continue;
            }
            let sub = bfs_depth(g, s, Some(mask));
            for v in 0..n {
                if sub[v] != INF && depth[v] == INF {
                    depth[v] = sub[v];
                }
            }
        }
        let dist: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|t| legal_distances(g, &depth, t, Some(mask)))
            .collect();
        UpDown {
            root,
            depth,
            dist,
            mask: Some(mask.clone()),
        }
    }

    /// The spanning-tree root.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// BFS depth of `v`.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v]
    }

    /// True when traversing `edge` out of `from` is an *up* move.
    pub fn is_up_move(&self, g: &Graph, edge: usize, from: NodeId) -> bool {
        let to = g.edge(edge).other(from);
        is_up(&self.depth, from, to)
    }

    /// Shortest legal-path length from `s` (fresh packet, Up phase) to `t`.
    #[inline]
    pub fn distance(&self, s: NodeId, t: NodeId) -> u32 {
        self.dist[t][2 * s]
    }

    /// Shortest legal-path length from `(v, phase)` to `t`.
    #[inline]
    pub fn distance_phased(&self, v: NodeId, phase: UdPhase, t: NodeId) -> u32 {
        self.dist[t][2 * v + phase.idx()]
    }

    /// Whether a legal path from `(v, phase)` to `t` exists at all. Always
    /// true from the Up phase on a connected unmasked instance; a Down
    /// state can be unreachable even then — such states never occur in
    /// legal traffic, which is what lets table compilers skip them.
    #[inline]
    pub fn reachable_phased(&self, v: NodeId, phase: UdPhase, t: NodeId) -> bool {
        self.dist[t][2 * v + phase.idx()] != INF
    }

    /// Minimal legal next hops from `(v, phase)` toward `t`: each entry is
    /// `(edge_id, next_phase)`. Empty only when `v == t`.
    pub fn next_hops(
        &self,
        g: &Graph,
        v: NodeId,
        phase: UdPhase,
        t: NodeId,
    ) -> Vec<(usize, UdPhase)> {
        let mut out = Vec::new();
        if v == t {
            return out;
        }
        let dv = self.distance_phased(v, phase, t);
        if dv == INF {
            // Only possible on a masked (survivor) instance: the state
            // cannot reach `t`, so there is no hop to offer.
            debug_assert!(self.mask.is_some(), "({v}, {phase:?}) cannot reach {t}");
            return out;
        }
        for (u, e) in g.neighbors(v) {
            if self.mask.as_ref().is_some_and(|m| !m.edge_alive(e)) {
                continue; // dead link on the survivor graph
            }
            let up = is_up(&self.depth, v, u);
            if up && phase == UdPhase::Down {
                continue; // illegal down -> up turn
            }
            let next_phase = if up { UdPhase::Up } else { UdPhase::Down };
            let du = self.distance_phased(u, next_phase, t);
            if du != INF && du + 1 == dv {
                out.push((e, next_phase));
            }
        }
        debug_assert!(!out.is_empty(), "no legal next hop from {v} to {t}");
        out
    }

    /// Walk a deterministic shortest legal path (first listed hop at every
    /// step). Returns the node sequence from `s` to `t`.
    pub fn path(&self, g: &Graph, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let mut path = vec![s];
        let mut v = s;
        let mut phase = UdPhase::Up;
        while v != t {
            let (e, next_phase) = self.next_hops(g, v, phase, t)[0];
            v = g.edge(e).other(v);
            phase = next_phase;
            path.push(v);
        }
        path
    }

    /// Check that a node sequence is a legal up*/down* path.
    pub fn is_legal_path(&self, path: &[NodeId]) -> bool {
        let mut gone_down = false;
        for w in path.windows(2) {
            let up = is_up(&self.depth, w[0], w[1]);
            if up && gone_down {
                return false;
            }
            if !up {
                gone_down = true;
            }
        }
        true
    }

    /// Average shortest legal path length over ordered pairs — up*/down*
    /// paths are generally longer than graph-shortest paths, which is the
    /// routing-inefficiency cost the paper attributes to topology-agnostic
    /// routing on irregular topologies.
    pub fn avg_path_length(&self) -> f64 {
        let n = self.dist.len();
        let mut sum = 0u64;
        let mut count = 0u64;
        for (t, row) in self.dist.iter().enumerate() {
            for s in 0..n {
                if s != t && row[2 * s] != INF {
                    sum += row[2 * s] as u64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// `true` when moving `from -> to` goes up (toward the root).
#[inline]
fn is_up(depth: &[u32], from: NodeId, to: NodeId) -> bool {
    depth[to] < depth[from] || (depth[to] == depth[from] && to < from)
}

fn bfs_depth(g: &Graph, root: NodeId, mask: Option<&EdgeMask>) -> Vec<u32> {
    let mut depth = vec![INF; g.node_count()];
    let mut q = VecDeque::new();
    depth[root] = 0;
    q.push_back(root);
    while let Some(v) = q.pop_front() {
        for (u, e) in g.neighbors(v) {
            if mask.is_some_and(|m| !m.edge_alive(e)) {
                continue;
            }
            if depth[u] == INF {
                depth[u] = depth[v] + 1;
                q.push_back(u);
            }
        }
    }
    depth
}

/// Backward BFS from `t` over the `(node, phase)` state graph. Forward
/// transitions: `(v, Up) -up-> (u, Up)`, `(v, Up) -down-> (u, Down)`,
/// `(v, Down) -down-> (u, Down)`. Arrival at `t` in either phase accepts.
fn legal_distances(g: &Graph, depth: &[u32], t: NodeId, mask: Option<&EdgeMask>) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![INF; 2 * n];
    let mut q = VecDeque::new();
    dist[2 * t] = 0;
    dist[2 * t + 1] = 0;
    q.push_back(2 * t);
    q.push_back(2 * t + 1);
    while let Some(state) = q.pop_front() {
        let (u, phase_u) = (state / 2, state % 2);
        let du = dist[state];
        for (v, e) in g.neighbors(u) {
            if mask.is_some_and(|m| !m.edge_alive(e)) {
                continue;
            }
            let up = is_up(depth, v, u);
            if up {
                // v must be in Up phase and u is entered in Up phase.
                if phase_u == 0 {
                    let s = 2 * v;
                    if dist[s] == INF {
                        dist[s] = du + 1;
                        q.push_back(s);
                    }
                }
            } else if phase_u == 1 {
                // down move allowed from either phase; enters Down.
                for sphase in 0..2 {
                    let s = 2 * v + sphase;
                    if dist[s] == INF {
                        dist[s] = du + 1;
                        q.push_back(s);
                    }
                }
            }
        }
    }
    dist
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices are node ids
mod tests {
    use super::*;
    use dsn_core::dsn::Dsn;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    fn graph_dists(g: &Graph, s: NodeId) -> Vec<u32> {
        let mut dist = vec![INF; g.node_count()];
        let mut q = VecDeque::new();
        dist[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for u in g.neighbor_ids(v) {
                if dist[u] == INF {
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    #[test]
    fn ring_paths_are_legal_and_reachable() {
        let g = Ring::new(8).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for s in 0..8 {
            for t in 0..8 {
                let path = ud.path(&g, s, t);
                assert_eq!(path[0], s);
                assert_eq!(*path.last().unwrap(), t);
                assert!(ud.is_legal_path(&path), "illegal path {path:?}");
                assert_eq!(path.len() as u32 - 1, ud.distance(s, t));
            }
        }
    }

    #[test]
    fn distances_at_least_graph_distance() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for s in 0..16 {
            let dist = graph_dists(&g, s);
            for t in 0..16 {
                assert!(ud.distance(s, t) >= dist[t], "{s}->{t}");
            }
        }
    }

    #[test]
    fn down_phase_distance_no_shorter() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for v in 0..64 {
            for t in 0..64 {
                let up = ud.distance_phased(v, UdPhase::Up, t);
                let down = ud.distance_phased(v, UdPhase::Down, t);
                // Down phase is more constrained, so it can never be
                // strictly better... but it can be unroutable (INF).
                if down != INF {
                    assert!(down >= up, "({v}, Down) -> {t}");
                }
            }
        }
    }

    #[test]
    fn path_to_self_is_empty() {
        let g = Ring::new(6).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        assert_eq!(ud.path(&g, 3, 3), vec![3]);
        assert_eq!(ud.distance(3, 3), 0);
    }

    #[test]
    fn up_moves_decrease_depth_or_tiebreak() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for v in 0..64 {
            for (u, e) in g.neighbors(v) {
                if ud.is_up_move(&g, e, v) {
                    assert!(ud.depth(u) < ud.depth(v) || (ud.depth(u) == ud.depth(v) && u < v));
                }
            }
        }
    }

    #[test]
    fn dsn_all_pairs_routable_with_legal_paths() {
        let g = Dsn::new(100, 6).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for s in 0..100 {
            for t in 0..100 {
                assert!(ud.distance(s, t) < INF);
                let path = ud.path(&g, s, t);
                assert!(ud.is_legal_path(&path));
                assert_eq!(*path.last().unwrap(), t);
            }
        }
    }

    #[test]
    fn next_hops_respect_phase() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        for v in 0..16 {
            for t in 0..16 {
                if v == t {
                    continue;
                }
                if ud.distance_phased(v, UdPhase::Down, t) != INF {
                    for (e, _) in ud.next_hops(&g, v, UdPhase::Down, t) {
                        assert!(!ud.is_up_move(&g, e, v), "down-phase up move");
                    }
                }
            }
        }
    }

    #[test]
    fn masked_full_mask_matches_strict() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let strict = UpDown::new(&g, 0);
        let masked = UpDown::new_masked(&g, 0, &dsn_core::EdgeMask::fully_alive(&g));
        for s in 0..64 {
            for t in 0..64 {
                assert_eq!(strict.distance(s, t), masked.distance(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn masked_avoids_dead_edges_and_stays_legal() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let mut mask = dsn_core::EdgeMask::fully_alive(&g);
        mask.set_edge_admin(&g, 0, false);
        mask.set_edge_admin(&g, 17, false);
        let ud = UpDown::new_masked(&g, 0, &mask);
        for (s, t) in [(0usize, 32usize), (5, 60), (63, 1)] {
            let mut v = s;
            let mut phase = UdPhase::Up;
            let mut hops = 0;
            while v != t {
                let next = ud.next_hops(&g, v, phase, t);
                assert!(
                    !next.is_empty(),
                    "{v}->{t} unroutable on connected survivor"
                );
                let (e, p) = next[0];
                assert!(mask.edge_alive(e), "routed over dead edge {e}");
                v = g.edge(e).other(v);
                phase = p;
                hops += 1;
                assert!(hops < 200);
            }
        }
    }

    #[test]
    fn masked_disconnected_survivor_reports_unroutable() {
        // Cut ring edges (0,1) and (3,4) on a plain 6-ring: {1,2,3} vs
        // {4,5,0}. Cross-component states must be INF with no next hops
        // (and no panic).
        let g = Ring::new(6).unwrap().into_graph();
        let mut mask = dsn_core::EdgeMask::fully_alive(&g);
        mask.set_edge_admin(&g, 0, false);
        mask.set_edge_admin(&g, 3, false);
        let ud = UpDown::new_masked(&g, 0, &mask);
        assert_eq!(ud.distance(1, 4), INF);
        assert!(ud.next_hops(&g, 1, UdPhase::Up, 4).is_empty());
        // same-side pairs still route
        assert_ne!(ud.distance(1, 3), INF);
        assert_ne!(ud.distance(4, 0), INF);
        assert!(!ud.next_hops(&g, 4, UdPhase::Up, 0).is_empty());
    }

    #[test]
    fn avg_length_not_shorter_than_aspl() {
        let g = Torus::new(&[4, 4]).unwrap().into_graph();
        let ud = UpDown::new(&g, 0);
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for s in 0..16 {
            let dist = graph_dists(&g, s);
            for t in 0..16 {
                if s != t {
                    sum += dist[t] as u64;
                    cnt += 1;
                }
            }
        }
        let aspl = sum as f64 / cnt as f64;
        assert!(ud.avg_path_length() >= aspl);
    }
}
