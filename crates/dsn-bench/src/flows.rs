//! Shared core of the `flow_suite` binary: datacenter flow-level
//! workloads (heavy-tailed open-loop flows, synchronized incast,
//! recursive-doubling allreduce) scored on flow-completion time, on the
//! paper's trio of degree-4 topologies — fault-free and under link flaps.
//! The JSON schema is pinned by a golden-file test
//! (`tests/flows_schema.rs`).

use dsn_core::topology::TopologySpec;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultPlan, FlowArrivals, FlowSizeDist, RetryPolicy, RoutingCache,
    RunStats, SimConfig, StagedSpec, TrafficPattern, Workload,
};
use std::sync::Arc;

/// Schema tag written into the JSON report; bump on breaking changes.
pub const SCHEMA: &str = "dsn-bench/flows/v1";

/// Seed for every flow-suite trial (flow arrivals, sizes, destinations).
pub const FLOW_SEED: u64 = 0xF10E;

/// Flow-arrival probability per host per cycle for the web-search rows
/// (~0.3 offered load at the paper's packet size and line rate).
pub const WEBSEARCH_RATE: f64 = 2.0e-5;

/// The three flow-level workload classes of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowWorkloadKind {
    /// Open-loop uniform flows with web-search-style sizes, Poisson
    /// arrivals.
    Websearch,
    /// Synchronized N-to-1 incast waves.
    Incast,
    /// Recursive-doubling allreduce (dependency-staged, closed).
    Allreduce,
}

impl FlowWorkloadKind {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            FlowWorkloadKind::Websearch => "websearch",
            FlowWorkloadKind::Incast => "incast",
            FlowWorkloadKind::Allreduce => "allreduce",
        }
    }

    /// All three kinds in report order.
    pub fn all() -> [FlowWorkloadKind; 3] {
        [
            FlowWorkloadKind::Websearch,
            FlowWorkloadKind::Incast,
            FlowWorkloadKind::Allreduce,
        ]
    }

    /// Build the workload for `hosts` hosts.
    pub fn build(&self, hosts: usize) -> Workload {
        match self {
            FlowWorkloadKind::Websearch => Workload::Flows {
                pattern: TrafficPattern::Uniform,
                sizes: FlowSizeDist::websearch(),
                arrivals: FlowArrivals::Poisson {
                    flows_per_cycle: WEBSEARCH_RATE,
                },
            },
            FlowWorkloadKind::Incast => Workload::Incast {
                fanin: 16.min(hosts as u32 - 1),
                request_packets: 4,
                wave_period: 2_000,
            },
            FlowWorkloadKind::Allreduce => {
                Workload::Staged(StagedSpec::recursive_doubling_allreduce(hosts, 1))
            }
        }
    }

    /// True for closed (staged) workloads scored on makespan.
    pub fn closed(&self) -> bool {
        matches!(self, FlowWorkloadKind::Allreduce)
    }
}

/// The one `SimConfig` for a trial of `kind`, built from CLI flags.
///
/// Open-loop rows use a warmup/measure/drain split with a long drain so
/// heavy-tailed flows started late in the window can still complete (the
/// web-search tail is longer than any affordable run; flows that do not
/// finish simply never enter the FCT aggregates, and the report exposes
/// `flows_started` vs `flows_completed` so the truncation is visible).
/// Closed rows measure from cycle 0 and treat drain as the horizon.
pub fn flow_config(engine: EngineKind, kind: FlowWorkloadKind, quick: bool) -> SimConfig {
    let mut cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    if kind.closed() {
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 20_000;
        cfg.drain_cycles = if quick { 200_000 } else { 1_000_000 };
    } else if quick {
        // Measure window [500, 2500) so the incast wave at cycle 2000
        // (wave period 2000) still lands inside it.
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 2_000;
        cfg.drain_cycles = 8_000;
    } else {
        cfg.warmup_cycles = 2_000;
        cfg.measure_cycles = 6_000;
        cfg.drain_cycles = 42_000;
    }
    cfg
}

/// Link-flap plan for the faulted rows: `flaps` down/up cycles on one
/// seeded-random link each, with host retries, starting inside the
/// measurement window (or shortly after injection for closed rows).
pub fn flap_plan(cfg: &SimConfig, edges: usize, flaps: usize) -> FaultPlan {
    let first = if cfg.warmup_cycles == 0 {
        1_000
    } else {
        cfg.warmup_cycles + cfg.measure_cycles / 4
    };
    let half_period = (cfg.measure_cycles / 4).max(200);
    let mut plan = FaultPlan::flap(FLOW_SEED as usize % edges, first, half_period, flaps as u32);
    if flaps > 1 {
        // A second flapping link elsewhere in the id space, phase-shifted
        // by half a period so down intervals interleave.
        let other = (FLOW_SEED as usize / 7) % edges;
        if other != FLOW_SEED as usize % edges {
            for e in FaultPlan::flap(
                other,
                first + half_period / 2,
                half_period,
                flaps as u32 - 1,
            )
            .events
            {
                plan.events.push(e);
            }
        }
    }
    plan.with_retry(RetryPolicy::new(3, 500, 250))
}

/// One measured cell of the flow suite.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRow {
    /// Topology display name.
    pub topology: String,
    /// Workload class name (`websearch` | `incast` | `allreduce`).
    pub workload: String,
    /// Switch count of the trial.
    pub switches: usize,
    /// Links scheduled to flap (0 = fault-free row).
    pub flapped_links: usize,
    /// Flows started in the measurement window.
    pub flows_started: u64,
    /// Measured flows completed before run end.
    pub flows_completed: u64,
    /// Flow-tagged packets delivered over the whole run.
    pub flow_packets_delivered: u64,
    /// Mean FCT over measured completed flows (cycles).
    pub fct_avg_cycles: f64,
    /// Median FCT (cycles).
    pub fct_p50_cycles: u64,
    /// 99th-percentile FCT (cycles).
    pub fct_p99_cycles: u64,
    /// 99.9th-percentile FCT (cycles).
    pub fct_p999_cycles: u64,
    /// Collective makespan (cycles) for closed rows; `None` for open rows
    /// or when the collective missed the horizon.
    pub makespan_cycles: Option<u64>,
    /// Fraction of measured packets delivered.
    pub delivery_ratio: f64,
    /// Fault-dropped packets over the whole run.
    pub dropped: u64,
    /// Host retransmissions after drops.
    pub retried: u64,
}

impl FlowRow {
    fn from_stats(
        topology: &str,
        kind: FlowWorkloadKind,
        switches: usize,
        flapped_links: usize,
        stats: &RunStats,
    ) -> Self {
        FlowRow {
            topology: topology.to_string(),
            workload: kind.name().to_string(),
            switches,
            flapped_links,
            flows_started: stats.flows_started,
            flows_completed: stats.flows_completed,
            flow_packets_delivered: stats.flow_packets_delivered,
            fct_avg_cycles: stats.fct_avg_cycles,
            fct_p50_cycles: stats.fct_p50_cycles,
            fct_p99_cycles: stats.fct_p99_cycles,
            fct_p999_cycles: stats.fct_p999_cycles,
            makespan_cycles: if kind.closed() {
                stats.completion_cycle
            } else {
                None
            },
            delivery_ratio: stats.delivery_ratio(),
            dropped: stats.dropped_packets_all_time,
            retried: stats.retried_packets,
        }
    }
}

/// The full report: one row per (topology, workload, fault-mode) trial.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Engine used for every trial (faulted rows fall back to the
    /// single-thread event path like every fault run).
    pub engine: EngineKind,
    /// Measured cells in trial order.
    pub rows: Vec<FlowRow>,
}

/// Run the suite over `specs` at `switches` switches: every workload
/// class, fault-free plus (when `flaps > 0`) a link-flap variant. One
/// [`RoutingCache`] is shared across all trials of a topology, so the
/// adaptive tables are built once per graph.
pub fn run_suite(
    engine: EngineKind,
    workers: usize,
    routing_tables: dsn_sim::RoutingTables,
    specs: &[TopologySpec],
    switches: usize,
    flaps: usize,
    quick: bool,
) -> Vec<FlowRow> {
    let cache = Arc::new(RoutingCache::new());
    let mut rows = Vec::new();
    for spec in specs {
        let built = spec.build().expect("topology");
        let g = Arc::new(built.graph);
        let edges = g.edge_count();
        let mut variants = vec![0usize];
        if flaps > 0 {
            variants.push(flaps);
        }
        for kind in FlowWorkloadKind::all() {
            for &flapped in &variants {
                let mut cfg = flow_config(engine, kind, quick);
                cfg.workers = workers;
                cfg.routing_tables = routing_tables;
                if flapped > 0 {
                    cfg.fault_plan = flap_plan(&cfg, edges, flapped);
                }
                let hosts = switches * cfg.hosts_per_switch;
                let routing = cache.get_or_build(&g, &AdaptiveEscape::key_for(cfg.vcs), || {
                    Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs))
                });
                let stats = dsn_sim::Simulator::with_workload(
                    g.clone(),
                    cfg,
                    routing,
                    kind.build(hosts),
                    FLOW_SEED,
                )
                .with_routing_cache(cache.clone())
                .run();
                rows.push(FlowRow::from_stats(
                    &built.name,
                    kind,
                    switches,
                    flapped,
                    &stats,
                ));
            }
        }
    }
    rows
}

impl FlowReport {
    /// Serialize with a fixed key order and fixed float formatting — the
    /// golden-file test compares this string byte for byte.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"engine\": \"{}\",\n", self.engine.name()));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let makespan = match r.makespan_cycles {
                Some(c) => c.to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"topology\": \"{}\", \"workload\": \"{}\", \"switches\": {}, \
                 \"flapped_links\": {}, \"flows_started\": {}, \"flows_completed\": {}, \
                 \"flow_packets_delivered\": {}, \"fct_avg_cycles\": {:.3}, \
                 \"fct_p50_cycles\": {}, \"fct_p99_cycles\": {}, \"fct_p999_cycles\": {}, \
                 \"makespan_cycles\": {}, \"delivery_ratio\": {:.4}, \"dropped\": {}, \
                 \"retried\": {}}}{}\n",
                r.topology,
                r.workload,
                r.switches,
                r.flapped_links,
                r.flows_started,
                r.flows_completed,
                r.flow_packets_delivered,
                r.fct_avg_cycles,
                r.fct_p50_cycles,
                r.fct_p99_cycles,
                r.fct_p999_cycles,
                makespan,
                r.delivery_ratio,
                r.dropped,
                r.retried,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}
