//! Ablation study over the Section V extensions:
//!
//! * basic DSN-x for varying `x` (shortcut-set size vs diameter/degree);
//! * DSN-D-x (skip links) vs its base — the paper claims DSN-D-2 cuts the
//!   diameter to ~7/4 p;
//! * DSN-E (Up/Extra links) — degree overhead vs deadlock-free routing;
//! * flexible DSN (minor nodes) — path-quality cost of inserted minors.
//!
//! Run: `cargo run --release -p dsn-bench --bin ablation_extensions`

use dsn_core::dsn::Dsn;
use dsn_core::dsn_ext::{DsnD, DsnE, FlexibleDsn};
use dsn_metrics::{path_stats, TopologyReport};

fn main() {
    let n = 1020usize; // multiple of p = 10: complete super nodes
    let p = dsn_core::util::ceil_log2(n);

    println!("Ablation 1: shortcut-set size x vs diameter / ASPL / degree (n = {n}, p = {p})");
    println!("{}", TopologyReport::header());
    for x in 1..p {
        let dsn = Dsn::new(n, x).expect("dsn");
        println!(
            "{}",
            TopologyReport::new(format!("DSN-{x}-{n}"), dsn.graph()).row()
        );
    }

    println!();
    println!(
        "Ablation 2: DSN-D-x skip links (paper: DSN-D-2 diameter ~ 7/4 p = {:.1})",
        1.75 * p as f64
    );
    println!("{}", TopologyReport::header());
    let base_x = (p - dsn_core::util::ceil_log2(p as usize)).max(1);
    let base = Dsn::new(n, base_x).expect("base");
    println!(
        "{}",
        TopologyReport::new(format!("base DSN-{base_x}-{n}"), base.graph()).row()
    );
    for x in [1u32, 2, 3, 4] {
        let d = DsnD::new(n, x).expect("dsnd");
        println!(
            "{}   (q={}, +{} skip links)",
            TopologyReport::new(format!("DSN-D-{x}-{n}"), d.graph()).row(),
            d.q(),
            d.skip_edge_count()
        );
    }

    println!();
    println!("Ablation 3: DSN-E deadlock-free extension overhead");
    let basic = Dsn::new(n, p - 1).expect("dsn");
    let dsne = DsnE::new(n).expect("dsne");
    println!("{}", TopologyReport::header());
    println!(
        "{}",
        TopologyReport::new(format!("DSN-{}-{n}", p - 1), basic.graph()).row()
    );
    println!(
        "{}   (+{} up, +{} extra links)",
        TopologyReport::new(format!("DSN-E-{n}"), dsne.graph()).row(),
        dsne.up_edge_count(),
        dsne.extra_edge_count()
    );

    println!();
    println!("Ablation 4: flexible DSN — inserted minor nodes");
    let flex0 = FlexibleDsn::new(n, p - 1, &[]).expect("flex0");
    let s0 = path_stats(flex0.graph());
    println!(
        "  minors = 0: n = {:>5}, diameter = {}, aspl = {:.3}",
        flex0.n(),
        s0.diameter,
        s0.aspl
    );
    for minors in [4usize, 16, 64] {
        let spread: Vec<usize> = (0..minors).map(|i| (i + 1) * n / (minors + 1)).collect();
        let flex = FlexibleDsn::new(n, p - 1, &spread).expect("flex");
        let s = path_stats(flex.graph());
        println!(
            "  minors = {minors:>2}: n = {:>5}, diameter = {}, aspl = {:.3}",
            flex.n(),
            s.diameter,
            s.aspl
        );
    }
}
