//! Regenerates **Figure 8**: average shortest path length (hops) vs network
//! size for the 2-D torus, RANDOM (DLN-2-2) and DSN, plus the in-text claims
//! T1 ("ASPL improved by up to 55% vs torus") and T3 ("64-switch ASPL is
//! 3.2 / 3.2 / 4.1 for DSN / RANDOM / torus").
//!
//! Run: `cargo run --release -p dsn-bench --bin fig8_aspl [--threads N | --serial]`

use dsn_bench::{block_header, paper_sizes, trio};
use dsn_core::parallel::Parallelism;
use dsn_metrics::aspl_with;

fn main() {
    let (par, _rest) = Parallelism::from_args(std::env::args().skip(1));
    par.install();
    println!("Figure 8: average shortest path length vs network size (lower is better)");
    println!("# parallelism: {par}");
    print!(
        "{}",
        block_header(
            "columns: log2(N)  torus  random  dsn  dsn-vs-torus-improvement",
            &["log2N", "torus", "random", "dsn", "improv%"]
        )
    );
    let mut best_improvement = 0.0f64;
    let mut at64 = (0.0, 0.0, 0.0);
    for n in paper_sizes() {
        let [dsn, torus, random] = trio(n);
        let a_dsn = aspl_with(&dsn.build().expect("dsn").graph, &par);
        let a_torus = aspl_with(&torus.build().expect("torus").graph, &par);
        let a_rand = aspl_with(&random.build().expect("random").graph, &par);
        let improvement = 100.0 * (a_torus - a_dsn) / a_torus;
        best_improvement = best_improvement.max(improvement);
        if n == 64 {
            at64 = (a_dsn, a_rand, a_torus);
        }
        println!(
            "  {:>12} {:>12.3} {:>12.3} {:>12.3} {:>11.1}%",
            (n as f64).log2() as u32,
            a_torus,
            a_rand,
            a_dsn,
            improvement
        );
    }
    println!();
    println!(
        "T1 (ASPL): DSN improves ASPL vs torus by up to {best_improvement:.0}% (paper: up to 55%)"
    );
    println!(
        "T3 (64 switches): ASPL = {:.1} / {:.1} / {:.1} for DSN / RANDOM / torus \
         (paper: 3.2 / 3.2 / 4.1)",
        at64.0, at64.1, at64.2
    );
}
