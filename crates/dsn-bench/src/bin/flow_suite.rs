//! Datacenter flow-level suite: flow-completion time on DSN, torus and
//! RANDOM under the three workload classes datacenter evaluations are
//! judged on — heavy-tailed open-loop flows (web-search sizes, Poisson
//! arrivals), synchronized incast waves, and a recursive-doubling
//! allreduce — fault-free and with links flapping mid-run.
//!
//! Run: `cargo run --release -p dsn-bench --bin flow_suite \
//!       [--quick] [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn] [--sizes 64,256] [--flaps N] \
//!       [--json] [--telemetry[=WINDOW]]`
//!
//! (Flap rows always use the single-thread event path — fault machinery
//! has no conservative lookahead — so `--workers` only affects the
//! fault-free rows.)
//!
//! `--json` additionally writes the report to `BENCH_flows.json` (schema
//! pinned by `tests/flows_schema.rs`). `--telemetry[=WINDOW]` adds an
//! instrumented web-search run on DSN whose export carries the per-class
//! `"fct"` section; exports go to `telemetry_flows_dsn.{json,csv}`.

use dsn_bench::flows::{flow_config, run_suite, FlowReport, FlowRow, FlowWorkloadKind, FLOW_SEED};
use dsn_bench::{
    emit_telemetry, take_engine_arg, take_routing_tables_arg, take_telemetry_arg, take_workers_arg,
    trio,
};
use dsn_sim::{AdaptiveEscape, Simulator, TelemetryConfig};
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let routing_tables = take_routing_tables_arg(&mut args);
    let telemetry = take_telemetry_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let sizes: Vec<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--sizes="))
        .or_else(|| {
            args.iter()
                .position(|a| a == "--sizes")
                .and_then(|i| args.get(i + 1))
                .map(|s| s.as_str())
        })
        .map(|v| {
            v.split(',')
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("--sizes needs a comma-separated switch-count list");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| if quick { vec![64] } else { vec![64, 256] });
    let flaps: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--flaps="))
        .or_else(|| {
            args.iter()
                .position(|a| a == "--flaps")
                .and_then(|i| args.get(i + 1))
                .map(|s| s.as_str())
        })
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--flaps needs a flap count");
                std::process::exit(2);
            })
        })
        .unwrap_or(3);

    let mut rows: Vec<FlowRow> = Vec::new();
    for &n in &sizes {
        rows.extend(run_suite(
            engine,
            workers,
            routing_tables,
            &trio(n),
            n,
            flaps,
            quick,
        ));
    }
    let report = FlowReport { engine, rows };
    print_report(&report);
    if json {
        let path = "BENCH_flows.json";
        std::fs::write(path, report.to_json()).expect("write JSON report");
        println!("\n# wrote {path}");
    }
    if let Some(window) = telemetry {
        // Instrumented web-search run on DSN at the first size.
        let n = sizes[0];
        let spec = &trio(n)[0];
        let built = spec.build().expect("topology");
        let g = Arc::new(built.graph);
        let mut cfg = flow_config(engine, FlowWorkloadKind::Websearch, quick);
        cfg.workers = workers;
        cfg.routing_tables = routing_tables;
        let hosts = n * cfg.hosts_per_switch;
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let (stats, tel) = Simulator::with_workload(
            g,
            cfg,
            routing,
            FlowWorkloadKind::Websearch.build(hosts),
            FLOW_SEED,
        )
        .with_telemetry(TelemetryConfig::windowed(window))
        .run_with_telemetry();
        emit_telemetry("flows_dsn", &tel.expect("telemetry enabled"));
        println!(
            "# RunStats cross-check: flows started {} / completed {}, FCT avg {:.0}cy p99 {}cy",
            stats.flows_started, stats.flows_completed, stats.fct_avg_cycles, stats.fct_p99_cycles
        );
    }
}

fn print_report(report: &FlowReport) {
    println!("Flow-completion time, web-search / incast / allreduce (cycles; lower is better)");
    println!("# engine: {}", report.engine.name());
    println!(
        "  {:<14} {:<10} {:>5} {:>6} {:>9} {:>9} {:>10} {:>8} {:>8} {:>10}",
        "topology",
        "workload",
        "sw",
        "flaps",
        "started",
        "completed",
        "fct-avg",
        "fct-p50",
        "fct-p99",
        "makespan"
    );
    for r in &report.rows {
        let makespan = match r.makespan_cycles {
            Some(c) => format!("{c}"),
            None if r.workload == "allreduce" => "DNF".to_string(),
            None => "-".to_string(),
        };
        println!(
            "  {:<14} {:<10} {:>5} {:>6} {:>9} {:>9} {:>8.0}cy {:>6}cy {:>6}cy {:>10}",
            r.topology,
            r.workload,
            r.switches,
            r.flapped_links,
            r.flows_started,
            r.flows_completed,
            r.fct_avg_cycles,
            r.fct_p50_cycles,
            r.fct_p99_cycles,
            makespan
        );
    }
    println!(
        "\n(FCT measured first-enqueue to last-tail-delivery; flows count when they *start*\n \
         in the measurement window; heavy-tail flows past the drain horizon never complete\n \
         and are visible as started-minus-completed)"
    );
}
