//! Section VII.B's closing experiment, fleshed out: DSN custom routing
//! versus the topology-agnostic adaptive/up*/down* scheme in full
//! simulation — latency at low load and saturation throughput under
//! uniform, bit-reversal and tornado traffic. The paper reports only that
//! "our custom routing makes traffic significantly more balanced ... can
//! lead to better throughput for heavier traffic"; this binary puts
//! numbers on it.
//!
//! Run: `cargo run --release -p dsn-bench --bin custom_vs_agnostic [--quick]`

use dsn_core::dsn::Dsn;
use dsn_sim::sweep::{find_saturation, load_sweep};
use dsn_sim::{
    AdaptiveEscape, MinimalAdaptiveDsn, SimConfig, SimRouting, SourceRouted, TrafficPattern,
    UpDownRouting,
};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SimConfig::default();
    if quick {
        cfg.warmup_cycles = 3_000;
        cfg.measure_cycles = 8_000;
        cfg.drain_cycles = 8_000;
    } else {
        cfg.warmup_cycles = 8_000;
        cfg.measure_cycles = 20_000;
        cfg.drain_cycles = 20_000;
    }
    let tol = if quick { 2.0 } else { 1.0 };

    let dsn = Arc::new(Dsn::new(64, 5).expect("dsn"));
    let graph = Arc::new(dsn.graph().clone());
    let vcs = cfg.vcs;

    println!("DSN-5-64: custom (3-phase, DSN-V VCs) vs agnostic (adaptive + up*/down* escape)");
    println!(
        "  {:<14} {:<22} {:>14} {:>12}",
        "pattern", "routing", "low-load [ns]", "sat [Gbps]"
    );
    fn report(
        name: &str,
        pattern: &TrafficPattern,
        graph: &Arc<dsn_core::Graph>,
        cfg: &SimConfig,
        tol: f64,
        routing: &Arc<dyn SimRouting>,
    ) {
        let r = routing.clone();
        let sweep = load_sweep(name, graph.clone(), cfg, || r, pattern, &[1.0], 0xC05);
        let r = routing.clone();
        let sat = find_saturation(graph.clone(), cfg, || r, pattern, 2.0, 40.0, tol, 0xC05);
        println!(
            "  {:<14} {:<22} {:>14.0} {:>12.1}",
            pattern.name(),
            name,
            sweep.low_load_latency_ns(),
            sat
        );
    }

    // Each scheme is immutable during a run, so one build serves every
    // pattern's sweep and saturation search (and, with flat tables, the
    // compiled arena is reused too).
    let agnostic: Arc<dyn SimRouting> = Arc::new(AdaptiveEscape::new(graph.clone(), vcs));
    // The paper's actual comparison target: plain up*/down*.
    let ud_only: Arc<dyn SimRouting> = Arc::new(UpDownRouting::new(graph.clone(), vcs));
    let custom4: Arc<dyn SimRouting> = Arc::new(SourceRouted::dsn_custom(dsn.clone()));
    // 2 lanes per VC class needs 8 VCs; same deadlock-freedom proofs.
    let mut cfg8 = cfg.clone();
    cfg8.vcs = 8;
    let custom8: Arc<dyn SimRouting> =
        Arc::new(SourceRouted::dsn_custom(dsn.clone()).with_lanes(2));
    // The paper's stated future work: minimal-adaptive custom routing
    // with the DSN-V discipline as the (balanced) escape layer.
    let min_adaptive: Arc<dyn SimRouting> = Arc::new(MinimalAdaptiveDsn::new(dsn.clone(), 8));

    for pattern in [
        TrafficPattern::Uniform,
        TrafficPattern::BitReversal,
        TrafficPattern::Tornado,
    ] {
        report("adaptive+escape", &pattern, &graph, &cfg, tol, &agnostic);
        report("up*/down* only", &pattern, &graph, &cfg, tol, &ud_only);
        report("custom 4vc", &pattern, &graph, &cfg, tol, &custom4);
        report(
            "custom 8vc (2 lanes)",
            &pattern,
            &graph,
            &cfg8,
            tol,
            &custom8,
        );
        report(
            "min-adaptive+dsnv 8vc",
            &pattern,
            &graph,
            &cfg8,
            tol,
            &min_adaptive,
        );
    }
    println!();
    println!(
        "Reading: with matched VC budgets, custom routing beats plain up*/down* at\n\
         saturation on uniform/tornado traffic (the paper's Section VII.B claim —\n\
         its static balance advantage pays off under heavy load), while fully\n\
         adaptive routing dominates both by avoiding congestion dynamically; its\n\
         cost is O(n)-entry tables per switch vs custom's O(log n) bits\n\
         (see routing_cost), plus the traffic_balance static analysis."
    );
}
