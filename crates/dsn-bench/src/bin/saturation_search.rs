//! Extension experiment: exact saturation throughput of each topology.
//!
//! The paper's Figure 10 x-axis stops at 12 Gbit/s/host with none of the
//! three topologies saturated ("all the topologies have similar
//! throughput"). This binary pushes past the plotted range with a bisection
//! search and reports the actual saturation point plus hotspot-channel
//! utilization per topology and traffic pattern.
//!
//! Run: `cargo run --release -p dsn-bench --bin saturation_search \
//!       [--quick] [--threads N | --serial] \
//!       [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn] [--telemetry[=WINDOW]] \
//!       [--phase-timing]`
//!
//! `--phase-timing` turns on the engine's per-phase wall-clock breakdown
//! (wheel-drain / inject / route / arbitrate / eject, reported to stderr
//! at the end of each run), the same diagnostic as `DSN_PHASE_TIMING=1`.
//!
//! `--telemetry[=WINDOW]` instruments the near-saturation re-run (90% of
//! the found saturation point) and prints where the cycles go — queueing
//! vs credit-stall decomposition and the hotspot links on the heatmap —
//! plus `telemetry_sat_<topology>_<pattern>.{json,csv}` exports.

use dsn_bench::{
    emit_telemetry, take_engine_arg, take_routing_tables_arg, take_telemetry_arg, take_workers_arg,
    trio,
};
use dsn_core::graph::Graph;
use dsn_core::parallel::Parallelism;
use dsn_sim::sweep::find_saturation_cached;
use dsn_sim::{AdaptiveEscape, RoutingCache, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

fn main() {
    let (par, mut rest) = Parallelism::from_args(std::env::args().skip(1));
    par.install();
    if rest.iter().any(|a| a == "--phase-timing") {
        rest.retain(|a| a != "--phase-timing");
        // Safe: single-threaded startup, before any sim work begins.
        std::env::set_var("DSN_PHASE_TIMING", "1");
    }
    let mut engine = take_engine_arg(&mut rest);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut rest) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let routing_tables = take_routing_tables_arg(&mut rest);
    let telemetry = take_telemetry_arg(&mut rest);
    let quick = rest.iter().any(|a| a == "--quick");
    let mut cfg = SimConfig {
        engine,
        workers,
        routing_tables,
        ..SimConfig::default()
    };
    if quick {
        cfg.warmup_cycles = 3_000;
        cfg.measure_cycles = 8_000;
        cfg.drain_cycles = 8_000;
    } else {
        cfg.warmup_cycles = 8_000;
        cfg.measure_cycles = 20_000;
        cfg.drain_cycles = 20_000;
    }
    let tol = if quick { 2.0 } else { 1.0 };

    // Build each topology once, outside the pattern loop: the routing cache
    // keys on the Arc<Graph> identity, so all three patterns' searches (and
    // the near-saturation re-runs) share one routing build per topology.
    let topos: Vec<(String, Arc<Graph>)> = trio(64)
        .into_iter()
        .map(|spec| {
            let built = spec.build().expect("topology");
            (built.name, Arc::new(built.graph))
        })
        .collect();
    let cache = Arc::new(RoutingCache::new());
    let key = AdaptiveEscape::key_for(cfg.vcs);

    println!("Saturation search (beyond the paper's 12 Gbit/s/host axis)");
    println!("# parallelism: {par}; engine: {}", cfg.engine.name());
    println!(
        "  {:<14} {:<14} {:>12} {:>10} {:>10}",
        "topology", "pattern", "sat [Gbps]", "mean-util", "max-util"
    );
    for pattern in [
        TrafficPattern::Uniform,
        TrafficPattern::BitReversal,
        TrafficPattern::neighboring_paper(),
    ] {
        for (name, graph) in &topos {
            let vcs = cfg.vcs;
            let g2 = graph.clone();
            let make =
                move || -> Arc<dyn dsn_sim::SimRouting> { Arc::new(AdaptiveEscape::new(g2, vcs)) };
            let sat = find_saturation_cached(
                graph.clone(),
                &cfg,
                &cache,
                &key,
                make,
                &pattern,
                2.0,
                40.0,
                tol,
                0x5A7,
                &par,
            );
            // Re-run near saturation to report channel utilization (and,
            // with --telemetry, where the cycles go at that load). The
            // routing is a guaranteed cache hit by now.
            let g2 = graph.clone();
            let routing =
                cache.get_or_build(graph, &key, move || Arc::new(AdaptiveEscape::new(g2, vcs)));
            let rate = cfg.packets_per_cycle_for_gbps(sat * 0.9);
            let mut sim = Simulator::new(
                graph.clone(),
                cfg.clone(),
                routing,
                pattern.clone(),
                rate,
                0x5A7,
            );
            if let Some(window) = telemetry {
                sim = sim.with_telemetry(cfg.standard_telemetry(window));
            }
            let (stats, report) = sim.run_with_telemetry();
            println!(
                "  {:<14} {:<14} {:>12.1} {:>10.3} {:>10.3}",
                name,
                pattern.name(),
                sat,
                stats.mean_channel_utilization,
                stats.max_channel_utilization
            );
            if let Some(report) = report {
                let tag = format!(
                    "sat_{}_{}",
                    name.replace(['-', ' '], "_").to_lowercase(),
                    pattern.name().replace(' ', "_")
                );
                emit_telemetry(&tag, &report);
            }
        }
    }
    println!(
        "# routing cache: {} build(s), {} hit(s)",
        cache.misses(),
        cache.hits()
    );
}
