//! Quantifies the paper's "routing logic simple and small" claim: estimated
//! per-switch routing state for DSN custom routing vs table-based
//! up*/down* and adaptive+escape, across network sizes, plus torus DOR for
//! reference.
//!
//! Run: `cargo run --release -p dsn-bench --bin routing_cost`

use dsn_core::dsn::Dsn;
use dsn_core::torus::Torus;
use dsn_route::cost::{adaptive_escape_cost, dor_cost, dsn_custom_cost, updown_cost};

fn main() {
    println!("Per-switch routing state (bits) vs network size");
    println!(
        "  {:>6} {:>14} {:>14} {:>18} {:>12}",
        "n", "dsn-custom", "up*/down*", "adaptive+escape", "torus-dor"
    );
    for k in 5..=11u32 {
        let n = 1usize << k;
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).expect("dsn");
        let torus = Torus::square_2d(n).expect("torus");
        let custom = dsn_custom_cost(&dsn);
        let ud = updown_cost(dsn.graph());
        let ad = adaptive_escape_cost(dsn.graph());
        let dor = dor_cost(&torus);
        println!(
            "  {:>6} {:>14} {:>14} {:>18} {:>12}",
            n,
            custom.state_bits_per_switch,
            ud.state_bits_per_switch,
            ad.state_bits_per_switch,
            dor.state_bits_per_switch
        );
    }
    println!();
    let dsn = Dsn::new(2048, 10).expect("dsn");
    let custom = dsn_custom_cost(&dsn);
    let ud = updown_cost(dsn.graph());
    println!(
        "At 2048 switches: custom routing needs {} bits/switch ({}) — {}x less state\n\
         than the {}-entry up*/down* table it replaces.",
        custom.state_bits_per_switch,
        custom.decision_logic,
        ud.state_bits_per_switch / custom.state_bits_per_switch.max(1),
        ud.table_entries_per_switch
    );
}
