//! Regenerates **Figure 10 (a/b/c)**: average packet latency vs accepted
//! traffic for DSN, 2-D torus and RANDOM (DLN-2-2), 64 switches with 4
//! hosts each, under uniform / bit-reversal / neighboring traffic, using
//! the paper's simulator parameters (virtual cut-through, 4 VCs, ~100 ns
//! header latency, 20 ns link delay, 33-flit packets, 96 Gbps links,
//! topology-agnostic adaptive routing with up*/down* escape). Also prints
//! the T3 summary row (DSN latency improvement vs torus).
//!
//! Run: `cargo run --release -p dsn-bench --bin fig10_simulation \
//!       [uniform|bitrev|neighbor|all] [--quick] \
//!       [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn|algorithmic] [--telemetry[=WINDOW]] \
//!       [--opt] [--sizes N,M,...]`
//!
//! `--workers N` selects the sharded parallel engine with `N` shards
//! (0 = one per rayon worker); it is bit-identical to `--engine event`
//! at every worker count.
//!
//! `--opt` adds the frontier study's searched placements (Opt-SA, Opt-ES
//! at 64 switches, same seeds and budgets as `opt_frontier`) to the
//! figure sweeps, closing the loop between the placement search and the
//! full latency-vs-load evaluation.
//!
//! `--sizes N,M,...` runs the large-n scale rows: the saturated trio at
//! each size (snapped down to the nearest clean DSN size, e.g. 1024 →
//! DSN-9-1020, 2048 → DSN-10-2046) on the event engine plus a sharded
//! DSN row, with DSN routed by the table-free algorithmic DSN-V scheme
//! (`RoutingTables::Algorithmic` — O(n) bytes instead of the O(n²) CSR).
//! Without `--json` the rows print to stdout and exit (the CI smoke);
//! with `--json` they are appended to `BENCH_sim.json`, which includes
//! sizes 1024 and 2048 by default.
//!
//! `--telemetry[=WINDOW]` adds an instrumented pass per topology at the
//! low-load point: per-phase latency decomposition, the link-utilization
//! heatmap, and `telemetry_fig10_<topology>.{json,csv}` exports.
//!
//! `--json` switches to benchmark mode: instead of the figure sweeps it
//! times the engines (dense, event, and sharded at 2 and 4 workers) on
//! the trio at 64 and 256 switches (256 and 1024 hosts) at a low and a
//! near-saturation load point and writes machine-readable rows to
//! `BENCH_sim.json`, so CI can track the engine's perf trajectory.
//! Every row runs in its own child process (`--bench-row N` re-exec):
//! a fresh heap per row keeps allocator state from one row from skewing
//! the next (in-process, late rows measurably degrade), and the child's
//! peak-RSS high-water mark covers that row alone — including sharded
//! rows, whose worker pools previously shared one cumulative figure.
//! Routing is (re)built inside each child and its cost is reported
//! separately as `routing_build_s` — `wall_s` times only the simulation
//! proper. Inside the child the RSS mark is additionally reset after
//! construction; where the reset is impossible the row carries
//! `"rss_is_cumulative": true` instead of a stale figure.
//!
//! `--phase-timing` (with `--json` or the figure sweeps) turns on the
//! engine's per-phase wall-clock breakdown (wheel-drain / inject / route
//! / arbitrate / eject, reported to stderr at the end of each run), the
//! same diagnostic as the `DSN_PHASE_TIMING=1` environment variable.

use dsn_bench::opt::searched_placements;
use dsn_bench::{
    emit_telemetry, peak_rss_kb, reset_peak_rss, take_engine_arg, take_routing_tables_arg,
    take_telemetry_arg, take_workers_arg, trio,
};
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::parallel::Parallelism;
use dsn_sim::sweep::{format_sweep, load_sweep_cached, paper_load_grid, SweepResult};
use dsn_sim::{
    AdaptiveEscape, DsnAlgorithmic, EngineKind, RoutingCache, RoutingTables, SimConfig, SimRouting,
    Simulator, TrafficPattern,
};
use std::sync::Arc;
use std::time::Instant;

/// Build the trio once so every pattern/engine/load pass shares the same
/// `Arc<Graph>` instances — the identity the [`RoutingCache`] keys on.
fn build_topos(n: usize) -> Vec<(String, Arc<Graph>)> {
    trio(n)
        .into_iter()
        .map(|spec| {
            let built = spec.build().expect("topology");
            (built.name, Arc::new(built.graph))
        })
        .collect()
}

fn run_pattern(
    pattern: &TrafficPattern,
    cfg: &SimConfig,
    loads: &[f64],
    topos: &[(String, Arc<Graph>)],
    cache: &Arc<RoutingCache>,
) -> Vec<SweepResult> {
    let key = AdaptiveEscape::key_for(cfg.vcs);
    let mut results = Vec::new();
    for (name, graph) in topos {
        let g2 = graph.clone();
        let vcs = cfg.vcs;
        let sweep = load_sweep_cached(
            name.clone(),
            graph.clone(),
            cfg,
            cache,
            &key,
            move || Arc::new(AdaptiveEscape::new(g2, vcs)),
            pattern,
            loads,
            0x000F_1610,
            &Parallelism::auto(),
        );
        println!("{}", format_sweep(&sweep));
        results.push(sweep);
    }
    results
}

fn summarize(results: &[SweepResult]) {
    // results order matches trio(): [DSN, torus, RANDOM]
    let (dsn, torus, random) = (&results[0], &results[1], &results[2]);
    let imp_torus = 100.0 * (torus.low_load_latency_ns() - dsn.low_load_latency_ns())
        / torus.low_load_latency_ns();
    println!(
        "  low-load latency: DSN {:.0} ns, torus {:.0} ns, RANDOM {:.0} ns -> DSN vs torus: {imp_torus:+.1}%",
        dsn.low_load_latency_ns(),
        torus.low_load_latency_ns(),
        random.low_load_latency_ns()
    );
    println!(
        "  saturation throughput [Gbit/s/host]: DSN {:.1}, torus {:.1}, RANDOM {:.1}",
        dsn.saturation_throughput_gbps(),
        torus.saturation_throughput_gbps(),
        random.saturation_throughput_gbps()
    );
}

/// One cell of the benchmark matrix, identified by its index in
/// [`bench_rows`] so a re-exec'd child resolves the same cell.
struct BenchRow {
    engine: EngineKind,
    workers: usize,
    /// Switch count (64/256 for the classic matrix; clean DSN sizes for
    /// the `--sizes` scale rows).
    n: usize,
    /// Index into the paper trio at `n`: 0 = DSN, 1 = torus, 2 = DLN.
    topo_idx: usize,
    gbps: f64,
    /// Route DSN with the table-free algorithmic DSN-V scheme (scale
    /// rows) instead of the trio's adaptive + escape routing.
    algorithmic: bool,
}

/// The full matrix in emission order: engines × (trio @ 64, trio @ 256)
/// × (low load, near-saturation load), then the `--sizes` scale rows —
/// per size, the saturated trio on the event engine plus a sharded-w4
/// DSN row, with DSN routed table-free.
fn bench_rows(sizes: &[usize]) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    for (engine, workers) in [
        (EngineKind::Dense, 1usize),
        (EngineKind::Event, 1),
        (EngineKind::Sharded, 2),
        (EngineKind::Sharded, 4),
    ] {
        for n in [64, 256] {
            for topo_idx in 0..3 {
                for gbps in [1.0f64, 11.0] {
                    rows.push(BenchRow {
                        engine,
                        workers,
                        n,
                        topo_idx,
                        gbps,
                        algorithmic: false,
                    });
                }
            }
        }
    }
    for &size in sizes {
        // Snap to the largest clean DSN size (p | n) at or below the
        // request — the sizes DSN-V's deadlock-freedom argument covers —
        // and hold the whole trio to it so the rows stay comparable.
        let n = Dsn::new_clean(size).expect("clean DSN size").n();
        for topo_idx in 0..3 {
            rows.push(BenchRow {
                engine: EngineKind::Event,
                workers: 1,
                n,
                topo_idx,
                gbps: 11.0,
                algorithmic: topo_idx == 0,
            });
        }
        rows.push(BenchRow {
            engine: EngineKind::Sharded,
            workers: 4,
            n,
            topo_idx: 0,
            gbps: 11.0,
            algorithmic: true,
        });
    }
    rows
}

/// Topology + routing choices for one matrix cell.
struct RowSetup {
    graph: Arc<Graph>,
    name: String,
    routing: Arc<dyn SimRouting>,
    scheme: &'static str,
    tables: RoutingTables,
    flat_bytes: Option<usize>,
}

/// Run one matrix cell in this process and return its JSON object (no
/// trailing separator). The human-readable progress line goes to stderr
/// so a parent process can pass it through.
fn run_bench_row(cfg: &SimConfig, row: &BenchRow) -> String {
    // Scale DSN rows route table-free; measure the 4-context CSR the
    // algorithmic path replaces on a throwaway instance first (compile
    // cost and memory are returned before the run — the real row never
    // materializes it).
    let RowSetup {
        graph,
        name,
        routing,
        scheme,
        tables,
        flat_bytes,
    } = if row.algorithmic {
        let p = dsn_core::util::ceil_log2(row.n);
        let dsn = Arc::new(Dsn::new(row.n, p - 1).expect("clean DSN"));
        let graph = Arc::new(dsn.graph().clone());
        let name = format!("DSN-{}-{}", p - 1, row.n);
        let flat_bytes = DsnAlgorithmic::new(dsn.clone())
            .compiled_flat()
            .map(|f| f.table_bytes());
        RowSetup {
            graph,
            name,
            routing: Arc::new(DsnAlgorithmic::new(dsn)),
            scheme: "dsn-v-algorithmic",
            tables: RoutingTables::Algorithmic,
            flat_bytes,
        }
    } else {
        let built = trio(row.n)
            .into_iter()
            .nth(row.topo_idx)
            .unwrap()
            .build()
            .expect("topology");
        let graph = Arc::new(built.graph);
        let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
        RowSetup {
            graph,
            name: built.name,
            routing,
            scheme: "adaptive-escape",
            tables: cfg.routing_tables,
            flat_bytes: None,
        }
    };
    let cfg = SimConfig {
        engine: row.engine,
        workers: row.workers,
        routing_tables: tables,
        ..cfg.clone()
    };
    let rate = cfg.packets_per_cycle_for_gbps(row.gbps);
    let build_start = Instant::now();
    if cfg.routing_tables == RoutingTables::Flat {
        routing.compiled_flat();
    }
    let routing_build_s = build_start.elapsed().as_secs_f64();
    let sim = Simulator::new(
        graph.clone(),
        cfg.clone(),
        routing,
        TrafficPattern::Uniform,
        rate,
        0x000F_1610,
    );
    let table_bytes = sim.routing_table_bytes();
    // VmHWM is a process-lifetime high-water mark; reset it so this row's
    // reading covers only the run below (not topology/routing build).
    let rss_fresh = reset_peak_rss();
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    let cycles = cfg.total_cycles();
    eprintln!(
        "  {:<7} w{} {:<14} {:>5.1}G  {:>10.0} cycles/s  (routing build {:.3}s, tables {} B)",
        row.engine.name(),
        row.workers,
        name,
        row.gbps,
        cycles as f64 / wall,
        routing_build_s,
        table_bytes,
    );
    format!(
        "  {{\"engine\": \"{}\", \"workers\": {}, \"topology\": \"{}\", \
         \"pattern\": \"uniform\", \"routing\": \"{scheme}\", \
         \"load_gbps\": {}, \"cycles\": {cycles}, \"wall_s\": {wall:.6}, \
         \"routing_build_s\": {routing_build_s:.6}, \"cycles_per_sec\": {:.0}, \
         \"delivered_packets\": {}, \
         \"peak_in_flight_packets\": {}, \"routing_table_bytes\": {table_bytes}{}, \
         \"peak_rss_kb\": {}{}}}",
        row.engine.name(),
        row.workers,
        name,
        row.gbps,
        cycles as f64 / wall,
        stats.delivered_packets,
        stats.peak_in_flight_packets,
        flat_bytes
            .map(|b| format!(", \"flat_table_bytes\": {b}"))
            .unwrap_or_default(),
        peak_rss_kb().unwrap_or(0),
        if rss_fresh {
            ""
        } else {
            ", \"rss_is_cumulative\": true"
        },
    )
}

/// Benchmark mode: run every [`bench_rows`] cell in its own child process
/// (`--bench-row N` re-exec of this binary) and write `BENCH_sim.json`
/// (hand-rolled — the workspace carries no JSON dependency). Process
/// isolation keeps one row's allocator state from skewing the next and
/// gives every row — sharded ones included — its own peak-RSS reading.
/// Falls back to in-process rows if the binary cannot re-exec itself.
fn emit_bench_json(cfg: &SimConfig, sizes: &[usize]) {
    let exe = std::env::current_exe().ok();
    let sizes_arg = sizes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut rows = String::new();
    for (i, row) in bench_rows(sizes).iter().enumerate() {
        let json = exe
            .as_deref()
            .and_then(|exe| {
                let mut args = vec![
                    "--json".to_string(),
                    "--bench-row".to_string(),
                    i.to_string(),
                    "--routing-tables".to_string(),
                    cfg.routing_tables.name().to_string(),
                ];
                if !sizes_arg.is_empty() {
                    args.push("--sizes".to_string());
                    args.push(sizes_arg.clone());
                }
                let out = std::process::Command::new(exe)
                    .args(&args)
                    .stderr(std::process::Stdio::inherit())
                    .output()
                    .ok()?;
                if !out.status.success() {
                    return None;
                }
                let line = String::from_utf8(out.stdout).ok()?;
                let line = line.trim_end().to_string();
                if line.is_empty() {
                    None
                } else {
                    Some(line)
                }
            })
            .unwrap_or_else(|| run_bench_row(cfg, row));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&json);
    }
    let json = format!("[\n{rows}\n]\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}

/// Telemetry pass: one instrumented run per trio topology at the
/// Figure 10 low-load point (1 Gbit/s/host, uniform traffic).
fn run_telemetry_pass(
    cfg: &SimConfig,
    window: u64,
    topos: &[(String, Arc<Graph>)],
    cache: &Arc<RoutingCache>,
) {
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    let key = AdaptiveEscape::key_for(cfg.vcs);
    for (name, graph) in topos {
        let routing = {
            let g2 = graph.clone();
            let vcs = cfg.vcs;
            cache.get_or_build(graph, &key, move || Arc::new(AdaptiveEscape::new(g2, vcs)))
        };
        let (stats, report) = Simulator::new(
            graph.clone(),
            cfg.clone(),
            routing,
            TrafficPattern::Uniform,
            rate,
            0x000F_1610,
        )
        .with_telemetry(cfg.standard_telemetry(window))
        .run_with_telemetry();
        let report = report.expect("telemetry enabled");
        let tag = format!("fig10_{}", name.replace(['-', ' '], "_").to_lowercase());
        emit_telemetry(&tag, &report);
        println!(
            "# RunStats cross-check: mean util {:.3} (telemetry {:.3}), delivered {}",
            stats.mean_channel_utilization,
            report.mean_measured_utilization(),
            stats.delivered_packets
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--phase-timing") {
        args.retain(|a| a != "--phase-timing");
        // Safe: single-threaded startup, before any sim work begins. The
        // variable also propagates into `--bench-row` children.
        std::env::set_var("DSN_PHASE_TIMING", "1");
    }
    let bench_row = args.iter().position(|a| a == "--bench-row").map(|pos| {
        args.remove(pos);
        args.remove(pos).parse::<usize>().expect("--bench-row N")
    });
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = EngineKind::Sharded;
        workers = w;
    }
    let routing_tables = take_routing_tables_arg(&mut args);
    let telemetry = take_telemetry_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let opt = args.iter().any(|a| a == "--opt");
    let sizes_arg = args.iter().position(|a| a == "--sizes").map(|pos| {
        args.remove(pos);
        let list = args.remove(pos);
        list.split(',')
            .map(|s| s.trim().parse::<usize>().expect("--sizes N,M,..."))
            .collect::<Vec<usize>>()
    });
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let mut cfg = SimConfig {
        engine,
        workers,
        routing_tables,
        ..SimConfig::default()
    };
    let loads = if quick || json {
        cfg.warmup_cycles = 5_000;
        cfg.measure_cycles = 15_000;
        cfg.drain_cycles = 15_000;
        vec![1.0, 4.0, 8.0, 11.0]
    } else {
        paper_load_grid()
    };

    // Scale sizes: explicit `--sizes` wins; `--json` without it defaults
    // to the first large-n rungs (snapped to DSN-9-1020 / DSN-10-2046).
    let sizes = sizes_arg
        .clone()
        .unwrap_or_else(|| if json { vec![1024, 2048] } else { Vec::new() });

    // Child of a `--json` parent: run exactly one matrix cell, print its
    // JSON object to stdout and exit.
    if let Some(i) = bench_row {
        let rows = bench_rows(&sizes);
        let row = rows.get(i).expect("--bench-row index out of range");
        println!("{}", run_bench_row(&cfg, row));
        return;
    }

    if json {
        emit_bench_json(&cfg, &sizes);
        if let Some(window) = telemetry {
            let topos = build_topos(64);
            let cache = Arc::new(RoutingCache::new());
            run_telemetry_pass(&cfg, window, &topos, &cache);
        }
        return;
    }

    // `--sizes` without `--json`: run just the scale rows in-process (the
    // CI large-n smoke) and exit.
    if let Some(sizes) = &sizes_arg {
        let base = bench_rows(&[]).len();
        for row in &bench_rows(sizes)[base..] {
            println!("{}", run_bench_row(&cfg, row));
        }
        return;
    }

    let mut topos = build_topos(64);
    if opt {
        // The frontier study's searched placements, swept like any other
        // topology (ROADMAP item 2's missing last step).
        for (name, g) in searched_placements(64, quick, Parallelism::auto()) {
            topos.push((name, Arc::new(g)));
        }
    }
    let cache = Arc::new(RoutingCache::new());

    let patterns: Vec<TrafficPattern> = match which {
        "uniform" => vec![TrafficPattern::Uniform],
        "bitrev" => vec![TrafficPattern::BitReversal],
        "neighbor" => vec![TrafficPattern::neighboring_paper()],
        "all" => vec![
            TrafficPattern::Uniform,
            TrafficPattern::BitReversal,
            TrafficPattern::neighboring_paper(),
        ],
        other => {
            eprintln!("unknown pattern `{other}` (expected uniform | bitrev | neighbor | all)");
            std::process::exit(2);
        }
    };

    println!(
        "# engine: {} / routing tables: {}",
        cfg.engine.name(),
        cfg.routing_tables.name()
    );
    for pattern in &patterns {
        let fig = match pattern {
            TrafficPattern::Uniform => "10(a)",
            TrafficPattern::BitReversal => "10(b)",
            _ => "10(c)",
        };
        println!(
            "=== Figure {fig}: latency vs accepted traffic, {} traffic ===",
            pattern.name()
        );
        let results = run_pattern(pattern, &cfg, &loads, &topos, &cache);
        summarize(&results);
        println!();
    }
    println!("(paper T3: DSN improves latency vs torus by 15% on uniform, 4.3% on bit reversal;\n throughput of all three topologies is similar)");
    println!(
        "# routing cache: {} build(s), {} hit(s)",
        cache.misses(),
        cache.hits()
    );
    if let Some(window) = telemetry {
        run_telemetry_pass(&cfg, window, &topos, &cache);
    }
}
