//! Regenerates **Figure 10 (a/b/c)**: average packet latency vs accepted
//! traffic for DSN, 2-D torus and RANDOM (DLN-2-2), 64 switches with 4
//! hosts each, under uniform / bit-reversal / neighboring traffic, using
//! the paper's simulator parameters (virtual cut-through, 4 VCs, ~100 ns
//! header latency, 20 ns link delay, 33-flit packets, 96 Gbps links,
//! topology-agnostic adaptive routing with up*/down* escape). Also prints
//! the T3 summary row (DSN latency improvement vs torus).
//!
//! Run: `cargo run --release -p dsn-bench --bin fig10_simulation \
//!       [uniform|bitrev|neighbor|all] [--quick] [--engine dense|event] \
//!       [--telemetry[=WINDOW]]`
//!
//! `--telemetry[=WINDOW]` adds an instrumented pass per topology at the
//! low-load point: per-phase latency decomposition, the link-utilization
//! heatmap, and `telemetry_fig10_<topology>.{json,csv}` exports.
//!
//! `--json` switches to benchmark mode: instead of the figure sweeps it
//! times both engines on the trio at a low and a near-saturation load
//! point and writes machine-readable rows to `BENCH_sim.json`, so CI can
//! track the engine's perf trajectory.

use dsn_bench::{emit_telemetry, peak_rss_kb, take_engine_arg, take_telemetry_arg, trio};
use dsn_sim::sweep::{format_sweep, load_sweep, paper_load_grid, SweepResult};
use dsn_sim::{AdaptiveEscape, EngineKind, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;
use std::time::Instant;

fn run_pattern(pattern: &TrafficPattern, cfg: &SimConfig, loads: &[f64]) -> Vec<SweepResult> {
    let mut results = Vec::new();
    for spec in trio(64) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let vcs = cfg.vcs;
        let g2 = graph.clone();
        let sweep = load_sweep(
            built.name.clone(),
            graph,
            cfg,
            move || Arc::new(AdaptiveEscape::new(g2.clone(), vcs)),
            pattern,
            loads,
            0x000F_1610,
        );
        println!("{}", format_sweep(&sweep));
        results.push(sweep);
    }
    results
}

fn summarize(results: &[SweepResult]) {
    // results order matches trio(): [DSN, torus, RANDOM]
    let (dsn, torus, random) = (&results[0], &results[1], &results[2]);
    let imp_torus = 100.0 * (torus.low_load_latency_ns() - dsn.low_load_latency_ns())
        / torus.low_load_latency_ns();
    println!(
        "  low-load latency: DSN {:.0} ns, torus {:.0} ns, RANDOM {:.0} ns -> DSN vs torus: {imp_torus:+.1}%",
        dsn.low_load_latency_ns(),
        torus.low_load_latency_ns(),
        random.low_load_latency_ns()
    );
    println!(
        "  saturation throughput [Gbit/s/host]: DSN {:.1}, torus {:.1}, RANDOM {:.1}",
        dsn.saturation_throughput_gbps(),
        torus.saturation_throughput_gbps(),
        random.saturation_throughput_gbps()
    );
}

/// Benchmark mode: time both engines on the fig10 trio at a low and a
/// near-saturation load point and write `BENCH_sim.json` (hand-rolled —
/// the workspace carries no JSON dependency).
fn emit_bench_json(cfg: &SimConfig) {
    let mut rows = String::new();
    for engine in [EngineKind::Dense, EngineKind::Event] {
        for spec in trio(64) {
            let built = spec.build().expect("topology");
            let graph = Arc::new(built.graph);
            for gbps in [1.0f64, 11.0] {
                let cfg = SimConfig {
                    engine,
                    ..cfg.clone()
                };
                let rate = cfg.packets_per_cycle_for_gbps(gbps);
                let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
                let sim = Simulator::new(
                    graph.clone(),
                    cfg.clone(),
                    routing,
                    TrafficPattern::Uniform,
                    rate,
                    0x000F_1610,
                );
                let start = Instant::now();
                let stats = sim.run();
                let wall = start.elapsed().as_secs_f64();
                let cycles = cfg.total_cycles();
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "  {{\"engine\": \"{}\", \"topology\": \"{}\", \"pattern\": \"uniform\", \
                     \"load_gbps\": {gbps}, \"cycles\": {cycles}, \"wall_s\": {wall:.6}, \
                     \"cycles_per_sec\": {:.0}, \"delivered_packets\": {}, \
                     \"peak_in_flight_packets\": {}, \"peak_rss_kb\": {}}}",
                    engine.name(),
                    built.name,
                    cycles as f64 / wall,
                    stats.delivered_packets,
                    stats.peak_in_flight_packets,
                    peak_rss_kb().unwrap_or(0),
                ));
                println!(
                    "  {:<6} {:<14} {:>5.1}G  {:>10.0} cycles/s",
                    engine.name(),
                    built.name,
                    gbps,
                    cycles as f64 / wall
                );
            }
        }
    }
    let json = format!("[\n{rows}\n]\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}

/// Telemetry pass: one instrumented run per trio topology at the
/// Figure 10 low-load point (1 Gbit/s/host, uniform traffic).
fn run_telemetry_pass(cfg: &SimConfig, window: u64) {
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    for spec in trio(64) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
        let (stats, report) = Simulator::new(
            graph,
            cfg.clone(),
            routing,
            TrafficPattern::Uniform,
            rate,
            0x000F_1610,
        )
        .with_telemetry(cfg.standard_telemetry(window))
        .run_with_telemetry();
        let report = report.expect("telemetry enabled");
        let tag = format!(
            "fig10_{}",
            built.name.replace(['-', ' '], "_").to_lowercase()
        );
        emit_telemetry(&tag, &report);
        println!(
            "# RunStats cross-check: mean util {:.3} (telemetry {:.3}), delivered {}",
            stats.mean_channel_utilization,
            report.mean_measured_utilization(),
            stats.delivered_packets
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let engine = take_engine_arg(&mut args);
    let telemetry = take_telemetry_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let mut cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let loads = if quick || json {
        cfg.warmup_cycles = 5_000;
        cfg.measure_cycles = 15_000;
        cfg.drain_cycles = 15_000;
        vec![1.0, 4.0, 8.0, 11.0]
    } else {
        paper_load_grid()
    };

    if json {
        emit_bench_json(&cfg);
        if let Some(window) = telemetry {
            run_telemetry_pass(&cfg, window);
        }
        return;
    }

    let patterns: Vec<TrafficPattern> = match which {
        "uniform" => vec![TrafficPattern::Uniform],
        "bitrev" => vec![TrafficPattern::BitReversal],
        "neighbor" => vec![TrafficPattern::neighboring_paper()],
        "all" => vec![
            TrafficPattern::Uniform,
            TrafficPattern::BitReversal,
            TrafficPattern::neighboring_paper(),
        ],
        other => {
            eprintln!("unknown pattern `{other}` (expected uniform | bitrev | neighbor | all)");
            std::process::exit(2);
        }
    };

    println!("# engine: {}", cfg.engine.name());
    for pattern in &patterns {
        let fig = match pattern {
            TrafficPattern::Uniform => "10(a)",
            TrafficPattern::BitReversal => "10(b)",
            _ => "10(c)",
        };
        println!(
            "=== Figure {fig}: latency vs accepted traffic, {} traffic ===",
            pattern.name()
        );
        let results = run_pattern(pattern, &cfg, &loads);
        summarize(&results);
        println!();
    }
    println!("(paper T3: DSN improves latency vs torus by 15% on uniform, 4.3% on bit reversal;\n throughput of all three topologies is similar)");
    if let Some(window) = telemetry {
        run_telemetry_pass(&cfg, window);
    }
}
