//! General-purpose topology analyzer CLI: build any topology from a spec
//! string, report hop/degree/cable/resilience metrics, optionally dump DOT.
//!
//! ```text
//! cargo run --release -p dsn-bench --bin netanalyze -- dsn:1020 torus2d:1024 random:1024
//! cargo run --release -p dsn-bench --bin netanalyze -- --dot out.dot dsn:64
//! ```
//!
//! Spec grammar: `dsn:<n>[:<x>]`, `dsne:<n>`, `dsnd:<n>:<x>`,
//! `flexdsn:<base>:<x>:<minors>`, `ring:<n>`, `torus2d:<n>`, `torus3d:<n>`,
//! `dln:<n>:<x>`, `random:<n>[:<seed>]`, `regular:<n>:<d>[:<seed>]`,
//! `kleinberg:<side>:<q>[:<seed>]`, `hypercube:<dim>`, `ccc:<dim>`,
//! `debruijn:<base>:<dim>`.

use dsn_core::export::to_dot;
use dsn_core::topology::TopologySpec;
use dsn_layout::{cable_stats, CableModel, LinearPlacement};
use dsn_metrics::{edge_connectivity, estimate_bisection, TopologyReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: netanalyze [--dot FILE] <spec> [<spec> ...]   (see --help in source)");
        std::process::exit(2);
    }
    let mut dot_path: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--dot" {
            dot_path = it.next();
        } else {
            specs.push(a);
        }
    }

    println!(
        "{} {:>9} {:>9} {:>8}",
        TopologyReport::header(),
        "cable[m]",
        "edgeconn",
        "bisect"
    );
    for spec in &specs {
        let parsed = match TopologySpec::parse(spec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("  {spec}: {e}");
                continue;
            }
        };
        let built = match parsed.build() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("  {spec}: {e}");
                continue;
            }
        };
        let report = TopologyReport::new(built.name.clone(), &built.graph);
        let model = CableModel::default();
        let placement = LinearPlacement::new(built.graph.node_count(), model.switches_per_cabinet);
        let cable = cable_stats(&built.graph, &placement, &model);
        let conn = edge_connectivity(&built.graph);
        let bis = estimate_bisection(&built.graph, 2, 7).width;
        println!(
            "{} {:>9.2} {:>9} {:>8}",
            report.row(),
            cable.avg_m,
            conn,
            bis
        );
        if let Some(path) = &dot_path {
            let dot = to_dot(&built.graph, &built.name);
            if let Err(e) = std::fs::write(path, dot) {
                eprintln!("  cannot write {path}: {e}");
            } else {
                println!("  (DOT written to {path})");
            }
        }
    }
}
