//! Regenerates **Figure 7**: diameter (hops) vs network size
//! (`log2 N = 5..11`) for the 2-D torus, RANDOM (DLN-2-2) and DSN, plus the
//! in-text claim T1 ("DSN improves the diameter by up to 67% compared to
//! torus").
//!
//! Run: `cargo run --release -p dsn-bench --bin fig7_diameter [--threads N | --serial]`

use dsn_bench::{block_header, paper_sizes, trio};
use dsn_core::parallel::Parallelism;
use dsn_metrics::diameter_with;

fn main() {
    let (par, _rest) = Parallelism::from_args(std::env::args().skip(1));
    par.install();
    println!("Figure 7: diameter vs network size (lower is better)");
    println!("# parallelism: {par}");
    print!(
        "{}",
        block_header(
            "columns: log2(N)  torus  random  dsn  dsn-vs-torus-improvement",
            &["log2N", "torus", "random", "dsn", "improv%"]
        )
    );
    let mut best_improvement = 0.0f64;
    for n in paper_sizes() {
        let [dsn, torus, random] = trio(n);
        let d_dsn = diameter_with(&dsn.build().expect("dsn").graph, &par);
        let d_torus = diameter_with(&torus.build().expect("torus").graph, &par);
        let d_rand = diameter_with(&random.build().expect("random").graph, &par);
        let improvement = 100.0 * (d_torus as f64 - d_dsn as f64) / d_torus as f64;
        best_improvement = best_improvement.max(improvement);
        println!(
            "  {:>12} {:>12} {:>12} {:>12} {:>11.1}%",
            (n as f64).log2() as u32,
            d_torus,
            d_rand,
            d_dsn,
            improvement
        );
    }
    println!();
    println!(
        "T1 (diameter): DSN improves diameter vs torus by up to {best_improvement:.0}% \
         (paper: up to 67%)"
    );
}
