//! Section VII.B's closing claim: "our custom routing makes traffic
//! significantly more balanced than using up*/down* routing". The paper
//! gives no numbers ("we do not discuss these results in detail due to
//! space limitation"), so this experiment quantifies it: exact per-channel
//! load under all-to-all traffic, DSN custom routing (deterministic path)
//! versus up*/down* (flow split equally over all minimal legal next hops).
//!
//! Run: `cargo run --release -p dsn-bench --bin traffic_balance`

use dsn_core::dsn::Dsn;
use dsn_route::load::{balance_comparison, LoadStats};

fn row(name: &str, s: &LoadStats) -> String {
    format!(
        "    {:<22} {:>8.1} {:>8.1} {:>9.2} {:>8.3} {:>8.3}",
        name,
        s.mean,
        s.max,
        s.max_over_mean(),
        s.std / s.mean.max(1e-12),
        s.gini
    )
}

fn main() {
    println!("Traffic balance under all-to-all traffic (Section VII.B)");
    println!(
        "    {:<22} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "routing", "mean", "max", "max/mean", "cv", "gini"
    );
    for n in [60usize, 126, 252, 504] {
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).expect("dsn");
        let (custom, updown) = balance_comparison(&dsn);
        println!("  n = {n} (p = {p}):");
        println!("{}", row("custom (3-phase)", &custom));
        println!("{}", row("up*/down* (split)", &updown));
        println!(
            "    -> bottleneck reduction: {:.1}x lower max/mean with custom routing",
            updown.max_over_mean() / custom.max_over_mean()
        );
    }
    println!();
    println!(
        "(The up*/down* root hotspot caps achievable uniform throughput at ~1/max-load;\n \
         custom routing spreads load across the ring and shortcut levels.)"
    );
}
