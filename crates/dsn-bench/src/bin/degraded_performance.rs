//! Performance under link failures: run the Figure 10 setup on degraded
//! topologies (random links removed before the run; adaptive + up*/down*
//! escape recomputed on the survivor graph) — the fault-tolerance angle the
//! paper's related work (Jellyfish, small-world datacenters) emphasizes.
//!
//! Run: `cargo run --release -p dsn-bench --bin degraded_performance \
//!       [--quick] [--engine dense|event]`

use dsn_bench::{take_engine_arg, trio};
use dsn_sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let engine = take_engine_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let mut cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    if quick {
        cfg.warmup_cycles = 3_000;
        cfg.measure_cycles = 8_000;
        cfg.drain_cycles = 8_000;
    } else {
        cfg.warmup_cycles = 8_000;
        cfg.measure_cycles = 20_000;
        cfg.drain_cycles = 20_000;
    }

    println!("Latency under link failures (uniform traffic at 4 Gbit/s/host, 64 switches)");
    println!("# engine: {}", cfg.engine.name());
    println!(
        "  {:<14} {:>10} {:>10} {:>10} {:>10}",
        "topology", "0 dead", "2 dead", "5 dead", "10 dead"
    );
    let mut rng = SmallRng::seed_from_u64(0xFA11);
    for spec in trio(64) {
        let built = spec.build().expect("topology");
        let m = built.graph.edge_count();
        let mut ids: Vec<usize> = (0..m).collect();
        ids.shuffle(&mut rng);
        let mut row = format!("  {:<14}", built.name);
        for dead in [0usize, 2, 5, 10] {
            let g = built.graph.without_edges(&ids[..dead]);
            if !g.is_connected() {
                row.push_str(&format!("{:>11}", "split"));
                continue;
            }
            let g = Arc::new(g);
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            let rate = cfg.packets_per_cycle_for_gbps(4.0);
            let stats = Simulator::new(
                g,
                cfg.clone(),
                routing,
                TrafficPattern::Uniform,
                rate,
                0xFA11,
            )
            .run();
            if stats.delivery_ratio() > 0.95 {
                row.push_str(&format!("{:>9.0}ns", stats.avg_latency_ns));
            } else {
                row.push_str(&format!("{:>11}", "saturated"));
            }
        }
        println!("{row}");
    }
    println!(
        "\n(failed links chosen uniformly; the topology-agnostic escape routing is\n \
         recomputed on the survivor graph, as an operator would after a failure)"
    );
}
