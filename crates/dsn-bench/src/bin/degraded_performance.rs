//! Performance under link failures: run the Figure 10 setup on degraded
//! topologies — statically (random links removed before the run; adaptive +
//! up*/down* escape recomputed on the survivor graph) or dynamically
//! (`--faults N`: links die *mid-run* and the simulator reroutes online,
//! dropping or salvaging in-flight packets and retrying at the hosts) — the
//! fault-tolerance angle the paper's related work (Jellyfish, small-world
//! datacenters) emphasizes.
//!
//! Run: `cargo run --release -p dsn-bench --bin degraded_performance \
//!       [--quick] [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn] \
//!       [--faults N] [--json] [--telemetry[=WINDOW]]`
//!
//! (Dynamic-fault runs always use the single-thread event path — fault
//! machinery has no conservative lookahead — so `--workers` only affects
//! the fault-free and statically-degraded rows.)
//!
//! `--json` additionally writes the report to `BENCH_degraded.json`
//! (schema pinned by `tests/degraded_schema.rs`). `--telemetry[=WINDOW]`
//! adds an instrumented dynamic-fault run on DSN whose telemetry windows
//! are tagged **pre-fault / post-fault**, so the decomposition table shows
//! exactly how rerouting shifts latency from wire to queueing; exports go
//! to `telemetry_degraded_dsn.{json,csv}`.

use dsn_bench::degraded::{
    base_config, run_dynamic, run_dynamic_telemetry, run_static, DegradedMode, DegradedReport,
};
use dsn_bench::{
    emit_telemetry, take_engine_arg, take_routing_tables_arg, take_telemetry_arg, take_workers_arg,
    trio,
};

fn main() {
    // Parse the CLI exactly once into one shared `SimConfig`; every trial
    // below reuses it.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let routing_tables = take_routing_tables_arg(&mut args);
    let telemetry = take_telemetry_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let faults = args
        .iter()
        .position(|a| a == "--faults")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--faults needs a link count");
                    std::process::exit(2);
                })
        })
        .or_else(|| {
            args.iter().find_map(|a| {
                a.strip_prefix("--faults=").map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--faults needs a link count");
                        std::process::exit(2);
                    })
                })
            })
        });
    let mut cfg = base_config(engine, quick);
    cfg.workers = workers;
    cfg.routing_tables = routing_tables;
    let gbps = 4.0;
    let specs = trio(64);

    let report = match faults {
        Some(n) => run_dynamic(&cfg, &specs, n, gbps),
        None => run_static(&cfg, &specs, &[0, 2, 5, 10], gbps),
    };
    print_report(&report);
    if json {
        let path = "BENCH_degraded.json";
        std::fs::write(path, report.to_json()).expect("write JSON report");
        println!("\n# wrote {path}");
    }
    if let Some(window) = telemetry {
        // Instrumented dynamic-fault run on DSN (first trio entry), windows
        // tagged pre-fault / post-fault.
        let (stats, tel) =
            run_dynamic_telemetry(&cfg, &specs[0], faults.unwrap_or(2), gbps, window);
        emit_telemetry("degraded_dsn", &tel);
        println!(
            "# RunStats cross-check: dropped {}, retried {}, post-fault delivered {}",
            stats.dropped_packets_all_time, stats.retried_packets, stats.post_fault_delivered
        );
    }
}

fn print_report(report: &DegradedReport) {
    match report.mode {
        DegradedMode::Static => {
            println!(
                "Latency under link failures (uniform traffic at {} Gbit/s/host, 64 switches)",
                report.gbps_per_host
            );
            println!("# engine: {}", report.engine.name());
            println!(
                "  {:<14} {:>10} {:>10} {:>10} {:>10}",
                "topology", "0 dead", "2 dead", "5 dead", "10 dead"
            );
            let mut row = String::new();
            let mut current = None;
            for r in &report.rows {
                if current.as_deref() != Some(r.topology.as_str()) {
                    if current.is_some() {
                        println!("{row}");
                    }
                    row = format!("  {:<14}", r.topology);
                    current = Some(r.topology.clone());
                }
                if r.split {
                    row.push_str(&format!("{:>11}", "split"));
                } else if r.saturated {
                    row.push_str(&format!("{:>11}", "saturated"));
                } else {
                    row.push_str(&format!("{:>9.0}ns", r.avg_latency_ns));
                }
            }
            if current.is_some() {
                println!("{row}");
            }
            println!(
                "\n(failed links chosen uniformly; the topology-agnostic escape routing is\n \
                 recomputed on the survivor graph, as an operator would after a failure)"
            );
        }
        DegradedMode::Dynamic => {
            println!(
                "Latency under mid-run link deaths (uniform traffic at {} Gbit/s/host, \
                 64 switches)",
                report.gbps_per_host
            );
            println!("# engine: {}", report.engine.name());
            println!(
                "  {:<14} {:>6} {:>10} {:>9} {:>8} {:>8} {:>10} {:>10}",
                "topology",
                "deaths",
                "latency",
                "delivery",
                "dropped",
                "retried",
                "pf-avg",
                "pf-p99"
            );
            for r in &report.rows {
                println!(
                    "  {:<14} {:>6} {:>8.0}ns {:>9.4} {:>8} {:>8} {:>8.0}cy {:>8}cy",
                    r.topology,
                    r.dead_links,
                    r.avg_latency_ns,
                    r.delivery_ratio,
                    r.dropped,
                    r.retried,
                    r.post_fault_avg_latency_cycles,
                    r.post_fault_p99_latency_cycles
                );
            }
            println!(
                "\n(seeded connectivity-preserving schedule: links die during the measurement\n \
                 window, routing is rebuilt online, dropped packets are retried by hosts)"
            );
        }
    }
}
