//! Validates the paper's theoretical claims (Facts 1–3, Theorems 1–3)
//! by direct measurement:
//!
//! * Fact 1 / Theorem 1a — degrees in {2,3,4,5}, average ≤ 4, at most `p`
//!   nodes of degree 5 (expected ≤ p/2);
//! * Fact 3 / Theorem 1b — diameter ≤ 2.5p + r;
//! * Fact 2 / Theorem 1c — routing diameter ≤ 3p + r;
//! * Theorem 2a — E\[route\] ≤ 2p and E[shortest path] ≤ 1.5p;
//! * Theorem 2b — average shortcut length ≤ ~n/p (ring metric) vs the
//!   DLN-2-2 random-link average (~n/4 ring metric, n/3 line metric);
//! * Theorem 3 — DSN-V channel-level CDG acyclic; DSN-E group-level CDG
//!   acyclic (and the fine-grained DSN-E counterexample, a reproduction
//!   finding).
//!
//! Run: `cargo run --release -p dsn-bench --bin theory_validation [--threads N | --serial]`

use dsn_bench::RANDOM_SEED;
use dsn_core::dln::DlnRandom;
use dsn_core::dsn::Dsn;
use dsn_core::dsn_ext::DsnE;
use dsn_core::parallel::Parallelism;
use dsn_layout::ring_layout_stats;
use dsn_metrics::path_stats_with;
use dsn_route::deadlock::{dsne_cdg, dsne_group_dependencies, dsnv_cdg};
use dsn_route::routing_stats_with;

fn main() {
    let (par, _rest) = Parallelism::from_args(std::env::args().skip(1));
    par.install();
    println!("Theory validation: measured vs proven bounds");
    println!("# parallelism: {par}");
    println!(
        "  {:>6} {:>3} {:>2} | {:>9} {:>6} | {:>6} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "n",
        "p",
        "r",
        "deg-hist",
        "deg5",
        "diam",
        "<=2.5p+r",
        "routdiam",
        "<=3p+r",
        "E[route]",
        "<=2p",
        "E[spl]",
        "<=1.5p"
    );
    for n in [64usize, 128, 256, 510, 1020] {
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).expect("dsn");
        let g = dsn.graph();
        let hist = g.degree_histogram();
        let deg5 = hist.get(5).copied().unwrap_or(0);
        let deg_str = (2..=5)
            .map(|d| hist.get(d).copied().unwrap_or(0).to_string())
            .collect::<Vec<_>>()
            .join("/");
        let stats = path_stats_with(g, &par);
        let rstats = routing_stats_with(&dsn, &par);
        let diam_bound = 2.5 * p as f64 + dsn.r() as f64;
        let route_bound = (3 * p as usize + dsn.r()) as f64;
        println!(
            "  {:>6} {:>3} {:>2} | {:>9} {:>6} | {:>6} {:>7.1} | {:>8} {:>8.0} | {:>8.2} {:>8} | {:>8.2} {:>8.1}",
            n,
            p,
            dsn.r(),
            deg_str,
            deg5,
            stats.diameter,
            diam_bound,
            rstats.max_hops,
            route_bound,
            rstats.avg_hops,
            2 * p,
            stats.aspl,
            1.5 * p as f64
        );
        assert!(g.max_degree() <= 5, "Fact 1 violated at n={n}");
        assert!(g.avg_degree() <= 4.0 + 1e-9, "Fact 1 avg violated at n={n}");
        assert!(deg5 <= p as usize, "Fact 1 deg-5 count violated at n={n}");
        assert!(
            (stats.diameter as f64) <= diam_bound,
            "Thm 1b violated at n={n}"
        );
        assert!(
            (rstats.max_hops as f64) <= route_bound,
            "Thm 1c violated at n={n}"
        );
        assert!(
            rstats.avg_hops <= 2.0 * p as f64,
            "Thm 2a route violated at n={n}"
        );
        assert!(stats.aspl <= 1.5 * p as f64, "Thm 2a spl violated at n={n}");
    }

    println!();
    println!("Theorem 2b: shortcut cable economy (ring metric, unit node spacing)");
    for n in [512usize, 1024, 2048] {
        let dsn = Dsn::new_clean(n).expect("dsn");
        let dln = DlnRandom::new(dsn.n(), 2, 2, RANDOM_SEED).expect("dln22");
        let s_dsn = ring_layout_stats(dsn.graph());
        let s_dln = ring_layout_stats(dln.graph());
        println!(
            "  n={:>5}: DSN shortcut avg {:>7.1} (~n/p = {:>6.1})  vs  DLN-2-2 random avg {:>7.1} (~n/4 = {:>6.1}); factor {:.1}x",
            dsn.n(),
            s_dsn.shortcut_avg,
            dsn.n() as f64 / dsn.p() as f64,
            s_dln.random_avg,
            dsn.n() as f64 / 4.0,
            s_dln.random_avg / s_dsn.shortcut_avg
        );
    }

    println!();
    println!("Theorem 3: deadlock freedom (channel dependency graphs)");
    for n in [60usize, 126] {
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).expect("dsn");
        let v = dsnv_cdg(&dsn);
        println!(
            "  n={n}: DSN-V channel-level CDG: {} channels, {} deps, acyclic = {}",
            v.channel_count(),
            v.dependency_count(),
            v.is_acyclic()
        );
        assert!(v.is_acyclic());
        let dsne = DsnE::new(n).expect("dsne");
        let deps = dsne_group_dependencies(&dsne);
        let group_ok = deps.iter().all(|&(a, b)| a < b);
        let fine = dsne_cdg(&dsne);
        println!(
            "  n={n}: DSN-E group-level deps {:?} (forward-only = {group_ok}); \
             fine-grained CDG acyclic = {} (reproduction finding: the paper's \
             group argument does not extend to channel granularity)",
            deps,
            fine.is_acyclic()
        );
        assert!(group_ok);
    }
}
