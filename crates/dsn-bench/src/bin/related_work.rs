//! Section III related-work check: measured diameter-and-degree pairs for
//! the classic low-degree families the paper cites (De Bruijn "12-and-4 for
//! 3,072 vertices", CCC "23-and-3", hypercube, 2-D/3-D torus), side by side
//! with same-scale DSN and RANDOM instances.
//!
//! Run: `cargo run --release -p dsn-bench --bin related_work`

use dsn_bench::RANDOM_SEED;
use dsn_core::topology::TopologySpec;
use dsn_metrics::TopologyReport;

fn main() {
    println!("Related-work landscape (Section III): diameter-and-degree");
    println!("{}", TopologyReport::header());
    let specs = [
        // ~2k-4k-node classics quoted in the paper
        TopologySpec::DeBruijn { base: 2, dim: 11 }, // 2048 nodes
        TopologySpec::Ccc { dim: 8 },                // 2048 nodes, degree 3
        TopologySpec::Hypercube { dim: 11 },         // 2048 nodes
        TopologySpec::Torus2D { n: 2048 },
        TopologySpec::Torus3D { n: 2048 },
        TopologySpec::Dsn { n: 2048, x: 10 },
        TopologySpec::DlnRandom {
            n: 2048,
            x: 2,
            y: 2,
            seed: RANDOM_SEED,
        },
        TopologySpec::Kleinberg {
            side: 45,
            q: 1,
            seed: RANDOM_SEED,
        }, // 2025 nodes
        TopologySpec::RandomRegular {
            n: 2048,
            d: 4,
            seed: RANDOM_SEED,
        },
        TopologySpec::Ring { n: 2048 },
        TopologySpec::Dln { n: 2048, x: 11 }, // DLN-log n
    ];
    for spec in specs {
        let built = spec.build().expect("build");
        println!("{}", TopologyReport::new(built.name, &built.graph).row());
    }
    println!();
    println!(
        "(paper quotes: De Bruijn 12-and-4 at 3072 vertices, Kautz 11-and-4, CCC 23-and-3,\n \
         Hypernet 19-and-5 at 4608; our table uses the closest power-of-two sizes)"
    );
}
