//! Shortcut-placement Pareto study (ROADMAP item 2): is the paper's
//! deterministic span-`2^k` placement on the quality-vs-cable-cost
//! frontier, or can a seeded search beat it under DSN's own cable
//! budget?
//!
//! Sweeps DSN, DLN-2-2, random-4-regular, Kleinberg (grid where `n` is
//! square, ring-Kleinberg everywhere) and two searched placements
//! (simulated annealing and (μ+λ) evolution, both started from DSN and
//! held to DSN's cable bill) at each size, then marks Pareto-frontier
//! rows over (ASPL ↓, total cable ↓, saturation ↑).
//!
//! Run: `cargo run --release -p dsn-bench --bin opt_frontier \
//!       [--quick] [--sat] [--sizes 64,256,1020] [--json] \
//!       [--serial | --threads N]`
//!
//! `--quick` shortens searches and simulation horizons (CI smoke) and
//! skips saturation unless `--sat` is given; the full run probes
//! saturation by default. `--json` writes `BENCH_opt.json` (schema
//! pinned by `tests/opt_schema.rs`). The binary exits non-zero if the
//! frontier comes out empty or the DSN baseline row is missing — the CI
//! smoke relies on that.

use dsn_bench::opt::{run_frontier, FrontierConfig, OptRow};
use dsn_core::Parallelism;

fn main() {
    let (par, rest) = Parallelism::from_args(std::env::args().skip(1));
    let quick = rest.iter().any(|a| a == "--quick");
    let json = rest.iter().any(|a| a == "--json");
    let sat = if quick {
        rest.iter().any(|a| a == "--sat")
    } else {
        !rest.iter().any(|a| a == "--no-sat")
    };
    let sizes: Vec<usize> = rest
        .iter()
        .find_map(|a| a.strip_prefix("--sizes="))
        .or_else(|| {
            rest.iter()
                .position(|a| a == "--sizes")
                .and_then(|i| rest.get(i + 1))
                .map(|s| s.as_str())
        })
        .map(|v| {
            v.split(',')
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("--sizes needs a comma-separated switch-count list");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| if quick { vec![64] } else { vec![64, 256] });

    let report = run_frontier(&FrontierConfig {
        sizes: sizes.clone(),
        quick,
        sat,
        par,
    });

    println!("Shortcut-placement Pareto frontier (budget = DSN's cable bill)");
    println!("# parallelism: {par}; quick: {quick}; saturation probed: {sat}");
    println!(
        "  {:<22} {:<9} {:>5} {:>8} {:>5} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "topology",
        "family",
        "n",
        "aspl",
        "diam",
        "cable [m]",
        "budget [m]",
        "sat[Gbps]",
        "wall[s]",
        "frontier"
    );
    for r in &report.rows {
        let sat = r
            .sat_gbps
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<22} {:<9} {:>5} {:>8.4} {:>5} {:>10.1} {:>10.1} {:>9} {:>8.2} {:>9}",
            r.topology,
            r.family,
            r.n,
            r.aspl,
            r.diameter,
            r.cable_total_m,
            r.budget_m,
            sat,
            r.wall_s,
            if r.on_frontier { "*" } else { "" }
        );
    }

    // The ROADMAP answer, spelled out per size.
    for &n in &report.sizes {
        let group: Vec<&OptRow> = report.rows.iter().filter(|r| r.n == n).collect();
        let dsn = group.iter().find(|r| r.topology.starts_with("DSN-"));
        match dsn {
            Some(d) if d.on_frontier => println!(
                "# n={n}: DSN is ON the Pareto frontier (aspl {:.4}, cable {:.1} m)",
                d.aspl, d.cable_total_m
            ),
            Some(d) => {
                let by: Vec<&str> = group
                    .iter()
                    .filter(|r| {
                        r.on_frontier && r.aspl <= d.aspl && r.cable_total_m <= d.cable_total_m
                    })
                    .map(|r| r.topology.as_str())
                    .collect();
                println!("# n={n}: DSN is dominated (by {})", by.join(", "));
            }
            None => {}
        }
    }

    // CI smoke contract: a frontier must exist and DSN must be swept.
    assert!(
        report.rows.iter().any(|r| r.on_frontier),
        "empty Pareto frontier"
    );
    for &n in &report.sizes {
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.n == n && r.topology.starts_with("DSN-")),
            "missing DSN baseline row at n={n}"
        );
    }

    if json {
        let path = "BENCH_opt.json";
        std::fs::write(path, report.to_json()).expect("write JSON report");
        println!("\n# wrote {path}");
    }
}
