//! Switching-mode ablation: virtual cut-through (the paper's choice) versus
//! wormhole, across buffer sizes. VCT decouples routers (a blocked packet
//! fits entirely in one buffer) at the cost of one-packet buffers; wormhole
//! gets away with tiny buffers but lets blocked packets straddle routers,
//! so it saturates earlier — this quantifies why the paper picked VCT.
//!
//! Run: `cargo run --release -p dsn-bench --bin switching_ablation \
//!       [--quick] [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn]`

use dsn_bench::{take_engine_arg, take_routing_tables_arg, take_workers_arg};
use dsn_core::dsn::Dsn;
use dsn_core::parallel::Parallelism;
use dsn_sim::sweep::find_saturation_cached;
use dsn_sim::{AdaptiveEscape, RoutingCache, SimConfig, Simulator, Switching, TrafficPattern};
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let routing_tables = take_routing_tables_arg(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let dsn = Dsn::new(64, 5).expect("dsn");
    let graph = Arc::new(dsn.into_graph());
    let mut base = SimConfig {
        engine,
        workers,
        routing_tables,
        ..SimConfig::default()
    };
    if quick {
        base.warmup_cycles = 3_000;
        base.measure_cycles = 8_000;
        base.drain_cycles = 8_000;
    } else {
        base.warmup_cycles = 8_000;
        base.measure_cycles = 20_000;
        base.drain_cycles = 20_000;
    }
    let tol = if quick { 2.0 } else { 1.0 };

    // Routing is independent of the switching mode and buffer size, so one
    // cached build serves all six cases (and every probe inside each
    // saturation search).
    let cache = Arc::new(RoutingCache::new());
    let key = AdaptiveEscape::key_for(base.vcs);

    println!("Switching ablation on DSN-5-64, uniform traffic, adaptive + escape routing");
    println!("# engine: {}", base.engine.name());
    println!(
        "  {:<22} {:>12} {:>14} {:>12}",
        "mode", "buffer[flit]", "low-load [ns]", "sat [Gbps]"
    );
    let cases = [
        (Switching::VirtualCutThrough, 40usize),
        (Switching::VirtualCutThrough, 66),
        (Switching::Wormhole, 4),
        (Switching::Wormhole, 8),
        (Switching::Wormhole, 16),
        (Switching::Wormhole, 40),
    ];
    for (mode, buffer) in cases {
        let cfg = SimConfig {
            switching: mode,
            buffer_flits: buffer,
            ..base.clone()
        };
        let vcs = cfg.vcs;
        let g2 = graph.clone();
        let routing =
            cache.get_or_build(&graph, &key, move || Arc::new(AdaptiveEscape::new(g2, vcs)));
        let rate = cfg.packets_per_cycle_for_gbps(1.0);
        let low = Simulator::new(
            graph.clone(),
            cfg.clone(),
            routing,
            TrafficPattern::Uniform,
            rate,
            0x5317,
        )
        .run();
        let g2 = graph.clone();
        let sat = find_saturation_cached(
            graph.clone(),
            &cfg,
            &cache,
            &key,
            move || Arc::new(AdaptiveEscape::new(g2, vcs)),
            &TrafficPattern::Uniform,
            2.0,
            40.0,
            tol,
            0x5317,
            &Parallelism::auto(),
        );
        let name = match mode {
            Switching::VirtualCutThrough => "virtual cut-through",
            Switching::Wormhole => "wormhole",
        };
        println!(
            "  {:<22} {:>12} {:>14.0} {:>12.1}",
            name, buffer, low.avg_latency_ns, sat
        );
    }
    println!(
        "# routing cache: {} build(s), {} hit(s)",
        cache.misses(),
        cache.hits()
    );
}
