//! Regenerates **Figure 9**: average cable length (m) vs network size under
//! the machine-room cabinet layout (16 switches/cabinet, 0.6 m x 2.1 m
//! cabinets, Manhattan routing, 2 m intra-cabinet cables, 2 m inter-cabinet
//! overhead), plus the in-text claim T2 ("DSN reduces average cable length
//! vs RANDOM by up to 38% and is near the same-degree torus") and the
//! 3-D-torus comparison from Section VI.B.
//!
//! Run: `cargo run --release -p dsn-bench --bin fig9_cable`

use dsn_bench::{block_header, paper_sizes, trio, RANDOM_SEED};
use dsn_core::topology::TopologySpec;
use dsn_layout::{cable_stats, CableModel, LinearPlacement};

fn avg_cable(spec: &TopologySpec) -> f64 {
    let built = spec.build().expect("topology");
    let n = built.graph.node_count();
    let model = CableModel::default();
    let placement = LinearPlacement::new(n, model.switches_per_cabinet);
    cable_stats(&built.graph, &placement, &model).avg_m
}

fn main() {
    println!("Figure 9: average cable length vs network size (lower is better)");
    print!(
        "{}",
        block_header(
            "columns: log2(N)  torus  random  dsn  dsn-vs-random-reduction",
            &["log2N", "torus[m]", "random[m]", "dsn[m]", "reduc%"]
        )
    );
    let mut best_reduction = 0.0f64;
    for n in paper_sizes() {
        let [dsn, torus, random] = trio(n);
        let c_dsn = avg_cable(&dsn);
        let c_torus = avg_cable(&torus);
        let c_rand = avg_cable(&random);
        let reduction = 100.0 * (c_rand - c_dsn) / c_rand;
        best_reduction = best_reduction.max(reduction);
        println!(
            "  {:>12} {:>12.2} {:>12.2} {:>12.2} {:>11.1}%",
            (n as f64).log2() as u32,
            c_torus,
            c_rand,
            c_dsn,
            reduction
        );
    }
    println!();
    println!(
        "T2: DSN reduces average cable length vs RANDOM by up to {best_reduction:.0}% \
         (paper: up to 38%), while staying near the same-degree torus."
    );

    // Section VI.B side note: degree-6 DSN vs 3-D torus.
    println!();
    println!("Section VI.B extra: degree-6 comparison (DSN-E vs 3-D torus)");
    for n in [512usize, 2048] {
        let dsn_e = avg_cable(&TopologySpec::DsnE { n });
        let t3 = avg_cable(&TopologySpec::Torus3D { n });
        let rnd6 = avg_cable(&TopologySpec::RandomRegular {
            n,
            d: 6,
            seed: RANDOM_SEED,
        });
        println!(
            "  N={n}: DSN-E {:.2} m vs 3-D torus {:.2} m vs 6-regular random {:.2} m",
            dsn_e, t3, rnd6
        );
    }
}
