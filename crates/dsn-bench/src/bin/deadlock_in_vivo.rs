//! Dynamic deadlock demonstration: run the *unsafe* single-VC basic DSN
//! routing (whose channel dependency graph is provably cyclic — the
//! Section V.A motivation) and the DSN-V 4-VC discipline (provably
//! acyclic — Theorem 3) side by side under increasing load, and watch the
//! simulator's stall watchdog catch the real deadlock exactly where the
//! static analysis predicts it.
//!
//! Run: `cargo run --release -p dsn-bench --bin deadlock_in_vivo \
//!       [--engine dense|event|sharded] [--workers N] [--telemetry[=WINDOW]]`
//!
//! `--telemetry[=WINDOW]` adds a per-run allocation-conflict count and, for
//! runs the watchdog flags as deadlocked, the full telemetry view (latency
//! decomposition and heatmap — the wedged VCs show up as stalled hotspot
//! links) with `telemetry_deadlock_<load>_<routing>.{json,csv}` exports.

use dsn_bench::{emit_telemetry, take_engine_arg, take_telemetry_arg, take_workers_arg};
use dsn_core::dsn::Dsn;
use dsn_sim::{SimConfig, Simulator, SourceRouted, TrafficPattern};
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let telemetry = take_telemetry_arg(&mut args);
    let dsn = Arc::new(Dsn::new(60, 5).expect("dsn")); // p | n: clean instance
    let graph = Arc::new(dsn.graph().clone());
    let cfg = SimConfig {
        engine,
        workers,
        warmup_cycles: 2_000,
        measure_cycles: 20_000,
        drain_cycles: 20_000,
        ..SimConfig::default()
    };

    // Source-routed path tables are load-independent: build each variant
    // once and share the Arc across every load point instead of recomputing
    // all-pairs shortest paths per run.
    let safe_routing: Arc<dyn dsn_sim::SimRouting> =
        Arc::new(SourceRouted::dsn_custom(dsn.clone()));
    let unsafe_routing: Arc<dyn dsn_sim::SimRouting> =
        Arc::new(SourceRouted::dsn_basic_single_vc(dsn.clone()));

    println!("Dynamic deadlock check on DSN-5-60 (60 switches, complete super nodes)");
    println!("# engine: {}", cfg.engine.name());
    println!(
        "  {:>7} {:<22} {:>10} {:>14} {:>10}",
        "load", "routing", "delivered", "longest stall", "deadlock?"
    );
    for gbps in [1.0f64, 4.0, 8.0] {
        let rate = cfg.packets_per_cycle_for_gbps(gbps);
        for unsafe_mode in [false, true] {
            let routing = if unsafe_mode {
                unsafe_routing.clone()
            } else {
                safe_routing.clone()
            };
            let name = if unsafe_mode {
                "basic 1-VC (cyclic CDG)"
            } else {
                "DSN-V 4-VC (acyclic)"
            };
            let mut sim = Simulator::new(
                graph.clone(),
                cfg.clone(),
                routing,
                TrafficPattern::Uniform,
                rate,
                0xDEAD,
            );
            if let Some(window) = telemetry {
                sim = sim.with_telemetry(cfg.standard_telemetry(window));
            }
            let (stats, report) = sim.run_with_telemetry();
            println!(
                "  {:>6.1}G {:<22} {:>9.3} {:>14} {:>10}",
                gbps,
                name,
                stats.delivery_ratio(),
                stats.longest_stall_cycles,
                if stats.deadlock_suspected {
                    "YES"
                } else {
                    "no"
                }
            );
            if let Some(report) = report {
                println!(
                    "          telemetry: {} alloc conflicts, {} flits sent",
                    report.alloc_conflicts_total, report.flits_sent_total
                );
                // Full view only for wedged runs: the heatmap shows where
                // traffic froze.
                if stats.deadlock_suspected {
                    let tag = format!(
                        "deadlock_{}G_{}",
                        gbps as u64,
                        if unsafe_mode { "basic1vc" } else { "dsnv" }
                    );
                    emit_telemetry(&tag, &report);
                }
            }
        }
    }
    println!();
    println!(
        "The static CDG analysis (theory_validation) predicts exactly this:\n\
         the single-VC basic routing has a dependency cycle and wedges under\n\
         load, while DSN-V's phase/dateline VC discipline never stalls."
    );
}
