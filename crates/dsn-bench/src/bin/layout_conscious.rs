//! Layout-conscious random topologies (paper ref. \[11\], HPCA 2013) vs
//! DSN: sweep the cable-length cap of a constrained-random DLN-2-2 and plot
//! the (average cable length, ASPL) frontier next to the DSN and
//! unconstrained-RANDOM design points. The paper argues that in low-radix
//! networks, capping random-link length costs significant hop count —
//! while DSN gets short cables *and* low ASPL by constructing the long
//! links deterministically.
//!
//! Run: `cargo run --release -p dsn-bench --bin layout_conscious [n]`

use dsn_bench::RANDOM_SEED;
use dsn_core::dln::{DlnRandom, DlnRandomCapped};
use dsn_core::dsn::Dsn;
use dsn_layout::{cable_stats, CableModel, LinearPlacement};
use dsn_metrics::path_stats;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let p = dsn_core::util::ceil_log2(n);
    let model = CableModel::default();
    let placement = LinearPlacement::new(n, model.switches_per_cabinet);

    println!("Layout-conscious random topologies vs DSN at N = {n}");
    println!(
        "  {:<28} {:>9} {:>7} {:>7}",
        "topology", "cable[m]", "aspl", "diam"
    );

    let report = |name: String, g: &dsn_core::Graph| {
        let cable = cable_stats(g, &placement, &model).avg_m;
        let s = path_stats(g);
        println!(
            "  {:<28} {:>9.2} {:>7.3} {:>7}",
            name, cable, s.aspl, s.diameter
        );
    };

    let dsn = Dsn::new(n, p - 1).expect("dsn");
    report(format!("DSN-{}-{n}", p - 1), dsn.graph());

    let unconstrained = DlnRandom::new(n, 2, 2, RANDOM_SEED).expect("random");
    report("DLN-2-2 (unconstrained)".into(), unconstrained.graph());

    for cap in [n / 64, n / 16, n / 8, n / 4, n / 2] {
        let capped = DlnRandomCapped::new(n, 2, 2, cap.max(2), RANDOM_SEED).expect("capped");
        report(format!("DLN-2-2 cap={cap}"), capped.graph());
    }

    println!(
        "\nReading: tight caps give torus-like cable bills but ring-like path\n\
         lengths, and loose caps recover RANDOM's hops only at RANDOM's cable\n\
         cost. A well-tuned cap (~n/8) lands on DSN's design point — which is\n\
         exactly the Kleinberg-style length distribution DSN engineers\n\
         deterministically, keeping in addition its O(log n) routing logic and\n\
         proven diameter/deadlock guarantees that a random instance cannot offer."
    );
}
