//! Collective-communication completion time — the workload class that
//! makes HPC applications latency-sensitive (the paper's opening
//! motivation). A closed batch (all-to-all, or stencil-style ring shifts)
//! is injected at cycle 0 and we measure the *makespan* (cycle of the last
//! delivery) on DSN, torus and RANDOM, at 64 switches x 4 hosts with the
//! paper's router parameters.
//!
//! Run: `cargo run --release -p dsn-bench --bin collective_exchange`

use dsn_bench::trio;
use dsn_sim::{AdaptiveEscape, SimConfig, Simulator, Workload};
use std::sync::Arc;

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 10_000,
        drain_cycles: 3_000_000, // horizon; batches end much earlier
        ..SimConfig::default()
    };
    let hosts = 64 * cfg.hosts_per_switch;

    println!(
        "Collective exchange makespan, 64 switches x {} hosts (lower is better)",
        cfg.hosts_per_switch
    );
    println!(
        "  {:<14} {:>16} {:>16} {:>16}",
        "topology", "all-to-all [us]", "shift+1 x32 [us]", "shift+n/2 x32 [us]"
    );
    let workloads = [
        Workload::all_to_all(hosts),
        Workload::ring_shift(hosts, 1, 32),
        Workload::ring_shift(hosts, hosts / 2, 32),
    ];
    for spec in trio(64) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let mut row = format!("  {:<14}", built.name);
        for w in &workloads {
            let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
            let stats =
                Simulator::with_workload(graph.clone(), cfg.clone(), routing, w.clone(), 0xC0_11)
                    .run();
            match stats.completion_cycle {
                Some(c) => row.push_str(&format!("{:>17.1}", c as f64 * cfg.cycle_ns / 1000.0)),
                None => row.push_str(&format!("{:>17}", "DNF")),
            }
        }
        println!("{row}");
    }
    println!(
        "\n(batch enqueued at cycle 0; makespan = last tail-flit delivery; DNF = horizon hit)"
    );
}
