//! Collective-communication completion time — the workload class that
//! makes HPC applications latency-sensitive (the paper's opening
//! motivation). A closed batch (all-to-all, or stencil-style ring shifts)
//! is injected at cycle 0 and we measure the *makespan* (cycle of the last
//! delivery) on DSN, torus and RANDOM, at 64 switches x 4 hosts with the
//! paper's router parameters.
//!
//! Run: `cargo run --release -p dsn-bench --bin collective_exchange \
//!       [--engine dense|event|sharded] [--workers N] \
//!       [--routing-tables flat|dyn] [--telemetry[=WINDOW]]`
//!
//! `--telemetry[=WINDOW]` instruments the all-to-all run on DSN; exports
//! go to `telemetry_collective_dsn.{json,csv}`.

use dsn_bench::{
    emit_telemetry, take_engine_arg, take_routing_tables_arg, take_telemetry_arg, take_workers_arg,
    trio,
};
use dsn_sim::{AdaptiveEscape, RoutingCache, SimConfig, Simulator, TelemetryConfig, Workload};
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }
    let cfg = SimConfig {
        engine,
        workers,
        routing_tables: take_routing_tables_arg(&mut args),
        warmup_cycles: 0,
        measure_cycles: 10_000,
        drain_cycles: 3_000_000, // horizon; batches end much earlier
        ..SimConfig::default()
    };
    let telemetry = take_telemetry_arg(&mut args);
    let hosts = 64 * cfg.hosts_per_switch;

    println!(
        "Collective exchange makespan, 64 switches x {} hosts (lower is better)",
        cfg.hosts_per_switch
    );
    println!("# engine: {}", cfg.engine.name());
    println!(
        "  {:<14} {:>16} {:>16} {:>16}",
        "topology", "all-to-all [us]", "shift+1 x32 [us]", "shift+n/2 x32 [us]"
    );
    let workloads = [
        Workload::all_to_all(hosts),
        Workload::ring_shift(hosts, 1, 32),
        Workload::ring_shift(hosts, hosts / 2, 32),
    ];
    // One cache across every workload of a topology: the adaptive tables
    // are built once per graph instead of once per (topology, workload).
    let cache = Arc::new(RoutingCache::new());
    for spec in trio(64) {
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let mut row = format!("  {:<14}", built.name);
        for w in &workloads {
            let routing = cache.get_or_build(&graph, &AdaptiveEscape::key_for(cfg.vcs), || {
                Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs))
            });
            let stats =
                Simulator::with_workload(graph.clone(), cfg.clone(), routing, w.clone(), 0xC0_11)
                    .with_routing_cache(cache.clone())
                    .run();
            match stats.completion_cycle {
                Some(c) => row.push_str(&format!("{:>17.1}", c as f64 * cfg.cycle_ns / 1000.0)),
                None => row.push_str(&format!("{:>17}", "DNF")),
            }
        }
        println!("{row}");
    }
    println!(
        "\n(batch enqueued at cycle 0; makespan = last tail-flit delivery; DNF = horizon hit)"
    );

    if let Some(window) = telemetry {
        let spec = &trio(64)[0];
        let built = spec.build().expect("topology");
        let graph = Arc::new(built.graph);
        let routing = cache.get_or_build(&graph, &AdaptiveEscape::key_for(cfg.vcs), || {
            Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs))
        });
        let (stats, tel) = Simulator::with_workload(
            graph,
            cfg.clone(),
            routing,
            Workload::all_to_all(hosts),
            0xC0_11,
        )
        .with_telemetry(TelemetryConfig::windowed(window))
        .with_routing_cache(cache)
        .run_with_telemetry();
        emit_telemetry("collective_dsn", &tel.expect("telemetry enabled"));
        println!(
            "# RunStats cross-check: makespan {:?}, delivered {}",
            stats.completion_cycle, stats.delivered_packets
        );
    }
}
