//! Shared core of the `opt_frontier` binary: the shortcut-placement
//! Pareto study. Sweeps the paper's DSN against DLN/random-regular/
//! Kleinberg baselines and `dsn-opt`'s searched placements under DSN's
//! own cable budget, scoring every candidate on ASPL, total cable, and
//! (for finalists) saturation load, then marks the Pareto frontier. The
//! JSON schema is pinned by a golden-file test (`tests/opt_schema.rs`).

use dsn_core::topology::TopologySpec;
use dsn_core::{Graph, Parallelism};
use dsn_opt::{anneal_shortcuts, evolve, Candidate, EsConfig, Objective, SaConfig, SatProbe};
use dsn_sim::{RoutingCache, SimConfig, TrafficPattern};
use std::sync::Arc;
use std::time::Instant;

use crate::RANDOM_SEED;

/// Schema tag written into the JSON report; bump on breaking changes.
pub const SCHEMA: &str = "dsn-bench/opt/v1";

/// Seed for every seeded construction and search in the frontier study.
pub const OPT_SEED: u64 = 0x0D50_2013;

/// One candidate topology scored for the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct OptRow {
    /// Topology display name.
    pub topology: String,
    /// Row class: `baseline`, `opt-sa`, or `opt-es`.
    pub family: &'static str,
    /// Switch count.
    pub n: usize,
    /// Exact average shortest path length (hops).
    pub aspl: f64,
    /// Exact diameter (hops).
    pub diameter: u32,
    /// Total cable (meters) on the linear placement.
    pub cable_total_m: f64,
    /// Cable budget charged to this size group (DSN's own bill).
    pub budget_m: f64,
    /// Whether the row respects the budget.
    pub within_budget: bool,
    /// Saturation load (Gbps per host) under uniform traffic, when
    /// probed (`None` in quick runs without `--sat`).
    pub sat_gbps: Option<f64>,
    /// Stable topology fingerprint (same wiring ⇒ same value).
    pub fingerprint: u64,
    /// Wall-clock seconds spent producing the row (build + search +
    /// scoring). Zeroed by the golden schema test.
    pub wall_s: f64,
    /// True when no other row of the same size dominates this one.
    pub on_frontier: bool,
}

/// The full report.
#[derive(Debug, Clone, PartialEq)]
pub struct OptReport {
    /// Switch counts swept.
    pub sizes: Vec<usize>,
    /// Whether saturation was probed.
    pub sat: bool,
    /// Rows in sweep order.
    pub rows: Vec<OptRow>,
}

/// Knobs of one frontier sweep.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// Switch counts to sweep.
    pub sizes: Vec<usize>,
    /// Short searches and horizons (CI smoke).
    pub quick: bool,
    /// Probe saturation load on every row.
    pub sat: bool,
    /// Parallelism policy for APSP and the saturation sweep.
    pub par: Parallelism,
}

impl FrontierConfig {
    /// Search/probe budgets: (SA iterations, ES generations).
    fn search_budget(&self) -> (usize, usize) {
        if self.quick {
            (120, 6)
        } else {
            (1_500, 60)
        }
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::default();
        if self.quick {
            cfg.warmup_cycles = 3_000;
            cfg.measure_cycles = 8_000;
            cfg.drain_cycles = 8_000;
        } else {
            cfg.warmup_cycles = 8_000;
            cfg.measure_cycles = 20_000;
            cfg.drain_cycles = 20_000;
        }
        cfg
    }
}

/// The two searched placements (Opt-SA, Opt-ES) at size `n`, run under
/// DSN's own cable budget from the DSN start point with the frontier
/// study's seeds and budgets — exposed so the Fig. 10 latency-vs-load
/// sweep can score them alongside the paper trio
/// (`fig10_simulation --opt`).
pub fn searched_placements(n: usize, quick: bool, par: Parallelism) -> Vec<(String, Graph)> {
    let dsn_start = Candidate::from_dsn(n).expect("DSN start point");
    let budget_m = Objective::aspl_only(par).score(dsn_start.graph()).cable_m;
    let obj = Objective::aspl_under_budget(budget_m, par);
    let (sa_iters, es_gens) = if quick { (120, 6) } else { (1_500, 60) };
    let sa = anneal_shortcuts(
        &dsn_start,
        &obj,
        &SaConfig {
            iterations: sa_iters,
            seed: OPT_SEED,
            ..SaConfig::default()
        },
    );
    let es = evolve(
        &dsn_start,
        &obj,
        &EsConfig {
            generations: es_gens,
            seed: OPT_SEED,
            ..EsConfig::default()
        },
    );
    vec![
        (format!("Opt-SA-{n}"), sa.best.into_graph()),
        (format!("Opt-ES-{n}"), es.best.into_graph()),
    ]
}

/// Run the sweep: baselines + searched placements at every size, scored
/// and frontier-marked.
pub fn run_frontier(cfg: &FrontierConfig) -> OptReport {
    let cache = Arc::new(RoutingCache::new());
    let probe = SatProbe {
        cfg: cfg.sim_config(),
        cache,
        pattern: TrafficPattern::Uniform,
        lo: 2.0,
        hi: 40.0,
        tol: if cfg.quick { 2.0 } else { 1.0 },
        seed: 0x5A7,
    };
    let (sa_iters, es_gens) = cfg.search_budget();
    let mut rows = Vec::new();

    for &n in &cfg.sizes {
        // The budget every contender is held to: DSN's own cable bill.
        let dsn_start = Candidate::from_dsn(n).expect("DSN start point");
        let free = Objective::aspl_only(cfg.par);
        let budget_m = free.score(dsn_start.graph()).cable_m;
        let obj = Objective::aspl_under_budget(budget_m, cfg.par);

        // Baselines.
        let p = dsn_core::util::ceil_log2(n.max(2));
        let mut specs: Vec<TopologySpec> = vec![
            TopologySpec::Dsn { n, x: p - 1 },
            TopologySpec::DlnRandom {
                n,
                x: 2,
                y: 2,
                seed: RANDOM_SEED,
            },
            TopologySpec::RandomRegular {
                n,
                d: 4,
                seed: RANDOM_SEED,
            },
        ];
        let side = (n as f64).sqrt() as usize;
        if side * side == n {
            specs.push(TopologySpec::Kleinberg {
                side,
                q: 1,
                seed: RANDOM_SEED,
            });
        }
        for spec in specs {
            let t0 = Instant::now();
            let built = spec.build().expect("baseline topology");
            rows.push(score_row(
                built.name,
                "baseline",
                n,
                built.graph,
                budget_m,
                &obj,
                cfg.sat.then_some(&probe),
                &cfg.par,
                t0,
            ));
        }
        // Ring-Kleinberg works at any n (1020 is not a square grid).
        let t0 = Instant::now();
        let kr = Candidate::kleinberg_ring(n, 1, 1.0, OPT_SEED).expect("ring Kleinberg");
        rows.push(score_row(
            format!("KleinbergRing-a1-{n}"),
            "baseline",
            n,
            kr.into_graph(),
            budget_m,
            &obj,
            cfg.sat.then_some(&probe),
            &cfg.par,
            t0,
        ));

        // Searched placements under the budget, from the DSN start.
        let t0 = Instant::now();
        let sa = anneal_shortcuts(
            &dsn_start,
            &obj,
            &SaConfig {
                iterations: sa_iters,
                seed: OPT_SEED,
                ..SaConfig::default()
            },
        );
        rows.push(score_row(
            format!("Opt-SA-{n}"),
            "opt-sa",
            n,
            sa.best.into_graph(),
            budget_m,
            &obj,
            cfg.sat.then_some(&probe),
            &cfg.par,
            t0,
        ));
        let t0 = Instant::now();
        let es = evolve(
            &dsn_start,
            &obj,
            &EsConfig {
                generations: es_gens,
                seed: OPT_SEED,
                ..EsConfig::default()
            },
        );
        rows.push(score_row(
            format!("Opt-ES-{n}"),
            "opt-es",
            n,
            es.best.into_graph(),
            budget_m,
            &obj,
            cfg.sat.then_some(&probe),
            &cfg.par,
            t0,
        ));
    }

    mark_frontier(&mut rows);
    OptReport {
        sizes: cfg.sizes.clone(),
        sat: cfg.sat,
        rows,
    }
}

#[allow(clippy::too_many_arguments)]
fn score_row(
    topology: String,
    family: &'static str,
    n: usize,
    graph: Graph,
    budget_m: f64,
    obj: &Objective,
    probe: Option<&SatProbe>,
    par: &Parallelism,
    t0: Instant,
) -> OptRow {
    let cand = Candidate::new(graph);
    let score = obj.score(cand.graph());
    let fingerprint = cand.fingerprint();
    let sat_gbps = probe.map(|p| p.saturation(Arc::new(cand.into_graph()), par));
    OptRow {
        topology,
        family,
        n,
        aspl: score.aspl,
        diameter: score.diameter,
        cable_total_m: score.cable_m,
        budget_m,
        within_budget: score.within_budget,
        sat_gbps,
        fingerprint,
        wall_s: t0.elapsed().as_secs_f64(),
        on_frontier: false,
    }
}

/// `a` dominates `b` when it is no worse on every axis (ASPL ↓, cable ↓,
/// saturation ↑ where both are probed) and strictly better on at least
/// one. Rows of different sizes never compare.
fn dominates(a: &OptRow, b: &OptRow) -> bool {
    if a.n != b.n {
        return false;
    }
    let mut strict = false;
    if a.aspl > b.aspl {
        return false;
    }
    strict |= a.aspl < b.aspl;
    if a.cable_total_m > b.cable_total_m {
        return false;
    }
    strict |= a.cable_total_m < b.cable_total_m;
    if let (Some(sa), Some(sb)) = (a.sat_gbps, b.sat_gbps) {
        if sa < sb {
            return false;
        }
        strict |= sa > sb;
    }
    strict
}

/// Mark every row that no same-size row dominates.
pub fn mark_frontier(rows: &mut [OptRow]) {
    for i in 0..rows.len() {
        let dominated = rows
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(other, &rows[i]));
        rows[i].on_frontier = !dominated;
    }
}

impl OptReport {
    /// Serialize with a fixed key order and fixed float formatting — the
    /// golden-file test compares this string byte for byte.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"sizes\": [{}],\n",
            self.sizes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"sat\": {},\n", self.sat));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sat = match r.sat_gbps {
                Some(v) => format!("{v:.2}"),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"topology\": \"{}\", \"family\": \"{}\", \"n\": {}, \
                 \"aspl\": {:.4}, \"diameter\": {}, \"cable_total_m\": {:.1}, \
                 \"budget_m\": {:.1}, \"within_budget\": {}, \"sat_gbps\": {}, \
                 \"fingerprint\": \"{:#018x}\", \"wall_s\": {:.3}, \
                 \"on_frontier\": {}}}{}\n",
                r.topology,
                r.family,
                r.n,
                r.aspl,
                r.diameter,
                r.cable_total_m,
                r.budget_m,
                r.within_budget,
                sat,
                r.fingerprint,
                r.wall_s,
                r.on_frontier,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: usize, aspl: f64, cable: f64, sat: Option<f64>) -> OptRow {
        OptRow {
            topology: "t".into(),
            family: "baseline",
            n,
            aspl,
            diameter: 0,
            cable_total_m: cable,
            budget_m: 100.0,
            within_budget: true,
            sat_gbps: sat,
            fingerprint: 0,
            wall_s: 0.0,
            on_frontier: false,
        }
    }

    #[test]
    fn frontier_marks_non_dominated() {
        let mut rows = vec![
            row(64, 3.0, 100.0, None), // dominated by the next row
            row(64, 2.5, 90.0, None),
            row(64, 2.0, 120.0, None), // better ASPL, worse cable: on frontier
            row(256, 9.0, 500.0, None), // different size: incomparable
        ];
        mark_frontier(&mut rows);
        assert!(!rows[0].on_frontier);
        assert!(rows[1].on_frontier);
        assert!(rows[2].on_frontier);
        assert!(rows[3].on_frontier);
    }

    #[test]
    fn saturation_axis_breaks_ties() {
        let mut rows = vec![
            row(64, 2.0, 100.0, Some(10.0)),
            row(64, 2.0, 100.0, Some(14.0)),
        ];
        mark_frontier(&mut rows);
        assert!(!rows[0].on_frontier, "lower saturation is dominated");
        assert!(rows[1].on_frontier);
    }

    #[test]
    fn quick_frontier_has_dsn_and_nonempty() {
        let report = run_frontier(&FrontierConfig {
            sizes: vec![32],
            quick: true,
            sat: false,
            par: Parallelism::serial(),
        });
        assert!(report.rows.iter().any(|r| r.topology.starts_with("DSN-")));
        assert!(report.rows.iter().any(|r| r.on_frontier));
        assert!(report
            .rows
            .iter()
            .filter(|r| r.family != "baseline")
            .all(|r| r.within_budget));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dsn-bench/opt/v1\""));
    }
}
