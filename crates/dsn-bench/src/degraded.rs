//! Shared core of the `degraded_performance` binary: one `SimConfig`
//! builder reused across every trial, the static (pre-removed links) and
//! dynamic (mid-run [`FaultPlan`]) measurement loops, and a hand-rolled
//! JSON serializer whose schema is pinned by a golden-file test
//! (`tests/degraded_schema.rs`).

use dsn_core::topology::TopologySpec;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultPlan, RetryPolicy, RoutingCache, RunStats, SimConfig,
    Simulator, TelemetryConfig, TelemetryReport, TrafficPattern,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Schema tag written into the JSON report; bump on breaking changes.
pub const SCHEMA: &str = "dsn-bench/degraded/v1";

/// Seed for link selection (static removal and dynamic schedules alike).
pub const FAULT_SEED: u64 = 0xFA11;

/// How links are lost during a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Links removed from the graph before the run (`Graph::without_edges`),
    /// routing built directly on the survivor — the paper's Section V view.
    Static,
    /// Links die mid-run via a seeded connectivity-preserving
    /// [`FaultPlan`]; the simulator reroutes online and hosts retry drops.
    Dynamic,
}

impl DegradedMode {
    /// Stable display name (`static` | `dynamic`).
    pub fn name(&self) -> &'static str {
        match self {
            DegradedMode::Static => "static",
            DegradedMode::Dynamic => "dynamic",
        }
    }
}

/// The one `SimConfig` built from CLI flags and reused for every trial.
pub fn base_config(engine: EngineKind, quick: bool) -> SimConfig {
    let mut cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    if quick {
        cfg.warmup_cycles = 3_000;
        cfg.measure_cycles = 8_000;
        cfg.drain_cycles = 8_000;
    } else {
        cfg.warmup_cycles = 8_000;
        cfg.measure_cycles = 20_000;
        cfg.drain_cycles = 20_000;
    }
    cfg
}

/// One measured cell of the degraded-performance table.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRow {
    /// Topology display name.
    pub topology: String,
    /// Links removed (static) or scheduled to die (dynamic).
    pub dead_links: usize,
    /// Static removal disconnected the graph; no run was attempted.
    pub split: bool,
    /// Delivery ratio fell below 0.95 — the latency figure is meaningless.
    pub saturated: bool,
    /// Mean end-to-end latency in nanoseconds.
    pub avg_latency_ns: f64,
    /// Fraction of measured packets delivered.
    pub delivery_ratio: f64,
    /// Fault-dropped packets over the whole run (dynamic mode only).
    pub dropped: u64,
    /// Host retransmissions after drops (dynamic mode only).
    pub retried: u64,
    /// Packets rescued in place from a dying channel (dynamic mode only).
    pub salvaged: u64,
    /// Drops whose retry budget ran out (dynamic mode only).
    pub abandoned: u64,
    /// Measured packets created after the first fault and delivered.
    pub post_fault_delivered: u64,
    /// Mean latency (cycles) of the post-fault population.
    pub post_fault_avg_latency_cycles: f64,
    /// p99 latency (cycles) of the post-fault population.
    pub post_fault_p99_latency_cycles: u64,
}

impl DegradedRow {
    fn from_stats(topology: &str, dead_links: usize, stats: &RunStats) -> Self {
        DegradedRow {
            topology: topology.to_string(),
            dead_links,
            split: false,
            saturated: stats.delivery_ratio() <= 0.95,
            avg_latency_ns: stats.avg_latency_ns,
            delivery_ratio: stats.delivery_ratio(),
            dropped: stats.dropped_packets_all_time,
            retried: stats.retried_packets,
            salvaged: stats.salvaged_packets,
            abandoned: stats.abandoned_packets,
            post_fault_delivered: stats.post_fault_delivered,
            post_fault_avg_latency_cycles: stats.post_fault_avg_latency_cycles,
            post_fault_p99_latency_cycles: stats.post_fault_p99_latency_cycles,
        }
    }

    fn split(topology: &str, dead_links: usize) -> Self {
        DegradedRow {
            topology: topology.to_string(),
            dead_links,
            split: true,
            saturated: false,
            avg_latency_ns: 0.0,
            delivery_ratio: 0.0,
            dropped: 0,
            retried: 0,
            salvaged: 0,
            abandoned: 0,
            post_fault_delivered: 0,
            post_fault_avg_latency_cycles: 0.0,
            post_fault_p99_latency_cycles: 0,
        }
    }
}

/// The full report: one row per (topology, dead-link count) trial.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedReport {
    /// Engine used for every trial.
    pub engine: EngineKind,
    /// Offered load per host.
    pub gbps_per_host: f64,
    /// Static removal or dynamic mid-run faults.
    pub mode: DegradedMode,
    /// Measured cells in trial order.
    pub rows: Vec<DegradedRow>,
}

/// Static mode: remove `dead` random links up front, rebuild routing on the
/// survivor, run the standard open-loop measurement. `cfg` is built once by
/// the caller ([`base_config`]) and cloned per trial.
pub fn run_static(
    cfg: &SimConfig,
    specs: &[TopologySpec],
    dead_counts: &[usize],
    gbps: f64,
) -> DegradedReport {
    let mut rng = SmallRng::seed_from_u64(FAULT_SEED);
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let mut rows = Vec::new();
    for spec in specs {
        let built = spec.build().expect("topology");
        let mut ids: Vec<usize> = (0..built.graph.edge_count()).collect();
        ids.shuffle(&mut rng);
        for &dead in dead_counts {
            let g = built.graph.without_edges(&ids[..dead]);
            if !g.is_connected() {
                rows.push(DegradedRow::split(&built.name, dead));
                continue;
            }
            let g = Arc::new(g);
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            let stats = Simulator::new(
                g,
                cfg.clone(),
                routing,
                TrafficPattern::Uniform,
                rate,
                FAULT_SEED,
            )
            .run();
            rows.push(DegradedRow::from_stats(&built.name, dead, &stats));
        }
    }
    DegradedReport {
        engine: cfg.engine,
        gbps_per_host: gbps,
        mode: DegradedMode::Static,
        rows,
    }
}

/// Dynamic mode: the full topology starts healthy and `faults` seeded
/// links (chosen to keep the survivor connected) die one by one during the
/// measurement window; routing is rebuilt online and hosts retry drops.
pub fn run_dynamic(
    cfg: &SimConfig,
    specs: &[TopologySpec],
    faults: usize,
    gbps: f64,
) -> DegradedReport {
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let first_cycle = cfg.warmup_cycles + cfg.measure_cycles / 4;
    let spacing = (cfg.measure_cycles / (2 * faults.max(1) as u64)).max(1);
    // One cache across every trial: pristine tables are built once per
    // topology and mid-run fault rebuilds are memoized by survivor epoch,
    // all without changing a single RunStats bit (rebuilds are pure).
    let cache = Arc::new(RoutingCache::new());
    let mut rows = Vec::new();
    for spec in specs {
        let built = spec.build().expect("topology");
        let g = Arc::new(built.graph);
        let mut cfg = cfg.clone();
        cfg.fault_plan = FaultPlan::random_connected(&g, FAULT_SEED, faults, first_cycle, spacing)
            .with_retry(RetryPolicy::new(3, 500, 250));
        let scheduled = cfg.fault_plan.events.len();
        let routing = cache.get_or_build(&g, &AdaptiveEscape::key_for(cfg.vcs), || {
            Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs))
        });
        let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, FAULT_SEED)
            .with_routing_cache(cache.clone())
            .run();
        rows.push(DegradedRow::from_stats(&built.name, scheduled, &stats));
    }
    DegradedReport {
        engine: cfg.engine,
        gbps_per_host: gbps,
        mode: DegradedMode::Dynamic,
        rows,
    }
}

/// Dynamic-mode telemetry pass: rebuild the same seeded fault plan as
/// [`run_dynamic`] for one topology and run it instrumented, with
/// telemetry windows tagged by **pre-fault / post-fault** phase (the
/// boundary is [`FaultPlan::first_fault_cycle`]) so the post-fault latency
/// decomposition and the rerouted hotspot links are directly visible.
pub fn run_dynamic_telemetry(
    cfg: &SimConfig,
    spec: &TopologySpec,
    faults: usize,
    gbps: f64,
    window: u64,
) -> (RunStats, TelemetryReport) {
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let first_cycle = cfg.warmup_cycles + cfg.measure_cycles / 4;
    let spacing = (cfg.measure_cycles / (2 * faults.max(1) as u64)).max(1);
    let built = spec.build().expect("topology");
    let g = Arc::new(built.graph);
    let mut cfg = cfg.clone();
    cfg.fault_plan = FaultPlan::random_connected(&g, FAULT_SEED, faults, first_cycle, spacing)
        .with_retry(RetryPolicy::new(3, 500, 250));
    let fault_cycle = cfg.fault_plan.first_fault_cycle().unwrap_or(first_cycle);
    let tc = TelemetryConfig::windowed(window)
        .with_phases(&[(0, "pre-fault"), (fault_cycle, "post-fault")]);
    let cache = Arc::new(RoutingCache::new());
    let routing = cache.get_or_build(&g, &AdaptiveEscape::key_for(cfg.vcs), || {
        Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs))
    });
    let (stats, report) =
        Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, FAULT_SEED)
            .with_telemetry(tc)
            .with_routing_cache(cache)
            .run_with_telemetry();
    (stats, report.expect("telemetry enabled"))
}

impl DegradedReport {
    /// Serialize with a fixed key order and fixed float formatting — the
    /// golden-file test compares this string byte for byte.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"engine\": \"{}\",\n", self.engine.name()));
        s.push_str(&format!(
            "  \"gbps_per_host\": {:.3},\n",
            self.gbps_per_host
        ));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.name()));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"topology\": \"{}\", \"dead_links\": {}, \"split\": {}, \
                 \"saturated\": {}, \"avg_latency_ns\": {:.3}, \"delivery_ratio\": {:.4}, \
                 \"dropped\": {}, \"retried\": {}, \"salvaged\": {}, \"abandoned\": {}, \
                 \"post_fault_delivered\": {}, \"post_fault_avg_latency_cycles\": {:.3}, \
                 \"post_fault_p99_latency_cycles\": {}}}{}\n",
                r.topology,
                r.dead_links,
                r.split,
                r.saturated,
                r.avg_latency_ns,
                r.delivery_ratio,
                r.dropped,
                r.retried,
                r.salvaged,
                r.abandoned,
                r.post_fault_delivered,
                r.post_fault_avg_latency_cycles,
                r.post_fault_p99_latency_cycles,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}
