//! # dsn-bench — figure/table regenerators for the DSN reproduction
//!
//! One binary per figure of the paper's evaluation (see `src/bin/`):
//!
//! * `fig7_diameter` — diameter vs network size (Figure 7)
//! * `fig8_aspl` — average shortest path length vs network size (Figure 8)
//! * `fig9_cable` — average cable length vs network size (Figure 9)
//! * `fig10_simulation` — latency vs accepted traffic (Figure 10 a/b/c)
//! * `theory_validation` — Facts 1–3 and Theorems 1–2 measured vs bounds
//! * `ablation_extensions` — DSN-D-x / DSN-E / flexible-DSN ablations
//! * `related_work` — Section III diameter-and-degree table
//!
//! plus Criterion micro-benchmarks under `benches/`.

#![warn(missing_docs)]

pub mod degraded;

use dsn_core::topology::TopologySpec;

/// The network sizes of Figures 7–9: `log2 N = 5 .. 11`.
pub fn paper_sizes() -> Vec<usize> {
    (5..=11).map(|k| 1usize << k).collect()
}

/// Fixed seed for the RANDOM (DLN-2-2) baseline so every figure binary and
/// test sees the same instance.
pub const RANDOM_SEED: u64 = 0xD5B0_2013;

/// The paper's three degree-4 contenders at size `n`.
pub fn trio(n: usize) -> [TopologySpec; 3] {
    TopologySpec::paper_trio(n, RANDOM_SEED)
}

/// Format a gnuplot-style data block header.
pub fn block_header(title: &str, columns: &[&str]) -> String {
    let mut s = format!("# {title}\n#");
    for c in columns {
        s.push_str(&format!(" {c:>12}"));
    }
    s.push('\n');
    s
}

/// Extract `--engine dense|event` (or `--engine=...`) from `args`,
/// removing the consumed tokens. Defaults to the event engine; exits with
/// a usage message on an unknown value so every simulation binary rejects
/// typos the same way.
pub fn take_engine_arg(args: &mut Vec<String>) -> dsn_sim::EngineKind {
    let mut engine = dsn_sim::EngineKind::default();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--engine" && i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--engine=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = value {
            match dsn_sim::EngineKind::parse(&v) {
                Some(kind) => engine = kind,
                None => {
                    eprintln!("unknown engine `{v}` (expected dense | event)");
                    std::process::exit(2);
                }
            }
        }
    }
    engine
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
