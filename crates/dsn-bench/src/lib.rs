//! # dsn-bench — figure/table regenerators for the DSN reproduction
//!
//! One binary per figure of the paper's evaluation (see `src/bin/`):
//!
//! * `fig7_diameter` — diameter vs network size (Figure 7)
//! * `fig8_aspl` — average shortest path length vs network size (Figure 8)
//! * `fig9_cable` — average cable length vs network size (Figure 9)
//! * `fig10_simulation` — latency vs accepted traffic (Figure 10 a/b/c)
//! * `theory_validation` — Facts 1–3 and Theorems 1–2 measured vs bounds
//! * `ablation_extensions` — DSN-D-x / DSN-E / flexible-DSN ablations
//! * `related_work` — Section III diameter-and-degree table
//!
//! plus Criterion micro-benchmarks under `benches/`.

#![warn(missing_docs)]

use dsn_core::topology::TopologySpec;

/// The network sizes of Figures 7–9: `log2 N = 5 .. 11`.
pub fn paper_sizes() -> Vec<usize> {
    (5..=11).map(|k| 1usize << k).collect()
}

/// Fixed seed for the RANDOM (DLN-2-2) baseline so every figure binary and
/// test sees the same instance.
pub const RANDOM_SEED: u64 = 0xD5B0_2013;

/// The paper's three degree-4 contenders at size `n`.
pub fn trio(n: usize) -> [TopologySpec; 3] {
    TopologySpec::paper_trio(n, RANDOM_SEED)
}

/// Format a gnuplot-style data block header.
pub fn block_header(title: &str, columns: &[&str]) -> String {
    let mut s = format!("# {title}\n#");
    for c in columns {
        s.push_str(&format!(" {c:>12}"));
    }
    s.push('\n');
    s
}
