//! # dsn-bench — figure/table regenerators for the DSN reproduction
//!
//! One binary per figure of the paper's evaluation (see `src/bin/`):
//!
//! * `fig7_diameter` — diameter vs network size (Figure 7)
//! * `fig8_aspl` — average shortest path length vs network size (Figure 8)
//! * `fig9_cable` — average cable length vs network size (Figure 9)
//! * `fig10_simulation` — latency vs accepted traffic (Figure 10 a/b/c)
//! * `theory_validation` — Facts 1–3 and Theorems 1–2 measured vs bounds
//! * `ablation_extensions` — DSN-D-x / DSN-E / flexible-DSN ablations
//! * `related_work` — Section III diameter-and-degree table
//!
//! plus Criterion micro-benchmarks under `benches/`.

#![warn(missing_docs)]

pub mod degraded;
pub mod flows;
pub mod opt;

use dsn_core::topology::TopologySpec;

/// The network sizes of Figures 7–9: `log2 N = 5 .. 11`.
pub fn paper_sizes() -> Vec<usize> {
    (5..=11).map(|k| 1usize << k).collect()
}

/// Fixed seed for the RANDOM (DLN-2-2) baseline so every figure binary and
/// test sees the same instance.
pub const RANDOM_SEED: u64 = 0xD5B0_2013;

/// The paper's three degree-4 contenders at size `n`.
pub fn trio(n: usize) -> [TopologySpec; 3] {
    TopologySpec::paper_trio(n, RANDOM_SEED)
}

/// Format a gnuplot-style data block header.
pub fn block_header(title: &str, columns: &[&str]) -> String {
    let mut s = format!("# {title}\n#");
    for c in columns {
        s.push_str(&format!(" {c:>12}"));
    }
    s.push('\n');
    s
}

/// Extract the last `--NAME VALUE` / `--NAME=VALUE` occurrence from
/// `args`, removing every consumed token. A trailing `--NAME` with no
/// value following is an error (previously it was silently swallowed),
/// reported through the `usage` message and `exit(2)` like every other
/// malformed flag.
fn take_value_arg(args: &mut Vec<String>, name: &str, usage: &str) -> Option<String> {
    let flag = format!("--{name}");
    let eq_prefix = format!("--{name}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if i + 1 >= args.len() {
                eprintln!("{flag} needs a value (expected {usage})");
                std::process::exit(2);
            }
            value = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = args[i].strip_prefix(&eq_prefix) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    value
}

/// Extract `--engine dense|event|sharded` (or `--engine=...`) from `args`,
/// removing the consumed tokens. Defaults to the event engine; exits with
/// a usage message on an unknown or missing value so every simulation
/// binary rejects typos the same way.
pub fn take_engine_arg(args: &mut Vec<String>) -> dsn_sim::EngineKind {
    const USAGE: &str = "dense | event | sharded";
    match take_value_arg(args, "engine", USAGE) {
        None => dsn_sim::EngineKind::default(),
        Some(v) => dsn_sim::EngineKind::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown engine `{v}` (expected {USAGE})");
            std::process::exit(2);
        }),
    }
}

/// Extract `--routing-tables flat|dyn|algorithmic` (or
/// `--routing-tables=...`) from `args`, removing the consumed tokens.
/// Defaults to flat tables; exits with a usage message on an unknown or
/// missing value so every simulation binary rejects typos the same way.
pub fn take_routing_tables_arg(args: &mut Vec<String>) -> dsn_sim::RoutingTables {
    const USAGE: &str = "flat | dyn | algorithmic";
    match take_value_arg(args, "routing-tables", USAGE) {
        None => dsn_sim::RoutingTables::default(),
        Some(v) => dsn_sim::RoutingTables::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown routing tables `{v}` (expected {USAGE})");
            std::process::exit(2);
        }),
    }
}

/// Extract `--workers N` (or `--workers=N`) from `args`, removing the
/// consumed tokens. Returns the shard count for the sharded engine
/// (`0` = one shard per rayon worker), or `None` when the flag is absent.
/// Exits with a usage message on a malformed or missing value so every
/// simulation binary rejects typos the same way.
pub fn take_workers_arg(args: &mut Vec<String>) -> Option<usize> {
    const USAGE: &str = "a shard count (0 = one per rayon worker)";
    take_value_arg(args, "workers", USAGE).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--workers needs {USAGE}, got `{v}`");
            std::process::exit(2);
        })
    })
}

/// Window width (cycles) used when `--telemetry` is given with no value.
pub const DEFAULT_TELEMETRY_WINDOW: u64 = 1_000;

/// Extract `--telemetry` (default window) or `--telemetry=WINDOW` from
/// `args`, removing the consumed tokens. Returns the window width in
/// cycles, or `None` when the flag is absent (telemetry off — the
/// simulator hooks compile to no-ops). Exits with a usage message on a
/// malformed window so every simulation binary rejects typos the same way.
pub fn take_telemetry_arg(args: &mut Vec<String>) -> Option<u64> {
    let mut window = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry" {
            args.remove(i);
            window = Some(DEFAULT_TELEMETRY_WINDOW);
        } else if let Some(v) = args[i].strip_prefix("--telemetry=") {
            match v.parse::<u64>() {
                Ok(w) if w >= 1 => window = Some(w),
                _ => {
                    eprintln!("--telemetry needs a window of >= 1 cycles, got `{v}`");
                    std::process::exit(2);
                }
            }
            args.remove(i);
        } else {
            i += 1;
        }
    }
    window
}

/// Standard terminal + file rendering of a telemetry report: per-phase
/// latency decomposition table, the ring-position link-utilization
/// heatmap, and `telemetry_<tag>.json` / `telemetry_<tag>.csv` exports in
/// the working directory.
pub fn emit_telemetry(tag: &str, report: &dsn_sim::TelemetryReport) {
    println!(
        "\n--- telemetry [{tag}] (window = {} cycles) ---",
        report.window_cycles
    );
    println!(
        "  {:<12} {:>9} {:>9} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "phase",
        "created",
        "delivered",
        "dropped",
        "avg-lat",
        "queue%",
        "stall%",
        "wire%",
        "eject%",
        "p99-max"
    );
    for p in &report.phases {
        let lat = p.latency_sum_cycles as f64;
        let pct = |part: u64| {
            if p.latency_sum_cycles == 0 {
                0.0
            } else {
                100.0 * part as f64 / lat
            }
        };
        let avg = if p.delivered == 0 {
            0.0
        } else {
            lat / p.delivered as f64
        };
        let p99_worst = p.classes.iter().map(|c| c.p99).max().unwrap_or(0);
        println!(
            "  {:<12} {:>9} {:>9} {:>8} {:>7.1}cy {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6}cy",
            p.name,
            p.created,
            p.delivered,
            p.dropped,
            avg,
            pct(p.queueing_cycles),
            pct(p.credit_stall_cycles),
            pct(p.wire_cycles),
            pct(p.ejection_cycles),
            p99_worst,
        );
    }
    println!(
        "  flits sent {} / ejected {}; alloc conflicts {}; mean/max measured util {:.3}/{:.3}",
        report.flits_sent_total,
        report.flits_ejected_total,
        report.alloc_conflicts_total,
        report.mean_measured_utilization(),
        report.max_measured_utilization(),
    );
    print!("{}", report.heatmap());
    let json_path = format!("telemetry_{tag}.json");
    let csv_path = format!("telemetry_{tag}.csv");
    std::fs::write(&json_path, report.to_json()).expect("write telemetry JSON");
    std::fs::write(&csv_path, report.to_csv()).expect("write telemetry CSV");
    println!("# wrote {json_path}, {csv_path}");
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
///
/// `VmHWM` is a process-lifetime high-water mark: without a
/// [`reset_peak_rss`] call before each measured region, every reading is
/// the max over *all* work the process has done so far, and per-row
/// figures come out monotonically inherited from earlier rows.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Reset the kernel's peak-RSS high-water mark (`VmHWM`) to the current
/// RSS by writing `5` to `/proc/self/clear_refs`, so the next
/// [`peak_rss_kb`] reading covers only the work done after this call.
/// Returns `false` where that isn't possible (no procfs, insufficient
/// privilege) — callers should then flag the figure as cumulative rather
/// than report a stale per-row number as fresh.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn engine_arg_defaults_and_parses_both_forms() {
        let mut args = argv(&["--load", "1.0"]);
        assert_eq!(take_engine_arg(&mut args), dsn_sim::EngineKind::Event);
        assert_eq!(args, argv(&["--load", "1.0"]), "unrelated args untouched");

        let mut args = argv(&["--engine", "dense", "--load", "1.0"]);
        assert_eq!(take_engine_arg(&mut args), dsn_sim::EngineKind::Dense);
        assert_eq!(args, argv(&["--load", "1.0"]), "consumed tokens removed");

        let mut args = argv(&["--engine=sharded"]);
        assert_eq!(take_engine_arg(&mut args), dsn_sim::EngineKind::Sharded);
        assert!(args.is_empty());
    }

    #[test]
    fn engine_arg_last_occurrence_wins() {
        let mut args = argv(&["--engine=dense", "--engine", "sharded"]);
        assert_eq!(take_engine_arg(&mut args), dsn_sim::EngineKind::Sharded);
        assert!(args.is_empty());
    }

    #[test]
    fn routing_tables_arg_defaults_and_parses() {
        let mut args = argv(&[]);
        assert_eq!(
            take_routing_tables_arg(&mut args),
            dsn_sim::RoutingTables::Flat
        );
        let mut args = argv(&["--routing-tables", "dyn", "-n", "64"]);
        assert_eq!(
            take_routing_tables_arg(&mut args),
            dsn_sim::RoutingTables::Dyn
        );
        assert_eq!(args, argv(&["-n", "64"]));
        let mut args = argv(&["--routing-tables=flat"]);
        assert_eq!(
            take_routing_tables_arg(&mut args),
            dsn_sim::RoutingTables::Flat
        );
        assert!(args.is_empty());
    }

    #[test]
    fn workers_arg_absent_space_and_eq_forms() {
        let mut args = argv(&["--load", "1.0"]);
        assert_eq!(take_workers_arg(&mut args), None);

        let mut args = argv(&["--workers", "4", "--load", "1.0"]);
        assert_eq!(take_workers_arg(&mut args), Some(4));
        assert_eq!(args, argv(&["--load", "1.0"]));

        let mut args = argv(&["--workers=0"]);
        assert_eq!(take_workers_arg(&mut args), Some(0));
        assert!(args.is_empty());
    }

    #[test]
    fn telemetry_arg_bare_and_windowed() {
        let mut args = argv(&["--telemetry", "-n", "64"]);
        assert_eq!(
            take_telemetry_arg(&mut args),
            Some(DEFAULT_TELEMETRY_WINDOW)
        );
        assert_eq!(args, argv(&["-n", "64"]));

        let mut args = argv(&["--telemetry=250"]);
        assert_eq!(take_telemetry_arg(&mut args), Some(250));
        assert!(args.is_empty());

        let mut args = argv(&[]);
        assert_eq!(take_telemetry_arg(&mut args), None);
    }

    #[test]
    fn peak_rss_resets_between_regions() {
        // Only meaningful where clear_refs is writable (Linux, enough
        // privilege) — the reset contract is "high-water mark restarts
        // from the current RSS", which a fresh big allocation must exceed.
        if !reset_peak_rss() {
            return;
        }
        let before = peak_rss_kb().expect("procfs available if clear_refs is");
        let ballast = vec![1u8; 64 << 20];
        std::hint::black_box(&ballast);
        let inflated = peak_rss_kb().expect("procfs available");
        assert!(
            inflated >= before,
            "high-water mark moved backwards: {inflated} < {before}"
        );
        drop(ballast);
        assert!(reset_peak_rss());
        let after_reset = peak_rss_kb().expect("procfs available");
        assert!(
            after_reset < inflated,
            "reset did not drop the high-water mark: {after_reset} >= {inflated}"
        );
    }
}
