//! # dsn-bench — figure/table regenerators for the DSN reproduction
//!
//! One binary per figure of the paper's evaluation (see `src/bin/`):
//!
//! * `fig7_diameter` — diameter vs network size (Figure 7)
//! * `fig8_aspl` — average shortest path length vs network size (Figure 8)
//! * `fig9_cable` — average cable length vs network size (Figure 9)
//! * `fig10_simulation` — latency vs accepted traffic (Figure 10 a/b/c)
//! * `theory_validation` — Facts 1–3 and Theorems 1–2 measured vs bounds
//! * `ablation_extensions` — DSN-D-x / DSN-E / flexible-DSN ablations
//! * `related_work` — Section III diameter-and-degree table
//!
//! plus Criterion micro-benchmarks under `benches/`.

#![warn(missing_docs)]

pub mod degraded;

use dsn_core::topology::TopologySpec;

/// The network sizes of Figures 7–9: `log2 N = 5 .. 11`.
pub fn paper_sizes() -> Vec<usize> {
    (5..=11).map(|k| 1usize << k).collect()
}

/// Fixed seed for the RANDOM (DLN-2-2) baseline so every figure binary and
/// test sees the same instance.
pub const RANDOM_SEED: u64 = 0xD5B0_2013;

/// The paper's three degree-4 contenders at size `n`.
pub fn trio(n: usize) -> [TopologySpec; 3] {
    TopologySpec::paper_trio(n, RANDOM_SEED)
}

/// Format a gnuplot-style data block header.
pub fn block_header(title: &str, columns: &[&str]) -> String {
    let mut s = format!("# {title}\n#");
    for c in columns {
        s.push_str(&format!(" {c:>12}"));
    }
    s.push('\n');
    s
}

/// Extract `--engine dense|event` (or `--engine=...`) from `args`,
/// removing the consumed tokens. Defaults to the event engine; exits with
/// a usage message on an unknown value so every simulation binary rejects
/// typos the same way.
pub fn take_engine_arg(args: &mut Vec<String>) -> dsn_sim::EngineKind {
    let mut engine = dsn_sim::EngineKind::default();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--engine" && i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--engine=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = value {
            match dsn_sim::EngineKind::parse(&v) {
                Some(kind) => engine = kind,
                None => {
                    eprintln!("unknown engine `{v}` (expected dense | event)");
                    std::process::exit(2);
                }
            }
        }
    }
    engine
}

/// Extract `--routing-tables flat|dyn` (or `--routing-tables=...`) from
/// `args`, removing the consumed tokens. Defaults to flat tables; exits
/// with a usage message on an unknown value so every simulation binary
/// rejects typos the same way.
pub fn take_routing_tables_arg(args: &mut Vec<String>) -> dsn_sim::RoutingTables {
    let mut tables = dsn_sim::RoutingTables::default();
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--routing-tables" && i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--routing-tables=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = value {
            match dsn_sim::RoutingTables::parse(&v) {
                Some(kind) => tables = kind,
                None => {
                    eprintln!("unknown routing tables `{v}` (expected flat | dyn)");
                    std::process::exit(2);
                }
            }
        }
    }
    tables
}

/// Window width (cycles) used when `--telemetry` is given with no value.
pub const DEFAULT_TELEMETRY_WINDOW: u64 = 1_000;

/// Extract `--telemetry` (default window) or `--telemetry=WINDOW` from
/// `args`, removing the consumed tokens. Returns the window width in
/// cycles, or `None` when the flag is absent (telemetry off — the
/// simulator hooks compile to no-ops). Exits with a usage message on a
/// malformed window so every simulation binary rejects typos the same way.
pub fn take_telemetry_arg(args: &mut Vec<String>) -> Option<u64> {
    let mut window = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry" {
            args.remove(i);
            window = Some(DEFAULT_TELEMETRY_WINDOW);
        } else if let Some(v) = args[i].strip_prefix("--telemetry=") {
            match v.parse::<u64>() {
                Ok(w) if w >= 1 => window = Some(w),
                _ => {
                    eprintln!("--telemetry needs a window of >= 1 cycles, got `{v}`");
                    std::process::exit(2);
                }
            }
            args.remove(i);
        } else {
            i += 1;
        }
    }
    window
}

/// Standard terminal + file rendering of a telemetry report: per-phase
/// latency decomposition table, the ring-position link-utilization
/// heatmap, and `telemetry_<tag>.json` / `telemetry_<tag>.csv` exports in
/// the working directory.
pub fn emit_telemetry(tag: &str, report: &dsn_sim::TelemetryReport) {
    println!(
        "\n--- telemetry [{tag}] (window = {} cycles) ---",
        report.window_cycles
    );
    println!(
        "  {:<12} {:>9} {:>9} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "phase",
        "created",
        "delivered",
        "dropped",
        "avg-lat",
        "queue%",
        "stall%",
        "wire%",
        "eject%",
        "p99-max"
    );
    for p in &report.phases {
        let lat = p.latency_sum_cycles as f64;
        let pct = |part: u64| {
            if p.latency_sum_cycles == 0 {
                0.0
            } else {
                100.0 * part as f64 / lat
            }
        };
        let avg = if p.delivered == 0 {
            0.0
        } else {
            lat / p.delivered as f64
        };
        let p99_worst = p.classes.iter().map(|c| c.p99).max().unwrap_or(0);
        println!(
            "  {:<12} {:>9} {:>9} {:>8} {:>7.1}cy {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6}cy",
            p.name,
            p.created,
            p.delivered,
            p.dropped,
            avg,
            pct(p.queueing_cycles),
            pct(p.credit_stall_cycles),
            pct(p.wire_cycles),
            pct(p.ejection_cycles),
            p99_worst,
        );
    }
    println!(
        "  flits sent {} / ejected {}; alloc conflicts {}; mean/max measured util {:.3}/{:.3}",
        report.flits_sent_total,
        report.flits_ejected_total,
        report.alloc_conflicts_total,
        report.mean_measured_utilization(),
        report.max_measured_utilization(),
    );
    print!("{}", report.heatmap());
    let json_path = format!("telemetry_{tag}.json");
    let csv_path = format!("telemetry_{tag}.csv");
    std::fs::write(&json_path, report.to_json()).expect("write telemetry JSON");
    std::fs::write(&csv_path, report.to_csv()).expect("write telemetry CSV");
    println!("# wrote {json_path}, {csv_path}");
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
