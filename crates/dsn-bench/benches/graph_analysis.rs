//! Criterion bench: the APSP sweep behind Figures 7 and 8 (diameter and
//! average shortest path length) — single BFS vs the rayon-parallel sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_core::dsn::Dsn;
use dsn_metrics::{bfs_distances, path_stats};
use std::hint::black_box;

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_apsp");
    group.sample_size(10);
    for &n in &[256usize, 1024, 2048] {
        let p = dsn_core::util::ceil_log2(n);
        let g = Dsn::new(n, p - 1).unwrap().into_graph();
        group.bench_with_input(BenchmarkId::new("parallel_path_stats", n), &g, |b, g| {
            b.iter(|| black_box(path_stats(g)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("single_bfs");
    for &n in &[1024usize, 2048] {
        let p = dsn_core::util::ceil_log2(n);
        let g = Dsn::new(n, p - 1).unwrap().into_graph();
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            b.iter(|| black_box(bfs_distances(g, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
