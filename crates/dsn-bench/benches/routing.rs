//! Criterion bench: per-route cost of the DSN custom routing algorithm,
//! up*/down* table construction, and the CDG deadlock checks (Theorem 3
//! machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_core::dsn::Dsn;
use dsn_core::parallel::Parallelism;
use dsn_route::deadlock::dsnv_cdg;
use dsn_route::dsn_routing::{route, routing_stats_with};
use dsn_route::updown::UpDown;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsn_custom_route");
    for &n in &[256usize, 2048] {
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap();
        group.bench_with_input(BenchmarkId::new("route_all_from_0", n), &dsn, |b, dsn| {
            b.iter(|| {
                for t in 1..dsn.n() {
                    black_box(route(dsn, 0, t).unwrap());
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("updown_tables");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let p = dsn_core::util::ceil_log2(n);
        let g = Dsn::new(n, p - 1).unwrap().into_graph();
        group.bench_with_input(BenchmarkId::new("build", n), &g, |b, g| {
            b.iter(|| black_box(UpDown::new(g, 0)))
        });
    }
    group.finish();

    // All-pairs sweep, serial loop vs per-source rayon fan-out. On a
    // multi-core host the parallel row should beat serial by roughly the
    // core count; the results are bit-identical either way.
    let mut group = c.benchmark_group("routing_stats_2048");
    group.sample_size(10);
    let p = dsn_core::util::ceil_log2(2048);
    let dsn = Dsn::new(2048, p - 1).unwrap();
    group.bench_function("serial", |b| {
        b.iter(|| black_box(routing_stats_with(&dsn, &Parallelism::serial())))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(routing_stats_with(&dsn, &Parallelism::auto())))
    });
    group.finish();

    let mut group = c.benchmark_group("cdg_check");
    group.sample_size(10);
    let dsn = Dsn::new(60, 5).unwrap();
    group.bench_function("dsnv_cdg_60", |b| {
        b.iter(|| black_box(dsnv_cdg(&dsn).is_acyclic()))
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
