//! Criterion bench: topology construction cost across the paper's families
//! and sizes (supports Figures 7–9, which rebuild topologies per size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_core::dln::DlnRandom;
use dsn_core::dsn::Dsn;
use dsn_core::dsn_ext::{DsnD, DsnE};
use dsn_core::torus::Torus;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for &n in &[64usize, 512, 2048] {
        let p = dsn_core::util::ceil_log2(n);
        group.bench_with_input(BenchmarkId::new("dsn", n), &n, |b, &n| {
            b.iter(|| black_box(Dsn::new(n, p - 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dsn_e", n), &n, |b, &n| {
            b.iter(|| black_box(DsnE::new(n).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dsn_d2", n), &n, |b, &n| {
            b.iter(|| black_box(DsnD::new(n, 2).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("torus2d", n), &n, |b, &n| {
            b.iter(|| black_box(Torus::square_2d(n).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dln22", n), &n, |b, &n| {
            b.iter(|| black_box(DlnRandom::new(n, 2, 2, 42).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
