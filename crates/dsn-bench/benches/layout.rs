//! Criterion bench: the cable-length computation behind Figure 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_core::dln::DlnRandom;
use dsn_core::dsn::Dsn;
use dsn_layout::{cable_stats, line_layout_stats, CableModel, LinearPlacement};
use std::hint::black_box;

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_cable_stats");
    for &n in &[512usize, 2048] {
        let p = dsn_core::util::ceil_log2(n);
        let dsn = Dsn::new(n, p - 1).unwrap().into_graph();
        let random = DlnRandom::new(n, 2, 2, 42).unwrap().into_graph();
        let model = CableModel::default();
        let placement = LinearPlacement::new(n, model.switches_per_cabinet);
        group.bench_with_input(BenchmarkId::new("dsn", n), &dsn, |b, g| {
            b.iter(|| black_box(cable_stats(g, &placement, &model)))
        });
        group.bench_with_input(BenchmarkId::new("random", n), &random, |b, g| {
            b.iter(|| black_box(cable_stats(g, &placement, &model)))
        });
        group.bench_with_input(BenchmarkId::new("line_metric", n), &dsn, |b, g| {
            b.iter(|| black_box(line_layout_stats(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
