//! Criterion bench: simulator throughput behind Figure 10 — a shortened
//! 64-switch run per topology under uniform traffic at 4 Gbit/s/host,
//! plus dense-vs-event engine rows on the 256-switch trio at the lowest
//! and a near-saturation fig10 load point (the event core's headline is
//! low-load speedup: idle units cost it nothing), plus a `high_load`
//! group isolating the allocation hot path (64-switch trio at
//! 11 Gbit/s/host, event engine, prebuilt routing, flat tables vs the
//! dynamic trait-call path), plus a `telemetry_overhead` group pinning
//! the zero-cost-when-off claim: `Telemetry::Off` must sit within noise
//! of the pre-telemetry event engine, with the telemetry-on row alongside
//! for the enabled cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_bench::trio;
use dsn_sim::{
    AdaptiveEscape, EngineKind, RoutingTables, SimConfig, SimRouting, Simulator, TrafficPattern,
};
use std::hint::black_box;
use std::sync::Arc;

fn run_once(graph: &Arc<dsn_core::graph::Graph>, cfg: &SimConfig, gbps: f64) -> dsn_sim::RunStats {
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
    Simulator::new(
        graph.clone(),
        cfg.clone(),
        routing,
        TrafficPattern::Uniform,
        rate,
        7,
    )
    .run()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_simulation");
    group.sample_size(10);
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    for spec in trio(64) {
        let built = spec.build().unwrap();
        let graph = Arc::new(built.graph);
        group.bench_with_input(
            BenchmarkId::new("7k_cycles_4gbps", &built.name),
            &graph,
            |b, graph| b.iter(|| black_box(run_once(graph, &cfg, 4.0))),
        );
    }
    group.finish();

    // Engine comparison on the 256-switch trio: the dense reference pays
    // O(network) per cycle regardless of load, the event core O(work).
    let mut group = c.benchmark_group("engine_dense_vs_event");
    group.sample_size(10);
    for (gbps, point) in [(0.5f64, "low_0.5gbps"), (11.0, "sat_11gbps")] {
        for spec in trio(256) {
            let built = spec.build().unwrap();
            let graph = Arc::new(built.graph);
            for engine in [EngineKind::Dense, EngineKind::Event] {
                let cfg = SimConfig {
                    engine,
                    warmup_cycles: 1_000,
                    measure_cycles: 4_000,
                    drain_cycles: 2_000,
                    ..SimConfig::default()
                };
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{point}_{}", engine.name()),
                        format!("{}_n256", built.name),
                    ),
                    &graph,
                    |b, graph| b.iter(|| black_box(run_once(graph, &cfg, gbps))),
                );
            }
        }
    }
    group.finish();

    // Hot-path isolation at saturation load: 64-switch trio at
    // 11 Gbit/s/host on the event engine with the routing *prebuilt* (and
    // the flat arena precompiled) outside the timed loop, so the rows
    // compare purely the per-allocation candidate sourcing — compiled CSR
    // rows (`flat`) vs virtual `SimRouting` calls (`dyn`).
    let mut group = c.benchmark_group("high_load");
    group.sample_size(10);
    for spec in trio(64) {
        let built = spec.build().unwrap();
        let graph = Arc::new(built.graph);
        for tables in [RoutingTables::Dyn, RoutingTables::Flat] {
            let cfg = SimConfig {
                engine: EngineKind::Event,
                routing_tables: tables,
                warmup_cycles: 1_000,
                measure_cycles: 4_000,
                drain_cycles: 2_000,
                ..SimConfig::default()
            };
            let routing: Arc<dyn SimRouting> =
                Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
            if tables == RoutingTables::Flat {
                routing.compiled_flat();
            }
            let rate = cfg.packets_per_cycle_for_gbps(11.0);
            group.bench_with_input(
                BenchmarkId::new(format!("event_11gbps_{}", tables.name()), &built.name),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        black_box(
                            Simulator::new(
                                graph.clone(),
                                cfg.clone(),
                                routing.clone(),
                                TrafficPattern::Uniform,
                                rate,
                                7,
                            )
                            .run(),
                        )
                    })
                },
            );
        }
    }
    // Saturated steady state at scale: the 256-switch trio at
    // 11 Gbit/s/host (the BENCH_sim near-saturation point) on the event
    // engine and the sharded engine at 4 workers, flat tables, routing
    // prebuilt. This is the row the cache-conscious SoA layout, the ring
    // arena and the zero-alloc steady state target; sharded rows track
    // the bounded-lag engine's overhead on the same workload.
    for spec in trio(256) {
        let built = spec.build().unwrap();
        let graph = Arc::new(built.graph);
        for (engine, workers, tag) in [
            (EngineKind::Event, 0usize, "event"),
            (EngineKind::Sharded, 4, "sharded_w4"),
        ] {
            let cfg = SimConfig {
                engine,
                workers,
                routing_tables: RoutingTables::Flat,
                warmup_cycles: 1_000,
                measure_cycles: 4_000,
                drain_cycles: 2_000,
                ..SimConfig::default()
            };
            let routing: Arc<dyn SimRouting> =
                Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
            routing.compiled_flat();
            let rate = cfg.packets_per_cycle_for_gbps(11.0);
            group.bench_with_input(
                BenchmarkId::new(format!("sat_11gbps_{tag}"), format!("{}_n256", built.name)),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        black_box(
                            Simulator::new(
                                graph.clone(),
                                cfg.clone(),
                                routing.clone(),
                                TrafficPattern::Uniform,
                                rate,
                                7,
                            )
                            .run(),
                        )
                    })
                },
            );
        }
    }
    group.finish();

    // Telemetry overhead on a 256-switch DSN at 0.5 Gbit/s/host, event
    // engine: the `off` row is the acceptance gate (hooks must compile to
    // no-ops), the `on` row documents the cost of recording.
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let built = trio(256)[0].build().unwrap();
    let graph = Arc::new(built.graph);
    let cfg = SimConfig {
        engine: EngineKind::Event,
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("event_n256_0.5gbps", "off"),
        &graph,
        |b, graph| b.iter(|| black_box(run_once(graph, &cfg, 0.5))),
    );
    let mut cfg_on = cfg.clone();
    cfg_on.telemetry = Some(cfg_on.standard_telemetry(1_000));
    group.bench_with_input(
        BenchmarkId::new("event_n256_0.5gbps", "on_w1000"),
        &graph,
        |b, graph| b.iter(|| black_box(run_once(graph, &cfg_on, 0.5))),
    );
    group.finish();
}

/// Flow-layer overhead: one quick-horizon run per workload class of the
/// flow suite (web-search open-loop flows, incast waves, recursive-
/// doubling allreduce) on the 64-switch DSN, event engine, prebuilt
/// routing — the cost of per-flow pacing, tagging and FCT accounting on
/// top of the packet engine.
fn bench_flows(c: &mut Criterion) {
    use dsn_bench::flows::{flow_config, FlowWorkloadKind, FLOW_SEED};

    let mut group = c.benchmark_group("flow_workloads");
    group.sample_size(10);
    let built = trio(64)[0].build().unwrap();
    let graph = Arc::new(built.graph);
    for kind in FlowWorkloadKind::all() {
        let cfg = flow_config(EngineKind::Event, kind, true);
        let routing: Arc<dyn SimRouting> = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
        let workload = kind.build(64 * cfg.hosts_per_switch);
        group.bench_with_input(
            BenchmarkId::new("dsn64_event_quick", kind.name()),
            &graph,
            |b, graph| {
                b.iter(|| {
                    black_box(
                        Simulator::with_workload(
                            graph.clone(),
                            cfg.clone(),
                            routing.clone(),
                            workload.clone(),
                            FLOW_SEED,
                        )
                        .run(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim, bench_flows);
criterion_main!(benches);
