//! Criterion bench: simulator throughput behind Figure 10 — a shortened
//! 64-switch run per topology under uniform traffic at 4 Gbit/s/host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsn_bench::trio;
use dsn_sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_simulation");
    group.sample_size(10);
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(4.0);
    for spec in trio(64) {
        let built = spec.build().unwrap();
        let graph = Arc::new(built.graph);
        group.bench_with_input(
            BenchmarkId::new("7k_cycles_4gbps", &built.name),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
                    let sim = Simulator::new(
                        graph.clone(),
                        cfg.clone(),
                        routing,
                        TrafficPattern::Uniform,
                        rate,
                        7,
                    );
                    black_box(sim.run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
