//! Targeted single-row perf probe: run exactly one (topology, engine,
//! load) cell of the BENCH_sim matrix and print cycles/s — the quickest
//! way to iterate on hot-path changes or read a `--phase-timing`
//! breakdown without sweeping the whole `fig10_simulation --json` matrix.
//!
//! Run: `cargo run --release -p dsn-bench --example perf_probe -- \
//!       [--n 64|256] [--topo dsn|torus|random] [--gbps F] \
//!       [--engine dense|event|sharded] [--workers N] [--phase-timing]`

use dsn_bench::{take_engine_arg, take_workers_arg, trio};
use dsn_sim::{AdaptiveEscape, SimConfig, SimRouting, Simulator, TrafficPattern};
use std::sync::Arc;
use std::time::Instant;

fn take_val(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--phase-timing") {
        args.retain(|a| a != "--phase-timing");
        // Safe: single-threaded startup, before any sim work begins.
        std::env::set_var("DSN_PHASE_TIMING", "1");
    }
    let n: usize = take_val(&mut args, "--n")
        .map(|v| v.parse().expect("--n"))
        .unwrap_or(256);
    let topo = take_val(&mut args, "--topo").unwrap_or_else(|| "dsn".into());
    let gbps: f64 = take_val(&mut args, "--gbps")
        .map(|v| v.parse().expect("--gbps"))
        .unwrap_or(11.0);
    let mut engine = take_engine_arg(&mut args);
    let mut workers = 0;
    if let Some(w) = take_workers_arg(&mut args) {
        engine = dsn_sim::EngineKind::Sharded;
        workers = w;
    }

    let pre = take_val(&mut args, "--pre");
    let idx = match topo.as_str() {
        "dsn" => 0,
        "torus" => 1,
        "random" => 2,
        other => panic!("unknown --topo {other} (dsn|torus|random)"),
    };
    let built = trio(n)
        .into_iter()
        .nth(idx)
        .unwrap()
        .build()
        .expect("topology");
    let graph = Arc::new(built.graph);
    let cfg = SimConfig {
        engine,
        workers,
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 15_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(gbps);
    let routing = Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs));
    routing.compiled_flat();
    if let Some(pre_engine) = pre {
        // Warm (dirty) the process heap with a full run of another engine
        // first, reproducing the allocator state a row sees mid-way
        // through the `fig10_simulation --json` matrix.
        let pre_cfg = SimConfig {
            engine: match pre_engine.as_str() {
                "dense" => dsn_sim::EngineKind::Dense,
                "event" => dsn_sim::EngineKind::Event,
                other => panic!("unknown --pre {other}"),
            },
            workers: 0,
            ..cfg.clone()
        };
        let pre_start = Instant::now();
        let s = Simulator::new(
            graph.clone(),
            pre_cfg,
            Arc::new(AdaptiveEscape::new(graph.clone(), cfg.vcs)),
            TrafficPattern::Uniform,
            rate,
            0x000F_1610,
        )
        .run();
        println!(
            "  (pre {pre_engine} run: {:.3}s, delivered {})",
            pre_start.elapsed().as_secs_f64(),
            s.delivered_packets
        );
    }
    let sim = Simulator::new(
        graph.clone(),
        cfg.clone(),
        routing,
        TrafficPattern::Uniform,
        rate,
        0x000F_1610,
    );
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    let cycles = cfg.total_cycles();
    println!(
        "{} n={n} {} w{workers} {gbps}G: {:.0} cycles/s ({cycles} cycles, {wall:.3}s, delivered {})",
        built.name,
        engine.name(),
        cycles as f64 / wall,
        stats.delivered_packets,
    );
    println!(
        "  mean/max util {:.3}/{:.3}, peak in-flight {}, peak buffered {}",
        stats.mean_channel_utilization,
        stats.max_channel_utilization,
        stats.peak_in_flight_packets,
        stats.peak_buffered_flits,
    );
}
