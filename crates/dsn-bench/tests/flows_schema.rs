//! Golden-file pin for the `flow_suite` JSON report: the schema (key
//! order, float formatting, null makespans for open rows) and — thanks to
//! the simulator's determinism — the exact values of a tiny fixed
//! scenario must never drift silently. Regenerate by running with
//! `UPDATE_GOLDEN=1 cargo test -p dsn-bench --test flows_schema`.

use dsn_bench::flows::{run_suite, FlowReport, SCHEMA};
use dsn_bench::trio;
use dsn_sim::EngineKind;

const GOLDEN_PATH: &str = "tests/golden/flows_schema.json";
const GOLDEN: &str = include_str!("golden/flows_schema.json");

/// Tiny fixed scenario: the DSN of the 16-switch trio only, quick
/// horizons, event engine, one flap — covers the web-search, incast and
/// allreduce rows, the faulted variants, and the null makespan encoding.
fn tiny_report() -> String {
    let specs = &trio(16)[..1];
    let rows = run_suite(
        EngineKind::Event,
        0,
        dsn_sim::RoutingTables::default(),
        specs,
        16,
        1,
        true,
    );
    FlowReport {
        engine: EngineKind::Event,
        rows,
    }
    .to_json()
}

#[test]
fn json_schema_is_pinned() {
    let actual = tiny_report();
    assert!(actual.contains(SCHEMA), "schema tag missing");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("update golden");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "flow_suite JSON drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
