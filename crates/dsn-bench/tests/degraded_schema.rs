//! Golden-file pin for the `degraded_performance` JSON report: the schema
//! (key order, float formatting, split/saturated flags) and — thanks to the
//! simulator's determinism — the exact values of a tiny fixed scenario must
//! never drift silently. Regenerate by running with
//! `UPDATE_GOLDEN=1 cargo test -p dsn-bench --test degraded_schema`.

use dsn_bench::degraded::{run_dynamic, run_static, SCHEMA};
use dsn_core::topology::TopologySpec;
use dsn_sim::{EngineKind, SimConfig};

const GOLDEN_PATH: &str = "tests/golden/degraded_schema.json";
const GOLDEN: &str = include_str!("golden/degraded_schema.json");

/// Tiny fixed scenario: a ring of 8 switches, short windows, event engine.
/// Static dead counts {0, 1, 2} cover the healthy, degraded-but-connected
/// and split rows (a ring minus two edges always disconnects); one dynamic
/// fault covers the online-reroute row.
fn tiny_report() -> String {
    let cfg = SimConfig {
        engine: EngineKind::Event,
        warmup_cycles: 100,
        measure_cycles: 1_000,
        drain_cycles: 2_000,
        ..SimConfig::test_small()
    };
    let specs = [TopologySpec::Ring { n: 8 }];
    let stat = run_static(&cfg, &specs, &[0, 1, 2], 1.0);
    let dyn_ = run_dynamic(&cfg, &specs, 1, 1.0);
    format!("{}{}", stat.to_json(), dyn_.to_json())
}

#[test]
fn json_schema_is_pinned() {
    let actual = tiny_report();
    assert!(actual.contains(SCHEMA), "schema tag missing");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("update golden");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "degraded_performance JSON drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
