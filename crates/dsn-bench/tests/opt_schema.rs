//! Golden-file pin for the `opt_frontier` JSON report: key order, float
//! formatting, the null saturation encoding, and — because every search
//! is seeded and bit-reproducible — the exact frontier of a tiny quick
//! sweep must never drift silently. Wall-clock times are zeroed before
//! comparing. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p dsn-bench --test opt_schema`.

use dsn_bench::opt::{run_frontier, FrontierConfig, SCHEMA};
use dsn_core::Parallelism;

const GOLDEN_PATH: &str = "tests/golden/opt_schema.json";
const GOLDEN: &str = include_str!("golden/opt_schema.json");

/// Tiny fixed sweep: one 32-switch size, quick search budgets, no
/// saturation probe, serial scoring — fast and fully deterministic.
fn tiny_report() -> String {
    let mut report = run_frontier(&FrontierConfig {
        sizes: vec![32],
        quick: true,
        sat: false,
        par: Parallelism::serial(),
    });
    for row in &mut report.rows {
        row.wall_s = 0.0;
    }
    report.to_json()
}

#[test]
fn json_schema_is_pinned() {
    let actual = tiny_report();
    assert!(actual.contains(SCHEMA), "schema tag missing");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("update golden");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "opt_frontier JSON drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
