//! Machine-room cabinet floorplan (Section VI.B of the paper).
//!
//! Cabinets are aligned on a 2-D grid: with `m` cabinets there are
//! `q = ceil(sqrt(m))` rows and `ceil(m / q)` cabinets per row. Each cabinet
//! is 0.6 m wide and 2.1 m deep *including aisle space* (HP data-center
//! recommendations, paper ref. \[21\]). Cable distance between cabinets is
//! Manhattan distance between their grid positions.

/// Grid floorplan of `m` cabinets.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorPlan {
    cabinets: usize,
    rows: usize,
    cols: usize,
    cabinet_width_m: f64,
    cabinet_depth_m: f64,
}

/// Cabinet width used by the paper (meters).
pub const DEFAULT_CABINET_WIDTH_M: f64 = 0.6;
/// Cabinet depth including aisle used by the paper (meters).
pub const DEFAULT_CABINET_DEPTH_M: f64 = 2.1;

impl FloorPlan {
    /// Build the paper's floorplan for `m >= 1` cabinets:
    /// `q = ceil(sqrt m)` rows, `ceil(m / q)` cabinets per row,
    /// 0.6 m x 2.1 m cabinets.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        Self::with_dims(m, DEFAULT_CABINET_WIDTH_M, DEFAULT_CABINET_DEPTH_M)
    }

    /// Build a floorplan with custom cabinet dimensions (meters).
    ///
    /// # Panics
    /// Panics if `m == 0` or a dimension is not positive and finite.
    pub fn with_dims(m: usize, cabinet_width_m: f64, cabinet_depth_m: f64) -> Self {
        assert!(m >= 1, "at least one cabinet");
        assert!(
            cabinet_width_m > 0.0 && cabinet_width_m.is_finite(),
            "cabinet width must be positive"
        );
        assert!(
            cabinet_depth_m > 0.0 && cabinet_depth_m.is_finite(),
            "cabinet depth must be positive"
        );
        let rows = (m as f64).sqrt().ceil() as usize;
        let cols = m.div_ceil(rows);
        FloorPlan {
            cabinets: m,
            rows,
            cols,
            cabinet_width_m,
            cabinet_depth_m,
        }
    }

    /// Number of cabinets.
    #[inline]
    pub fn cabinets(&self) -> usize {
        self.cabinets
    }

    /// Number of cabinet rows (`q = ceil(sqrt m)`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cabinets per full row.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(row, col)` grid position of cabinet `c` (row-major).
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn grid_position(&self, c: usize) -> (usize, usize) {
        assert!(c < self.cabinets, "cabinet {c} out of range");
        (c / self.cols, c % self.cols)
    }

    /// `(x, y)` center coordinates of cabinet `c` in meters; `x` runs along
    /// a row (width direction), `y` across rows (depth direction).
    pub fn position_m(&self, c: usize) -> (f64, f64) {
        let (row, col) = self.grid_position(c);
        (
            (col as f64 + 0.5) * self.cabinet_width_m,
            (row as f64 + 0.5) * self.cabinet_depth_m,
        )
    }

    /// Manhattan distance between two cabinets in meters (0 for the same
    /// cabinet).
    pub fn manhattan_m(&self, a: usize, b: usize) -> f64 {
        let (xa, ya) = self.position_m(a);
        let (xb, yb) = self.position_m(b);
        (xa - xb).abs() + (ya - yb).abs()
    }

    /// Total floor extent `(width, depth)` in meters.
    pub fn extent_m(&self) -> (f64, f64) {
        (
            self.cols as f64 * self.cabinet_width_m,
            self.rows as f64 * self.cabinet_depth_m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_follows_paper() {
        // m = 10: q = ceil(sqrt 10) = 4 rows, ceil(10/4) = 3 per row.
        let f = FloorPlan::new(10);
        assert_eq!(f.rows(), 4);
        assert_eq!(f.cols(), 3);
        // All cabinets placeable:
        for c in 0..10 {
            let (r, col) = f.grid_position(c);
            assert!(r < 4 && col < 3);
        }
    }

    #[test]
    fn perfect_square() {
        let f = FloorPlan::new(16);
        assert_eq!(f.rows(), 4);
        assert_eq!(f.cols(), 4);
    }

    #[test]
    fn single_cabinet() {
        let f = FloorPlan::new(1);
        assert_eq!(f.rows(), 1);
        assert_eq!(f.cols(), 1);
        assert_eq!(f.manhattan_m(0, 0), 0.0);
    }

    #[test]
    fn manhattan_distances() {
        let f = FloorPlan::new(16); // 4 x 4
                                    // Cabinets 0 and 1: same row, adjacent columns -> 0.6 m.
        assert!((f.manhattan_m(0, 1) - 0.6).abs() < 1e-9);
        // Cabinets 0 and 4: adjacent rows, same column -> 2.1 m.
        assert!((f.manhattan_m(0, 4) - 2.1).abs() < 1e-9);
        // Diagonal: 0 to 5 -> 0.6 + 2.1.
        assert!((f.manhattan_m(0, 5) - 2.7).abs() < 1e-9);
        // Symmetry
        assert_eq!(f.manhattan_m(3, 12), f.manhattan_m(12, 3));
    }

    #[test]
    fn extent() {
        let f = FloorPlan::new(16);
        let (w, d) = f.extent_m();
        assert!((w - 2.4).abs() < 1e-9);
        assert!((d - 8.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one cabinet")]
    fn zero_cabinets_panics() {
        FloorPlan::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cabinet_panics() {
        FloorPlan::new(4).grid_position(4);
    }
}
