//! Cable-length estimation (Section VI.B, after Kim/Dally/Abts's flattened
//! butterfly cost model, paper ref. \[22\]).
//!
//! Switches are packed into cabinets (16 per cabinet in the paper); a link
//! between switches in the same cabinet costs a flat 2 m, and a link between
//! different cabinets costs the Manhattan distance between the cabinets plus
//! a 2 m wiring overhead. Compute-node-to-switch cables are ignored, as in
//! the paper, because their length does not depend on the topology.

use crate::floorplan::FloorPlan;
use crate::placement::Placement;
use dsn_core::graph::{Graph, LinkKind};

/// Cable cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CableModel {
    /// Switches housed per cabinet (paper: 16).
    pub switches_per_cabinet: usize,
    /// Flat length of a cable that stays inside one cabinet (paper: 2 m).
    pub intra_cabinet_m: f64,
    /// Wiring overhead added to every inter-cabinet cable (paper: 2 m).
    pub inter_overhead_m: f64,
}

impl Default for CableModel {
    fn default() -> Self {
        CableModel {
            switches_per_cabinet: 16,
            intra_cabinet_m: 2.0,
            inter_overhead_m: 2.0,
        }
    }
}

/// Aggregate cable statistics for one topology under one placement.
#[derive(Debug, Clone, PartialEq)]
pub struct CableStats {
    /// Number of links measured.
    pub links: usize,
    /// Links whose endpoints share a cabinet.
    pub intra_cabinet_links: usize,
    /// Links crossing cabinets.
    pub inter_cabinet_links: usize,
    /// Sum of all cable lengths (meters).
    pub total_m: f64,
    /// Mean cable length (meters) — the quantity in the paper's Figure 9.
    pub avg_m: f64,
    /// Longest single cable (meters).
    pub max_m: f64,
    /// Average length per link kind, sorted by kind.
    pub by_kind: Vec<(LinkKind, KindStats)>,
}

/// Per-link-kind cable statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindStats {
    /// Number of links of this kind.
    pub links: usize,
    /// Total length (meters).
    pub total_m: f64,
    /// Average length (meters).
    pub avg_m: f64,
}

/// Measure every link of `graph` under `placement` on the floorplan implied
/// by the placement's cabinet count.
pub fn cable_stats(graph: &Graph, placement: &dyn Placement, model: &CableModel) -> CableStats {
    let cabinets = placement.cabinet_count();
    let plan = FloorPlan::new(cabinets.max(1));

    let mut total = 0.0f64;
    let mut max = 0.0f64;
    let mut intra = 0usize;
    let mut by_kind: Vec<(LinkKind, KindStats)> = Vec::new();

    for e in graph.edges() {
        let ca = placement.cabinet_of(e.a);
        let cb = placement.cabinet_of(e.b);
        let len = if ca == cb {
            intra += 1;
            model.intra_cabinet_m
        } else {
            plan.manhattan_m(ca, cb) + model.inter_overhead_m
        };
        total += len;
        max = max.max(len);
        match by_kind.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, s)) => {
                s.links += 1;
                s.total_m += len;
            }
            None => by_kind.push((
                e.kind,
                KindStats {
                    links: 1,
                    total_m: len,
                    avg_m: 0.0,
                },
            )),
        }
    }

    for (_, s) in &mut by_kind {
        s.avg_m = s.total_m / s.links as f64;
    }
    by_kind.sort_by_key(|a| a.0);

    let links = graph.edge_count();
    CableStats {
        links,
        intra_cabinet_links: intra,
        inter_cabinet_links: links - intra,
        total_m: total,
        avg_m: if links == 0 {
            0.0
        } else {
            total / links as f64
        },
        max_m: max,
        by_kind,
    }
}

/// Theorem 2b's idealized *line layout*: nodes evenly spaced on a line with
/// unit spacing; a link `(a, b)` costs `|a - b|` length units. Returns
/// `(total, average, shortcut_average)` where the last value averages only
/// over `Shortcut` links (the paper proves shortcut average `<= n/p` for DSN
/// versus `~ n/3` for DLN-2-2's random links).
pub fn line_layout_stats(graph: &Graph) -> LineStats {
    let mut total = 0u64;
    let mut shortcut_total = 0u64;
    let mut shortcut_links = 0usize;
    let mut random_total = 0u64;
    let mut random_links = 0usize;
    for e in graph.edges() {
        let len = e.a.abs_diff(e.b) as u64;
        total += len;
        match e.kind {
            LinkKind::Shortcut { .. } => {
                shortcut_total += len;
                shortcut_links += 1;
            }
            LinkKind::Random | LinkKind::LongRange => {
                random_total += len;
                random_links += 1;
            }
            _ => {}
        }
    }
    let links = graph.edge_count();
    LineStats {
        total: total as f64,
        avg: if links == 0 {
            0.0
        } else {
            total as f64 / links as f64
        },
        shortcut_avg: if shortcut_links == 0 {
            0.0
        } else {
            shortcut_total as f64 / shortcut_links as f64
        },
        shortcut_links,
        random_avg: if random_links == 0 {
            0.0
        } else {
            random_total as f64 / random_links as f64
        },
        random_links,
    }
}

/// Like [`line_layout_stats`] but measuring each link with the *ring*
/// metric `min(|a-b|, n-|a-b|)` — i.e. nodes evenly spaced on a closed
/// loop. This is the metric under which Theorem 2b's shortcut-length bound
/// is meaningful: on an open line, a short wrapping shortcut (e.g. from node
/// `n-1` to node 1) would be charged almost the whole line length.
pub fn ring_layout_stats(graph: &Graph) -> LineStats {
    let n = graph.node_count();
    let mut total = 0u64;
    let mut shortcut_total = 0u64;
    let mut shortcut_links = 0usize;
    let mut random_total = 0u64;
    let mut random_links = 0usize;
    for e in graph.edges() {
        let d = e.a.abs_diff(e.b);
        let len = d.min(n - d) as u64;
        total += len;
        match e.kind {
            LinkKind::Shortcut { .. } => {
                shortcut_total += len;
                shortcut_links += 1;
            }
            LinkKind::Random | LinkKind::LongRange => {
                random_total += len;
                random_links += 1;
            }
            _ => {}
        }
    }
    let links = graph.edge_count();
    LineStats {
        total: total as f64,
        avg: if links == 0 {
            0.0
        } else {
            total as f64 / links as f64
        },
        shortcut_avg: if shortcut_links == 0 {
            0.0
        } else {
            shortcut_total as f64 / shortcut_links as f64
        },
        shortcut_links,
        random_avg: if random_links == 0 {
            0.0
        } else {
            random_total as f64 / random_links as f64
        },
        random_links,
    }
}

/// Line-layout cable statistics (unit spacing), see [`line_layout_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineStats {
    /// Total cable length in node spacings.
    pub total: f64,
    /// Average over all links.
    pub avg: f64,
    /// Average over deterministic `Shortcut` links only.
    pub shortcut_avg: f64,
    /// Number of `Shortcut` links.
    pub shortcut_links: usize,
    /// Average over `Random`/`LongRange` links only.
    pub random_avg: f64,
    /// Number of random links.
    pub random_links: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::LinearPlacement;
    use dsn_core::ring::Ring;

    #[test]
    fn ring_in_one_cabinet_all_intra() {
        let g = Ring::new(16).unwrap().into_graph();
        let p = LinearPlacement::new(16, 16);
        let s = cable_stats(&g, &p, &CableModel::default());
        assert_eq!(s.links, 16);
        assert_eq!(s.intra_cabinet_links, 16);
        assert_eq!(s.inter_cabinet_links, 0);
        assert!((s.avg_m - 2.0).abs() < 1e-12);
        assert!((s.total_m - 32.0).abs() < 1e-12);
    }

    #[test]
    fn two_cabinets_boundary_links() {
        // Ring of 32 over 2 cabinets of 16: links (15,16) and (31,0) cross.
        let g = Ring::new(32).unwrap().into_graph();
        let p = LinearPlacement::new(32, 16);
        let s = cable_stats(&g, &p, &CableModel::default());
        assert_eq!(s.inter_cabinet_links, 2);
        assert_eq!(s.intra_cabinet_links, 30);
        // 2 cabinets -> plan rows ceil(sqrt 2) = 2, cols 1: distance 2.1 m
        // + 2 m overhead = 4.1 m.
        assert!((s.max_m - 4.1).abs() < 1e-9, "max {}", s.max_m);
        let expected_total = 30.0 * 2.0 + 2.0 * 4.1;
        assert!((s.total_m - expected_total).abs() < 1e-9);
    }

    #[test]
    fn per_kind_totals_match_overall() {
        let g = dsn_core::dsn::Dsn::new(64, 5).unwrap().into_graph();
        let p = LinearPlacement::new(64, 16);
        let s = cable_stats(&g, &p, &CableModel::default());
        let kind_total: f64 = s.by_kind.iter().map(|(_, k)| k.total_m).sum();
        let kind_links: usize = s.by_kind.iter().map(|(_, k)| k.links).sum();
        assert!((kind_total - s.total_m).abs() < 1e-9);
        assert_eq!(kind_links, s.links);
    }

    #[test]
    fn line_layout_ring() {
        let g = Ring::new(10).unwrap().into_graph();
        let s = line_layout_stats(&g);
        // 9 unit links + the wrap link of length 9.
        assert!((s.total - 18.0).abs() < 1e-12);
        assert_eq!(s.shortcut_links, 0);
    }

    #[test]
    fn theorem_2b_dsn_shortcut_average() {
        // Theorem 2b states avg shortcut length <= n/p. The exact per-level
        // lengths are >= n/2^l, so the true average is ~ n/(p-1) * (1 -
        // 2^(1-p)); the paper's n/p is the asymptotic form (p ~ p-1). We
        // verify the exact bound with the ring metric, plus the asymptotic
        // claim within the constant the construction actually achieves.
        for &n in &[256usize, 1024, 2048] {
            let d = dsn_core::dsn::Dsn::new_clean(n).unwrap();
            let stats = ring_layout_stats(d.graph());
            // Each level-l shortcut spans n/2^l plus up to ~p extra hops
            // spent finding the next level-(l+1) node, hence the +p term.
            let exact_bound = d.n() as f64 / (d.p() as f64 - 1.0) + d.p() as f64;
            assert!(
                stats.shortcut_avg <= exact_bound,
                "n={n}: shortcut avg {} > exact bound {exact_bound}",
                stats.shortcut_avg
            );
            // And it is clearly below the DLN-2-2 random-link average
            // (~ n/4 on the ring metric); the paper's p/3 factor is the
            // asymptotic gap.
            assert!(stats.shortcut_avg < d.n() as f64 / 4.0 * 0.8);
        }
    }

    #[test]
    fn ring_metric_never_exceeds_line_metric() {
        let g = dsn_core::dsn::Dsn::new(200, 6).unwrap().into_graph();
        let line = line_layout_stats(&g);
        let ring = ring_layout_stats(&g);
        assert!(ring.total <= line.total);
        assert!(ring.shortcut_avg <= line.shortcut_avg);
    }
}
