//! Cabinet-placement optimization — the companion problem the paper cites
//! (Fujiwara, Koibuchi, Casanova: "Cabinet Layout Optimization of
//! Supercomputer Topologies for Shorter Cable Length", ref. \[7\]).
//!
//! Given a topology and a cabinet capacity, find a switch→cabinet
//! assignment minimizing total cable length. We implement a deterministic
//! seeded simulated-annealing over switch swaps plus a greedy
//! local-improvement pass. This enables a layout ablation: how much cable
//! does optimization recover for DSN (little — its linear order is already
//! near-optimal on a ring-structured topology) versus RANDOM (more, but
//! nowhere near DSN's bill, matching ref. \[11\]'s observations).

use crate::anneal::Anneal;
use crate::cable::{cable_stats, CableModel, CableStats};
use crate::floorplan::FloorPlan;
use crate::placement::{ExplicitPlacement, Placement};
use dsn_core::graph::Graph;
use rand::Rng;

/// Annealing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Swap attempts.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial total cable length.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied every `iterations / 100` steps.
    pub cooling: f64,
    /// RNG seed (deterministic runs).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 50_000,
            initial_temp_frac: 0.01,
            cooling: 0.95,
            seed: 0x1A_20_13,
        }
    }
}

/// Result of a placement optimization.
#[derive(Debug, Clone)]
pub struct OptimizedPlacement {
    /// The final switch→cabinet assignment.
    pub placement: ExplicitPlacement,
    /// Cable statistics before optimization (identity/linear start).
    pub before: CableStats,
    /// Cable statistics after optimization.
    pub after: CableStats,
    /// Accepted swaps.
    pub accepted_swaps: usize,
}

impl OptimizedPlacement {
    /// Fractional total-cable reduction achieved, in `[0, 1)`.
    pub fn reduction(&self) -> f64 {
        if self.before.total_m <= 0.0 {
            0.0
        } else {
            1.0 - self.after.total_m / self.before.total_m
        }
    }
}

/// Optimize a placement by simulated annealing over switch swaps, starting
/// from the linear assignment (`switch v -> cabinet v / capacity`).
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn anneal_placement(
    graph: &Graph,
    capacity: usize,
    model: &CableModel,
    cfg: &AnnealConfig,
) -> OptimizedPlacement {
    assert!(capacity > 0, "cabinet capacity must be positive");
    let n = graph.node_count();
    let cabinets = n.div_ceil(capacity);
    let plan = FloorPlan::new(cabinets.max(1));

    // Current assignment: cab[v] = cabinet of switch v.
    let mut cab: Vec<usize> = (0..n).map(|v| v / capacity).collect();

    // Cost of one edge under the current assignment.
    let edge_cost = |cab: &[usize], a: usize, b: usize| -> f64 {
        if cab[a] == cab[b] {
            model.intra_cabinet_m
        } else {
            plan.manhattan_m(cab[a], cab[b]) + model.inter_overhead_m
        }
    };

    let before = cable_stats(
        graph,
        &LinearLike {
            cab: cab.clone(),
            cabinets,
        },
        model,
    );
    let mut total: f64 = graph
        .edges()
        .iter()
        .map(|e| edge_cost(&cab, e.a, e.b))
        .sum();

    // Incidence lists for delta evaluation.
    let incident: Vec<Vec<usize>> = {
        let mut inc = vec![Vec::new(); n];
        for (i, e) in graph.edges().iter().enumerate() {
            inc[e.a].push(i);
            inc[e.b].push(i);
        }
        inc
    };

    let mut sa = Anneal::new(
        cfg.seed,
        before.total_m * cfg.initial_temp_frac,
        cfg.cooling,
        cfg.iterations,
    );

    for it in 0..cfg.iterations {
        // Swap the cabinets of two random switches in different cabinets.
        let a = sa.rng().gen_range(0..n);
        let b = sa.rng().gen_range(0..n);
        if cab[a] == cab[b] {
            // Note: skips the cooling step too — pinned behavior.
            continue;
        }
        // Delta: recompute the incident edges of both switches.
        let mut delta = 0.0f64;
        for &ei in incident[a].iter().chain(&incident[b]) {
            let e = &graph.edges()[ei];
            delta -= edge_cost(&cab, e.a, e.b);
        }
        cab.swap(a, b);
        for &ei in incident[a].iter().chain(&incident[b]) {
            let e = &graph.edges()[ei];
            delta += edge_cost(&cab, e.a, e.b);
        }
        // Edges between a and b counted twice in both passes — the double
        // counting cancels in the delta, so no correction is needed.
        if sa.accept(delta) {
            total += delta;
        } else {
            cab.swap(a, b); // revert
        }
        sa.cool_at(it);
    }
    let accepted = sa.accepted();

    let placement = ExplicitPlacement::new(cab);
    let after = cable_stats(graph, &placement, model);
    debug_assert!(
        (after.total_m - total).abs() < 1e-6 * after.total_m.max(1.0),
        "incremental total {total} drifted from recomputed {}",
        after.total_m
    );
    OptimizedPlacement {
        placement,
        before,
        after,
        accepted_swaps: accepted,
    }
}

/// Internal adapter: a placement backed by a plain vector but with a fixed
/// cabinet count (the annealer's scratch state).
struct LinearLike {
    cab: Vec<usize>,
    cabinets: usize,
}

impl Placement for LinearLike {
    fn cabinet_of(&self, v: usize) -> usize {
        self.cab[v]
    }
    fn cabinet_count(&self) -> usize {
        self.cabinets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::dln::DlnRandom;
    use dsn_core::dsn::Dsn;
    use dsn_core::ring::Ring;

    fn quick_cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            iterations: 20_000,
            seed,
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn never_worsens_total_cable() {
        let g = DlnRandom::new(128, 2, 2, 9).unwrap().into_graph();
        let r = anneal_placement(&g, 16, &CableModel::default(), &quick_cfg(1));
        assert!(
            r.after.total_m <= r.before.total_m + 1e-9,
            "after {} > before {}",
            r.after.total_m,
            r.before.total_m
        );
        assert!(r.reduction() >= 0.0);
    }

    #[test]
    fn random_topology_benefits_more_than_dsn() {
        // DSN's linear layout is already ring-aligned; RANDOM has slack.
        let n = 256;
        let dsn = Dsn::new(n, 7).unwrap().into_graph();
        let rnd = DlnRandom::new(n, 2, 2, 5).unwrap().into_graph();
        let model = CableModel::default();
        let r_dsn = anneal_placement(&dsn, 16, &model, &quick_cfg(2));
        let r_rnd = anneal_placement(&rnd, 16, &model, &quick_cfg(2));
        assert!(
            r_rnd.reduction() >= r_dsn.reduction() - 0.01,
            "RANDOM should have at least as much slack: dsn {:.3} rnd {:.3}",
            r_dsn.reduction(),
            r_rnd.reduction()
        );
        // And even optimized RANDOM stays above linear DSN.
        assert!(r_rnd.after.avg_m > r_dsn.after.avg_m * 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Ring::new(64).unwrap().into_graph();
        let a = anneal_placement(&g, 16, &CableModel::default(), &quick_cfg(3));
        let b = anneal_placement(&g, 16, &CableModel::default(), &quick_cfg(3));
        assert_eq!(a.after.total_m, b.after.total_m);
        assert_eq!(a.accepted_swaps, b.accepted_swaps);
    }

    #[test]
    fn pinned_results_across_sa_refactor() {
        // Exact outputs recorded before the annealing core moved into the
        // shared `anneal` module. Any change to the RNG draw order, the
        // acceptance rule, or the cooling schedule shifts these.
        let model = CableModel::default();
        let cases: [(Graph, u64, u64, usize); 3] = [
            (
                DlnRandom::new(128, 2, 2, 9).unwrap().into_graph(),
                1,
                0x4086866666666671, // 720.8 m
                3386,
            ),
            (
                Dsn::new(256, 7).unwrap().into_graph(),
                2,
                0x40972a6666666661, // 1482.6 m
                4446,
            ),
            (
                DlnRandom::new(256, 2, 2, 5).unwrap().into_graph(),
                2,
                0x409bc8ccccccccc0, // 1778.2 m
                6029,
            ),
        ];
        for (g, seed, total_bits, accepted) in cases {
            let r = anneal_placement(&g, 16, &model, &quick_cfg(seed));
            assert_eq!(
                r.after.total_m.to_bits(),
                total_bits,
                "total_m drifted for seed {seed}: {} m",
                r.after.total_m
            );
            assert_eq!(
                r.accepted_swaps, accepted,
                "accepted drifted for seed {seed}"
            );
        }
    }

    #[test]
    fn single_cabinet_is_noop() {
        let g = Ring::new(12).unwrap().into_graph();
        let r = anneal_placement(&g, 16, &CableModel::default(), &quick_cfg(4));
        assert_eq!(r.before.total_m, r.after.total_m);
        assert_eq!(r.reduction(), 0.0);
    }
}
