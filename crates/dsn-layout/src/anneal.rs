//! Seeded simulated-annealing core shared by the cabinet-placement
//! optimizer ([`crate::optimize`]) and the shortcut-placement search in
//! `dsn-opt`.
//!
//! The annealer owns the RNG, the temperature schedule, and the Metropolis
//! acceptance rule; callers own the state, the move proposal, and the
//! delta evaluation. This split keeps the RNG stream exactly where the
//! caller puts it: a proposal draws whatever it needs from [`Anneal::rng`],
//! then [`Anneal::accept`] draws at most one more number (none when the
//! move strictly improves), so two callers with the same seed and the same
//! proposal sequence replay the same stream bit for bit.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Metropolis acceptance + geometric cooling with a deterministic seeded
/// RNG. Temperature drops by the cooling factor every
/// `iterations / 100` steps (at least every step), mirroring the schedule
/// the cabinet annealer has always used.
#[derive(Debug, Clone)]
pub struct Anneal {
    rng: SmallRng,
    temp: f64,
    cooling: f64,
    cool_every: usize,
    accepted: usize,
}

impl Anneal {
    /// New annealer with the given seed, starting temperature, geometric
    /// cooling factor, and planned iteration count (used only to derive
    /// the cooling interval `iterations / 100`, floored at 1).
    pub fn new(seed: u64, initial_temp: f64, cooling: f64, iterations: usize) -> Self {
        Anneal {
            rng: SmallRng::seed_from_u64(seed),
            temp: initial_temp,
            cooling,
            cool_every: (iterations / 100).max(1),
            accepted: 0,
        }
    }

    /// The move-proposal RNG. Draw from it exactly once per decision your
    /// proposal makes; the acceptance draw is taken internally by
    /// [`Anneal::accept`].
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Metropolis rule: always accept an improving move (`delta <= 0`,
    /// without consuming randomness), otherwise accept with probability
    /// `exp(-delta / temp)`. Counts accepted moves.
    #[inline]
    pub fn accept(&mut self, delta: f64) -> bool {
        let accept = delta <= 0.0
            || self
                .rng
                .gen_bool((-delta / self.temp.max(1e-9)).exp().min(1.0));
        if accept {
            self.accepted += 1;
        }
        accept
    }

    /// Apply the cooling schedule for iteration `it` (cools when `it` is a
    /// multiple of the cooling interval, including `it == 0`). Callers
    /// that `continue` past an iteration without proposing a move may also
    /// skip this call — the placement annealer does, and its pinned
    /// results depend on it.
    #[inline]
    pub fn cool_at(&mut self, it: usize) {
        if it.is_multiple_of(self.cool_every) {
            self.temp *= self.cooling;
        }
    }

    /// Current temperature.
    #[inline]
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// Number of accepted moves so far.
    #[inline]
    pub fn accepted(&self) -> usize {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_moves_skip_the_rng() {
        // Two annealers with the same seed: one sees improving deltas
        // (no acceptance draws), the other never proposes. Their RNG
        // streams must stay aligned.
        let mut a = Anneal::new(7, 10.0, 0.95, 100);
        let mut b = Anneal::new(7, 10.0, 0.95, 100);
        for _ in 0..10 {
            assert!(a.accept(-1.0));
        }
        let xa: u64 = a.rng().gen_range(0..u64::MAX);
        let xb: u64 = b.rng().gen_range(0..u64::MAX);
        assert_eq!(xa, xb);
        assert_eq!(a.accepted(), 10);
    }

    #[test]
    fn zero_temperature_rejects_worsening() {
        let mut a = Anneal::new(1, 0.0, 0.95, 100);
        let mut rejected = 0;
        for _ in 0..50 {
            if !a.accept(1.0) {
                rejected += 1;
            }
        }
        // exp(-1 / 1e-9) underflows to 0: every worsening move rejected.
        assert_eq!(rejected, 50);
    }

    #[test]
    fn cooling_schedule_interval() {
        let mut a = Anneal::new(1, 100.0, 0.5, 300); // cool_every = 3
        a.cool_at(0);
        assert_eq!(a.temperature(), 50.0);
        a.cool_at(1);
        a.cool_at(2);
        assert_eq!(a.temperature(), 50.0);
        a.cool_at(3);
        assert_eq!(a.temperature(), 25.0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let decisions = |seed: u64| -> Vec<bool> {
            let mut a = Anneal::new(seed, 5.0, 0.9, 200);
            (0..200)
                .map(|it| {
                    let d = a.rng().gen_f64() * 3.0 - 1.0;
                    let acc = a.accept(d);
                    a.cool_at(it);
                    acc
                })
                .collect()
        };
        assert_eq!(decisions(42), decisions(42));
        assert_ne!(decisions(42), decisions(43));
    }
}
