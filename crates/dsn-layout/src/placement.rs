//! Switch-to-cabinet placement strategies.
//!
//! The paper lays every topology out in node-id order: consecutive switch
//! ids fill a cabinet before moving to the next. For ring-based topologies
//! (DSN, DLN) this is the natural physical order; for a row-major-numbered
//! 2-D torus it is the conventional row-by-row layout (and the paper notes
//! that a folded torus has the *same aggregate* cable length, so comparing
//! the unfolded layout is fair).

use dsn_core::NodeId;

/// Maps switches to cabinets.
pub trait Placement {
    /// Cabinet index of switch `v`.
    fn cabinet_of(&self, v: NodeId) -> usize;
    /// Total number of cabinets in use.
    fn cabinet_count(&self) -> usize;
}

/// Consecutive node ids share a cabinet: switch `v` goes to cabinet
/// `v / switches_per_cabinet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearPlacement {
    nodes: usize,
    per_cabinet: usize,
}

impl LinearPlacement {
    /// Place `nodes` switches, `per_cabinet` to a cabinet (paper: 16).
    ///
    /// # Panics
    /// Panics if `per_cabinet == 0`.
    pub fn new(nodes: usize, per_cabinet: usize) -> Self {
        assert!(per_cabinet > 0, "cabinet capacity must be positive");
        LinearPlacement { nodes, per_cabinet }
    }

    /// Switches per cabinet.
    #[inline]
    pub fn per_cabinet(&self) -> usize {
        self.per_cabinet
    }
}

impl Placement for LinearPlacement {
    #[inline]
    fn cabinet_of(&self, v: NodeId) -> usize {
        debug_assert!(v < self.nodes, "switch {v} out of range");
        v / self.per_cabinet
    }

    #[inline]
    fn cabinet_count(&self) -> usize {
        self.nodes.div_ceil(self.per_cabinet)
    }
}

/// An arbitrary explicit placement (e.g. the output of a layout optimizer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitPlacement {
    cabinet: Vec<usize>,
    cabinets: usize,
}

impl ExplicitPlacement {
    /// Build from a per-switch cabinet assignment.
    ///
    /// # Panics
    /// Panics if `cabinet` is empty.
    pub fn new(cabinet: Vec<usize>) -> Self {
        assert!(
            !cabinet.is_empty(),
            "placement must cover at least one switch"
        );
        let cabinets = cabinet.iter().max().copied().unwrap_or(0) + 1;
        ExplicitPlacement { cabinet, cabinets }
    }
}

impl Placement for ExplicitPlacement {
    #[inline]
    fn cabinet_of(&self, v: NodeId) -> usize {
        self.cabinet[v]
    }

    #[inline]
    fn cabinet_count(&self) -> usize {
        self.cabinets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_packing() {
        let p = LinearPlacement::new(64, 16);
        assert_eq!(p.cabinet_count(), 4);
        assert_eq!(p.cabinet_of(0), 0);
        assert_eq!(p.cabinet_of(15), 0);
        assert_eq!(p.cabinet_of(16), 1);
        assert_eq!(p.cabinet_of(63), 3);
    }

    #[test]
    fn linear_partial_last_cabinet() {
        let p = LinearPlacement::new(20, 16);
        assert_eq!(p.cabinet_count(), 2);
        assert_eq!(p.cabinet_of(19), 1);
    }

    #[test]
    fn explicit_roundtrip() {
        let p = ExplicitPlacement::new(vec![0, 0, 2, 1]);
        assert_eq!(p.cabinet_count(), 3);
        assert_eq!(p.cabinet_of(2), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        LinearPlacement::new(4, 0);
    }
}
