//! # dsn-layout — machine-room floorplan and cable-length model
//!
//! Reimplements the physical-layout analysis of Section VI.B of the DSN
//! paper: cabinets on a `ceil(sqrt m)`-row grid with 0.6 m x 2.1 m
//! footprints, 16 switches per cabinet, Manhattan cable routing, 2 m
//! intra-cabinet cables and a 2 m inter-cabinet wiring overhead. This is
//! what regenerates Figure 9 (average cable length vs network size).
//!
//! ```
//! use dsn_core::dsn::Dsn;
//! use dsn_layout::{cable_stats, CableModel, LinearPlacement};
//!
//! let dsn = Dsn::new_clean(256).unwrap();
//! let placement = LinearPlacement::new(dsn.n(), 16);
//! let stats = cable_stats(dsn.graph(), &placement, &CableModel::default());
//! assert!(stats.avg_m > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anneal;
pub mod cable;
pub mod floorplan;
pub mod optimize;
pub mod placement;

pub use anneal::Anneal;
pub use cable::{
    cable_stats, line_layout_stats, ring_layout_stats, CableModel, CableStats, KindStats, LineStats,
};
pub use floorplan::{FloorPlan, DEFAULT_CABINET_DEPTH_M, DEFAULT_CABINET_WIDTH_M};
pub use optimize::{anneal_placement, AnnealConfig, OptimizedPlacement};
pub use placement::{ExplicitPlacement, LinearPlacement, Placement};
