//! Property tests for the telemetry primitives: histogram merge is
//! associative and order-independent, quantiles bracket the data, and the
//! per-packet latency decomposition sums exactly to the packet's latency
//! for arbitrary monotone event sequences.

use dsn_telemetry::{
    bucket_of, bucket_upper_bound, ChannelDesc, LogHistogram, Recorder, TelemetryConfig,
    TelemetryTopo,
};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// merge(a, merge(b, c)) == merge(merge(a, b), c) == direct recording,
    /// regardless of how the values are partitioned or ordered.
    #[test]
    fn histogram_merge_associative_and_order_independent(
        values in proptest::collection::vec(0u64..1_000_000, 0..200),
        cuts in proptest::collection::vec(0usize..200, 2..3),
    ) {
        let mut c1 = cuts[0].min(values.len());
        let mut c2 = cuts[1].min(values.len());
        if c1 > c2 {
            std::mem::swap(&mut c1, &mut c2);
        }
        let (a, b, c) = (
            hist_of(&values[..c1]),
            hist_of(&values[c1..c2]),
            hist_of(&values[c2..]),
        );
        let direct = hist_of(&values);

        // Left fold.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // Right fold.
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Reversed order.
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);

        prop_assert_eq!(&left, &direct);
        prop_assert_eq!(&right, &direct);
        prop_assert_eq!(&rev, &direct);
    }

    /// Every recorded value lands in a bucket whose range contains it, and
    /// quantiles never fall below the true quantile's bucket lower bound
    /// nor above the exact maximum.
    #[test]
    fn histogram_quantiles_bracket(values in proptest::collection::vec(0u64..100_000, 1..100)) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            let rank = ((values.len() as f64 * q).ceil() as usize).clamp(1, values.len());
            let truth = sorted[rank - 1];
            prop_assert!(est <= h.max());
            prop_assert!(
                est >= truth,
                "q={} estimate {} below true value {}", q, est, truth
            );
            // Estimate stays within the true value's bucket.
            prop_assert!(bucket_of(est) >= bucket_of(truth));
            prop_assert!(est <= bucket_upper_bound(bucket_of(truth)).max(h.max()));
        }
    }

    /// Drive a packet through an arbitrary monotone event sequence (grants,
    /// tail sends, tail arrivals, then final ejection): the four recorded
    /// decomposition components always sum exactly to the end-to-end
    /// latency — no cycle is lost or double-counted.
    #[test]
    fn decomposition_components_sum_exactly(
        created in 0u64..1000,
        gaps in proptest::collection::vec((0u64..50, 0usize..3), 0..30),
        final_gap in 0u64..100,
        dest in 1u32..8,
    ) {
        let topo = TelemetryTopo {
            nodes: 8,
            vcs: 2,
            channels: vec![ChannelDesc { src: 0, dst: 1, ring: true }],
            measure_start: 0,
            measure_end: u64::MAX,
        };
        let mut r = Recorder::new(TelemetryConfig::windowed(64), topo);
        r.on_created(0, 0, dest, created);
        let mut now = created;
        for &(gap, kind) in &gaps {
            now += gap;
            match kind {
                0 => r.on_alloc_granted(0, now),
                1 => r.on_flit_sent(0, 0, true, now),
                _ => r.on_link_arrival(0, 0, 1, 0, true, now),
            }
        }
        now += final_gap;
        r.on_ejected(0, true, now);
        let total = now - created;

        let rep = r.finish(now + 1);
        let p = &rep.phases[0];
        prop_assert_eq!(p.delivered, 1);
        prop_assert_eq!(
            p.queueing_cycles + p.credit_stall_cycles + p.wire_cycles + p.ejection_cycles,
            total,
            "decomposition must partition the packet's lifetime"
        );
        prop_assert_eq!(p.latency_sum_cycles, total);
        // The histogram agrees with the decomposition.
        prop_assert_eq!(p.classes.iter().map(|c| c.latency_sum_cycles).sum::<u64>(), total);
    }

    /// Window tables lose no events: summing every flushed `link_flits`
    /// row reproduces the total flit count, whatever the event spacing.
    #[test]
    fn window_rows_sum_to_totals(
        events in proptest::collection::vec((0u64..5000, 0u32..4), 1..200),
        window in 1u64..500,
    ) {
        let topo = TelemetryTopo {
            nodes: 4,
            vcs: 2,
            channels: (0..4)
                .map(|i| ChannelDesc { src: i, dst: (i + 1) % 4, ring: true })
                .collect(),
            measure_start: 0,
            measure_end: u64::MAX,
        };
        let mut r = Recorder::new(TelemetryConfig::windowed(window), topo);
        let mut sorted = events.clone();
        sorted.sort_unstable();
        for &(t, ch) in &sorted {
            r.on_flit_sent(ch, 0, false, t);
        }
        let rep = r.finish(10_000);
        let series = rep.series.iter().find(|s| s.metric == "link_flits").unwrap();
        let from_rows: u64 = series
            .rows
            .iter()
            .flat_map(|(_, pairs)| pairs.iter().map(|&(_, v)| v))
            .sum();
        prop_assert_eq!(from_rows, sorted.len() as u64);
        prop_assert_eq!(rep.flits_sent_total, sorted.len() as u64);
        // Rows are in window order with sorted, deduped indices.
        for w in series.rows.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for (_, pairs) in &series.rows {
            for p in pairs.windows(2) {
                prop_assert!(p[0].0 < p[1].0);
            }
        }
    }
}
