//! Deterministic log-bucketed histograms for latency distributions.
//!
//! Bucket `0` holds the value `0`; bucket `b >= 1` holds the values in
//! `[2^(b-1), 2^b - 1]`. Buckets are plain counters, so merging two
//! histograms is element-wise addition — associative and order-independent
//! by construction (pinned by a proptest) — which lets per-window or
//! per-shard histograms be combined without any loss relative to recording
//! into one histogram directly.

/// Log-bucket index of a value: `0` for `0`, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the largest value it can hold).
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A log-bucketed histogram with exact count, max and sum tracking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Per-bucket counts; trailing empty buckets are never stored.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Merge `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts (trailing empty buckets trimmed).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0 < q <= 1.0`): the upper bound of the
    /// first bucket at which the cumulative count reaches `ceil(q * count)`,
    /// clamped to the exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        // Every value lands in a bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 65535, 65536] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b), "{v} above bucket {b}");
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1), "{v} fits bucket {}", b - 1);
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; its bucket [256,511] upper bound is 511.
        assert_eq!(h.quantile(0.5), 511);
        // p99 = 990 -> bucket [512,1023], clamped to max 1000.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_direct_recording() {
        let values = [0u64, 5, 5, 17, 400, 3, 9000, 1];
        let mut direct = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            direct.record(v);
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        assert!(h.buckets().is_empty());
    }
}
