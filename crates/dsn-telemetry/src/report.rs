//! Finalized telemetry artifacts and their exporters.
//!
//! A [`TelemetryReport`] is plain data — everything a run recorded, fully
//! deterministic for a given simulation — with three exporters:
//!
//! * [`TelemetryReport::to_json`] — stable-schema JSON
//!   (`"dsn-telemetry/v2"`, fixed key order, golden-file pinned);
//! * [`TelemetryReport::to_csv`] — long-format windowed time series
//!   (`metric,window,index,value`);
//! * [`TelemetryReport::heatmap`] — a terminal link-utilization heatmap
//!   keyed by ring position, separating ring links from shortcut links so
//!   DSN hot-spots are visible at a glance.

/// Latency statistics for one `(phase, distance class)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Log-bucketed ring-distance class (`0` = same switch, class `k >= 1`
    /// covers ring distances `[2^(k-1), 2^k - 1]`).
    pub class: u32,
    /// Packets delivered in this cell.
    pub count: u64,
    /// Median latency (log-bucket upper bound, clamped to the exact max).
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Exact maximum latency.
    pub max: u64,
    /// Exact sum of latencies (cycles).
    pub latency_sum_cycles: u64,
    /// Raw log-bucket counts (trailing zero buckets trimmed).
    pub buckets: Vec<u64>,
}

/// Aggregates for one traffic phase (packets grouped by creation cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name (e.g. `"warmup"`, `"pre-fault"`).
    pub name: String,
    /// First cycle of the phase.
    pub start_cycle: u64,
    /// Packets created during the phase.
    pub created: u64,
    /// Packets created during the phase and delivered by run end.
    pub delivered: u64,
    /// Packets created during the phase and dropped by a fault.
    pub dropped: u64,
    /// Exact sum of delivered-packet latencies.
    pub latency_sum_cycles: u64,
    /// Cycles delivered packets spent waiting for VC allocation.
    pub queueing_cycles: u64,
    /// Cycles delivered packets spent serializing through switches
    /// (switch allocation and credit stalls).
    pub credit_stall_cycles: u64,
    /// Cycles delivered packets spent on wires.
    pub wire_cycles: u64,
    /// Cycles delivered packets spent in ejection.
    pub ejection_cycles: u64,
    /// Per-distance-class latency histograms (empty classes omitted).
    pub classes: Vec<ClassReport>,
}

/// Flow-completion-time statistics for one log2 flow-size class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FctClassReport {
    /// Log2 flow-size class: class `k` covers flows of `[2^k, 2^(k+1) - 1]`
    /// packets; the last class (7) is open-ended.
    pub class: u32,
    /// Measured flows completed in this class.
    pub count: u64,
    /// Median FCT (log-bucket upper bound, clamped to the exact max).
    pub p50: u64,
    /// 99th-percentile FCT.
    pub p99: u64,
    /// Exact maximum FCT.
    pub max: u64,
    /// Exact sum of FCTs (cycles).
    pub fct_sum_cycles: u64,
    /// Raw log-bucket counts (trailing zero buckets trimmed).
    pub buckets: Vec<u64>,
}

/// Per-channel totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkReport {
    /// Channel id (the simulator's channel index).
    pub channel: u32,
    /// Source switch.
    pub src: u32,
    /// Destination switch.
    pub dst: u32,
    /// True for ring links (ring distance 1), false for shortcuts.
    pub ring: bool,
    /// Flits sent on the channel over the whole run.
    pub flits: u64,
    /// Flits sent during the measurement window only.
    pub measured_flits: u64,
    /// Peak downstream input-VC occupancy observed (flits).
    pub peak_occupancy: u32,
}

/// One windowed time series: sparse `(window_index, (index, value) pairs)`
/// rows; windows with no events produce no row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Metric name (`link_flits`, `vc_depth_max`, `inj_depth_max`,
    /// `alloc_conflicts`, `eject_flits`).
    pub metric: String,
    /// Sparse rows in window order; pair indices are channel/VC/switch ids
    /// depending on the metric (always `0` for scalar metrics).
    pub rows: Vec<(u64, Vec<(u32, u64)>)>,
}

/// Everything one telemetry-enabled run recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Time-series window length in cycles.
    pub window_cycles: u64,
    /// Cycle the run stopped at.
    pub final_cycle: u64,
    /// Number of switches.
    pub nodes: usize,
    /// Virtual channels per network channel.
    pub vcs: usize,
    /// First cycle of the measurement window.
    pub measure_start: u64,
    /// One past the last cycle of the measurement window.
    pub measure_end: u64,
    /// Per-phase aggregates in phase order.
    pub phases: Vec<PhaseReport>,
    /// Flow-completion-time statistics by log2 flow-size class (empty
    /// classes omitted; empty for non-flow workloads).
    pub fct: Vec<FctClassReport>,
    /// Per-channel totals in channel order.
    pub links: Vec<LinkReport>,
    /// Windowed time series.
    pub series: Vec<Series>,
    /// Flits sent over the whole run (all channels).
    pub flits_sent_total: u64,
    /// Flits ejected into hosts over the whole run.
    pub flits_ejected_total: u64,
    /// VC-allocation conflicts (head blocked with no free VC/credits).
    pub alloc_conflicts_total: u64,
}

/// Schema tag embedded in every [`TelemetryReport::to_json`] export; bump
/// the version suffix on any breaking change to key order or formatting
/// (v2 added the per-flow-class `"fct"` section).
pub const SCHEMA: &str = "dsn-telemetry/v2";

impl TelemetryReport {
    /// Per-channel utilization over the measurement window, computed with
    /// the same expression the simulator uses for `RunStats` utilization
    /// (flits divided by `max(measure_cycles, 1)`), so telemetry and
    /// `RunStats` reconcile bit-for-bit.
    pub fn measured_utilization(&self) -> Vec<f64> {
        let window = (self.measure_end - self.measure_start).max(1) as f64;
        self.links
            .iter()
            .map(|l| l.measured_flits as f64 / window)
            .collect()
    }

    /// Mean per-channel utilization over the measurement window; bit-equal
    /// to `RunStats::mean_channel_utilization` for the same run.
    pub fn mean_measured_utilization(&self) -> f64 {
        let window = (self.measure_end - self.measure_start).max(1) as f64;
        let total: u64 = self.links.iter().map(|l| l.measured_flits).sum();
        total as f64 / window / self.links.len().max(1) as f64
    }

    /// Maximum per-channel utilization over the measurement window;
    /// bit-equal to `RunStats::max_channel_utilization` for the same run.
    pub fn max_measured_utilization(&self) -> f64 {
        self.measured_utilization()
            .into_iter()
            .fold(0.0f64, f64::max)
    }

    /// Serialize as stable-schema JSON (`"dsn-telemetry/v2"`).
    ///
    /// Key order, spacing, and number formatting are fixed; the output is
    /// byte-for-byte deterministic for a given run and pinned by the
    /// golden-file test in `dsn-sim/tests/telemetry_schema.rs`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(&format!("{{\n  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"window_cycles\": {},\n", self.window_cycles));
        s.push_str(&format!("  \"final_cycle\": {},\n", self.final_cycle));
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"vcs\": {},\n", self.vcs));
        s.push_str(&format!("  \"measure_start\": {},\n", self.measure_start));
        s.push_str(&format!("  \"measure_end\": {},\n", self.measure_end));
        s.push_str(&format!(
            "  \"flits_sent_total\": {},\n",
            self.flits_sent_total
        ));
        s.push_str(&format!(
            "  \"flits_ejected_total\": {},\n",
            self.flits_ejected_total
        ));
        s.push_str(&format!(
            "  \"alloc_conflicts_total\": {},\n",
            self.alloc_conflicts_total
        ));
        s.push_str(&format!(
            "  \"mean_measured_utilization\": {:.6},\n",
            self.mean_measured_utilization()
        ));
        s.push_str("  \"phases\": [\n");
        for (pi, p) in self.phases.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json_string(&p.name)));
            s.push_str(&format!("      \"start_cycle\": {},\n", p.start_cycle));
            s.push_str(&format!("      \"created\": {},\n", p.created));
            s.push_str(&format!("      \"delivered\": {},\n", p.delivered));
            s.push_str(&format!("      \"dropped\": {},\n", p.dropped));
            s.push_str(&format!(
                "      \"latency_sum_cycles\": {},\n",
                p.latency_sum_cycles
            ));
            s.push_str(&format!(
                "      \"queueing_cycles\": {},\n",
                p.queueing_cycles
            ));
            s.push_str(&format!(
                "      \"credit_stall_cycles\": {},\n",
                p.credit_stall_cycles
            ));
            s.push_str(&format!("      \"wire_cycles\": {},\n", p.wire_cycles));
            s.push_str(&format!(
                "      \"ejection_cycles\": {},\n",
                p.ejection_cycles
            ));
            s.push_str("      \"classes\": [\n");
            for (ci, c) in p.classes.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"class\": {}, \"count\": {}, \"p50\": {}, \"p95\": {}, \
                     \"p99\": {}, \"max\": {}, \"latency_sum_cycles\": {}, \"buckets\": {}}}{}\n",
                    c.class,
                    c.count,
                    c.p50,
                    c.p95,
                    c.p99,
                    c.max,
                    c.latency_sum_cycles,
                    json_u64_array(&c.buckets),
                    trail(ci, p.classes.len())
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!("    }}{}\n", trail(pi, self.phases.len())));
        }
        s.push_str("  ],\n");
        s.push_str("  \"fct\": [\n");
        for (fi, f) in self.fct.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"class\": {}, \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \
                 \"fct_sum_cycles\": {}, \"buckets\": {}}}{}\n",
                f.class,
                f.count,
                f.p50,
                f.p99,
                f.max,
                f.fct_sum_cycles,
                json_u64_array(&f.buckets),
                trail(fi, self.fct.len())
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"links\": [\n");
        for (li, l) in self.links.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"channel\": {}, \"src\": {}, \"dst\": {}, \"ring\": {}, \
                 \"flits\": {}, \"measured_flits\": {}, \"peak_occupancy\": {}}}{}\n",
                l.channel,
                l.src,
                l.dst,
                l.ring,
                l.flits,
                l.measured_flits,
                l.peak_occupancy,
                trail(li, self.links.len())
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"series\": [\n");
        for (si, m) in self.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"metric\": {}, \"rows\": [",
                json_string(&m.metric)
            ));
            for (ri, (win, pairs)) in m.rows.iter().enumerate() {
                if ri > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("[{win}, ["));
                for (pi, (idx, v)) in pairs.iter().enumerate() {
                    if pi > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!("[{idx}, {v}]"));
                }
                s.push_str("]]");
            }
            s.push_str(&format!("]}}{}\n", trail(si, self.series.len())));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Serialize the windowed time series as long-format CSV with header
    /// `metric,window,index,value` (one row per nonzero cell).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("metric,window,index,value\n");
        for m in &self.series {
            for (win, pairs) in &m.rows {
                for (idx, v) in pairs {
                    s.push_str(&format!("{},{},{},{}\n", m.metric, win, idx, v));
                }
            }
        }
        s
    }

    /// Render a terminal link-utilization heatmap keyed by ring position.
    ///
    /// Two strips per 64-switch block: `ring` aggregates each switch's
    /// outgoing ring links, `shct` its outgoing shortcut links. Intensity
    /// is measured-window utilization relative to the busiest link of the
    /// run, on the scale `" .:-=+*#%@"` (`.` faint, `@` saturated, space =
    /// no traffic, `_` = switch has no link of that kind).
    pub fn heatmap(&self) -> String {
        const SCALE: &[u8] = b" .:-=+*#%@";
        let mut ring = vec![(0u64, 0u32); self.nodes];
        let mut shct = vec![(0u64, 0u32); self.nodes];
        for l in &self.links {
            let acc = if l.ring { &mut ring } else { &mut shct };
            let e = &mut acc[l.src as usize];
            e.0 += l.measured_flits;
            e.1 += 1;
        }
        let per_link = |acc: &[(u64, u32)], i: usize| -> Option<f64> {
            let (flits, n) = acc[i];
            (n > 0).then(|| flits as f64 / n as f64)
        };
        let peak = (0..self.nodes)
            .flat_map(|i| [per_link(&ring, i), per_link(&shct, i)])
            .flatten()
            .fold(0.0f64, f64::max);
        let glyph = |u: Option<f64>| -> char {
            match u {
                None => '_',
                Some(v) if v <= 0.0 || peak <= 0.0 => ' ',
                Some(v) => {
                    let t = (v / peak * (SCALE.len() - 1) as f64).round() as usize;
                    SCALE[t.min(SCALE.len() - 1)] as char
                }
            }
        };
        let mut s = format!(
            "link utilization by ring position ({} switches, peak = busiest link)\n",
            self.nodes
        );
        let width = 64;
        for start in (0..self.nodes).step_by(width) {
            let end = (start + width).min(self.nodes);
            s.push_str(&format!("  switch {start:>5}..{end:<5}\n"));
            for (label, acc) in [("ring", &ring), ("shct", &shct)] {
                s.push_str(&format!("  {label} |"));
                for i in start..end {
                    s.push(glyph(per_link(acc, i)));
                }
                s.push_str("|\n");
            }
        }
        s
    }
}

fn trail(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_array(v: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TelemetryReport {
        TelemetryReport {
            window_cycles: 16,
            final_cycle: 100,
            nodes: 4,
            vcs: 2,
            measure_start: 10,
            measure_end: 90,
            phases: vec![PhaseReport {
                name: "all".into(),
                start_cycle: 0,
                created: 2,
                delivered: 2,
                dropped: 0,
                latency_sum_cycles: 30,
                queueing_cycles: 10,
                credit_stall_cycles: 12,
                wire_cycles: 6,
                ejection_cycles: 2,
                classes: vec![ClassReport {
                    class: 1,
                    count: 2,
                    p50: 15,
                    p95: 15,
                    p99: 15,
                    max: 15,
                    latency_sum_cycles: 30,
                    buckets: vec![0, 0, 0, 0, 2],
                }],
            }],
            fct: vec![FctClassReport {
                class: 2,
                count: 3,
                p50: 40,
                p99: 64,
                max: 61,
                fct_sum_cycles: 130,
                buckets: vec![0, 0, 0, 0, 0, 1, 2],
            }],
            links: vec![
                LinkReport {
                    channel: 0,
                    src: 0,
                    dst: 1,
                    ring: true,
                    flits: 10,
                    measured_flits: 8,
                    peak_occupancy: 3,
                },
                LinkReport {
                    channel: 1,
                    src: 0,
                    dst: 2,
                    ring: false,
                    flits: 4,
                    measured_flits: 4,
                    peak_occupancy: 1,
                },
            ],
            series: vec![Series {
                metric: "link_flits".into(),
                rows: vec![(0, vec![(0, 3), (1, 1)]), (2, vec![(0, 7)])],
            }],
            flits_sent_total: 14,
            flits_ejected_total: 8,
            alloc_conflicts_total: 1,
        }
    }

    #[test]
    fn utilization_matches_engine_formula() {
        let r = tiny_report();
        // 80-cycle measurement window.
        let per = r.measured_utilization();
        assert_eq!(per, vec![8.0 / 80.0, 4.0 / 80.0]);
        assert_eq!(r.mean_measured_utilization(), 12.0 / 80.0 / 2.0);
        assert_eq!(r.max_measured_utilization(), 0.1);
    }

    #[test]
    fn json_is_stable_and_tagged() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n  \"schema\": \"dsn-telemetry/v2\",\n"));
        assert!(j.contains("\"rows\": [[0, [[0, 3], [1, 1]]], [2, [[0, 7]]]]"));
        assert!(j.contains(
            "{\"class\": 2, \"count\": 3, \"p50\": 40, \"p99\": 64, \"max\": 61, \
             \"fct_sum_cycles\": 130, \"buckets\": [0, 0, 0, 0, 0, 1, 2]}"
        ));
        assert_eq!(j, tiny_report().to_json(), "export must be deterministic");
    }

    #[test]
    fn csv_long_format() {
        let c = tiny_report().to_csv();
        assert_eq!(
            c,
            "metric,window,index,value\n\
             link_flits,0,0,3\nlink_flits,0,1,1\nlink_flits,2,0,7\n"
        );
    }

    #[test]
    fn heatmap_marks_ring_and_shortcut_rows() {
        let h = tiny_report().heatmap();
        assert!(h.contains("ring |"));
        assert!(h.contains("shct |"));
        // Switch 0 has the busiest ring link -> '@'; switches 1..3 have no
        // shortcut links -> '_'.
        let ring_row = h.lines().find(|l| l.contains("ring |")).unwrap();
        assert!(ring_row.contains("@"));
        let shct_row = h.lines().find(|l| l.contains("shct |")).unwrap();
        assert!(shct_row.contains("_"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
