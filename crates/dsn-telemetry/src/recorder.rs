//! The telemetry recorder: hook sink for the simulator's shared mutation
//! helpers.
//!
//! The simulator calls one hook per observable state change (packet
//! created, VC allocation granted/blocked, flit sent on a channel, flit
//! arrived off a wire, flit ejected, packet dropped). Because both
//! scheduling engines drive those changes through the *same* shared
//! helpers in the same order, the hook call sequence — and therefore every
//! exported artifact — is bit-identical between the dense and the event
//! core (pinned by `dsn-sim/tests/telemetry_equivalence.rs`).
//!
//! Per-packet latency is decomposed by *gap attribution*: each hook that
//! names a packet closes the time gap since that packet's previous event
//! and charges it to one component —
//!
//! * **queueing** — gap closed by a VC-allocation grant (header
//!   processing plus waiting for a free output VC with enough credits);
//! * **credit_stall** — gap closed by the tail flit leaving a switch
//!   (packet serialization plus switch-allocation and credit stalls);
//! * **wire** — gap closed by the tail flit arriving downstream (link
//!   traversal);
//! * **ejection** — gap closed by the tail flit reaching its host
//!   (ejection-port arbitration plus final serialization).
//!
//! Gaps partition the packet's lifetime, so the four components sum
//! *exactly* to its end-to-end latency (pinned by a proptest).

use crate::hist::{bucket_of, LogHistogram};

/// Telemetry configuration: window length plus named traffic phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Time-series window length in cycles (>= 1).
    pub window: u64,
    /// Named phases as `(start_cycle, name)` in ascending start order; a
    /// packet belongs to the last phase that started at or before its
    /// creation cycle. The first phase must start at cycle 0.
    pub phases: Vec<(u64, String)>,
}

impl TelemetryConfig {
    /// One all-run phase with the given window length.
    pub fn windowed(window: u64) -> Self {
        TelemetryConfig {
            window,
            phases: vec![(0, "all".to_string())],
        }
    }

    /// Builder: replace the phase list with `(start, name)` pairs.
    ///
    /// # Panics
    /// Panics if the list is empty, unsorted, or does not start at cycle 0.
    pub fn with_phases(mut self, phases: &[(u64, &str)]) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at cycle 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phase starts must be strictly ascending"
        );
        self.phases = phases.iter().map(|&(c, n)| (c, n.to_string())).collect();
        self
    }

    /// Sanity-check the configuration.
    ///
    /// # Panics
    /// Panics on a zero window or an invalid phase list.
    pub fn validate(&self) {
        assert!(self.window >= 1, "telemetry window must be >= 1 cycle");
        assert!(!self.phases.is_empty(), "need at least one phase");
        assert_eq!(self.phases[0].0, 0, "first phase must start at cycle 0");
        assert!(
            self.phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phase starts must be strictly ascending"
        );
    }
}

/// One directed channel of the simulated network, as telemetry sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelDesc {
    /// Source switch.
    pub src: u32,
    /// Destination switch.
    pub dst: u32,
    /// True when the channel is a ring link (ring distance 1 between its
    /// endpoints); false for shortcut/other links.
    pub ring: bool,
}

/// Static description of the simulated network handed to the recorder at
/// construction (the recorder itself has no dependency on the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryTopo {
    /// Number of switches.
    pub nodes: usize,
    /// Virtual channels per network channel.
    pub vcs: usize,
    /// Directed channels in id order.
    pub channels: Vec<ChannelDesc>,
    /// First cycle of the measurement window.
    pub measure_start: u64,
    /// One past the last cycle of the measurement window.
    pub measure_end: u64,
}

/// Hook-kind discriminants for [`HookEvent`]. The numeric values encode
/// the simulator's per-cycle phase order (arrivals < injection < allocation
/// < sends < ejection), so sorting logged events by `(now, kind, ...)`
/// replays them in exactly the order a single-thread run would have fired
/// the hooks. Kinds `IMPORT` / `EXPORT` are not hooks: they are binder
/// records a sharded driver may splice into the log to track packets whose
/// ids change when they cross a shard boundary; the [`Recorder`] never
/// receives them.
pub mod hook_kind {
    /// Binder: a cross-boundary packet was bound to a new local id.
    pub const IMPORT: u8 = 0;
    /// [`Recorder::on_link_arrival`](super::Recorder::on_link_arrival).
    pub const LINK_ARRIVAL: u8 = 1;
    /// [`Recorder::on_created`](super::Recorder::on_created).
    pub const CREATED: u8 = 2;
    /// [`Recorder::on_inject_depth`](super::Recorder::on_inject_depth).
    pub const INJECT_DEPTH: u8 = 3;
    /// [`Recorder::on_alloc_granted`](super::Recorder::on_alloc_granted).
    pub const ALLOC_GRANTED: u8 = 4;
    /// [`Recorder::on_alloc_blocked`](super::Recorder::on_alloc_blocked).
    pub const ALLOC_BLOCKED: u8 = 5;
    /// [`Recorder::on_flit_sent`](super::Recorder::on_flit_sent).
    pub const FLIT_SENT: u8 = 6;
    /// Binder: a packet's head left for another shard.
    pub const EXPORT: u8 = 7;
    /// [`Recorder::on_ejected`](super::Recorder::on_ejected).
    pub const EJECTED: u8 = 8;
    /// [`Recorder::on_dropped`](super::Recorder::on_dropped).
    pub const DROPPED: u8 = 9;
    /// [`Recorder::on_flow_completed`](super::Recorder::on_flow_completed).
    /// Fired by the ejection that completes a measured flow, so it sorts
    /// after `EJECTED` within a cycle — safe, because flow-completion
    /// aggregation commutes with every other hook.
    pub const FLOW_COMPLETED: u8 = 10;
}

/// One recorded hook call in flat form, produced by [`Telemetry::Log`].
///
/// The fields `a..d` hold the hook's arguments in declaration order (unused
/// ones zero); `flag` holds its `is_tail` argument when present. The derived
/// `Ord` compares `(now, kind, a, b, c, d, flag)`, which is exactly the
/// replay order a merged multi-shard log must be sorted into (see
/// [`hook_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HookEvent {
    /// Cycle the hook fired at.
    pub now: u64,
    /// Discriminant from [`hook_kind`].
    pub kind: u8,
    /// First hook argument.
    pub a: u32,
    /// Second hook argument.
    pub b: u32,
    /// Third hook argument.
    pub c: u32,
    /// Fourth hook argument.
    pub d: u32,
    /// The hook's `is_tail` argument (false when it has none).
    pub flag: bool,
}

/// Telemetry switch: `Off` compiles every hook down to a predictable
/// branch-not-taken; `On` forwards to a [`Recorder`]; `Log` appends flat
/// [`HookEvent`] records instead of aggregating, for a driver that replays
/// several logs into one recorder (the sharded engine).
#[derive(Debug)]
pub enum Telemetry {
    /// Recording disabled (the default): hooks are no-ops.
    Off,
    /// Recording enabled.
    On(Box<Recorder>),
    /// Hook calls are appended verbatim to the event log for later replay.
    Log(Vec<HookEvent>),
}

impl Telemetry {
    /// Build an enabled telemetry sink.
    pub fn on(cfg: TelemetryConfig, topo: TelemetryTopo) -> Self {
        Telemetry::On(Box::new(Recorder::new(cfg, topo)))
    }

    /// Build a logging sink (hooks recorded as [`HookEvent`]s for replay).
    pub fn log() -> Self {
        Telemetry::Log(Vec::new())
    }

    /// True when hooks are observed (recording or logging).
    pub fn enabled(&self) -> bool {
        !matches!(self, Telemetry::Off)
    }

    /// Drain the accumulated event log (empty unless this is `Log`).
    pub fn drain_log(&mut self) -> Vec<HookEvent> {
        match self {
            Telemetry::Log(v) => std::mem::take(v),
            _ => Vec::new(),
        }
    }

    /// Append a raw event to the log (no-op unless this is `Log`) — used by
    /// drivers to splice binder records ([`hook_kind::IMPORT`] /
    /// [`hook_kind::EXPORT`]) among the hook events.
    pub fn push_event(&mut self, e: HookEvent) {
        if let Telemetry::Log(v) = self {
            v.push(e);
        }
    }

    /// Finalize into a report (None when off or logging). `final_cycle` is
    /// the cycle the run stopped at.
    pub fn finish(self, final_cycle: u64) -> Option<crate::report::TelemetryReport> {
        match self {
            Telemetry::Off | Telemetry::Log(_) => None,
            Telemetry::On(r) => Some(r.finish(final_cycle)),
        }
    }
}

macro_rules! forward_hooks {
    ($($(#[$doc:meta])* $name:ident($($arg:ident: $ty:ty),*; $now:ident: u64) => [$kind:expr, $a:expr, $b:expr, $c:expr, $d:expr, $flag:expr];)*) => {
        impl Telemetry {
            $(
                $(#[$doc])*
                #[inline]
                pub fn $name(&mut self, $($arg: $ty,)* $now: u64) {
                    match self {
                        Telemetry::Off => {}
                        Telemetry::On(r) => r.$name($($arg,)* $now),
                        Telemetry::Log(v) => v.push(HookEvent {
                            now: $now,
                            kind: $kind,
                            a: $a,
                            b: $b,
                            c: $c,
                            d: $d,
                            flag: $flag,
                        }),
                    }
                }
            )*
        }
    };
}

forward_hooks! {
    /// A packet entered the network (slab slot, endpoints, cycle).
    on_created(slot: u32, src_sw: u32, dest_sw: u32; now: u64)
        => [hook_kind::CREATED, slot, src_sw, dest_sw, 0, false];
    /// A head packet won VC allocation (network grant or ejection grant).
    on_alloc_granted(slot: u32; now: u64)
        => [hook_kind::ALLOC_GRANTED, slot, 0, 0, 0, false];
    /// A head packet attempted VC allocation at `node` and found no free
    /// output VC with enough credits.
    on_alloc_blocked(node: u32; now: u64)
        => [hook_kind::ALLOC_BLOCKED, node, 0, 0, 0, false];
    /// A flit crossed the crossbar onto channel `ch`.
    on_flit_sent(ch: u32, slot: u32, is_tail: bool; now: u64)
        => [hook_kind::FLIT_SENT, ch, slot, 0, 0, is_tail];
    /// A flit arrived off channel `ch`'s wire into input VC `vc`, leaving
    /// that buffer `depth` flits deep.
    on_link_arrival(ch: u32, vc: u32, depth: u32, slot: u32, is_tail: bool; now: u64)
        => [hook_kind::LINK_ARRIVAL, ch, vc, depth, slot, is_tail];
    /// A freshly injected flit left the source host's injection queue
    /// `depth` flits deep.
    on_inject_depth(depth: u32; now: u64)
        => [hook_kind::INJECT_DEPTH, depth, 0, 0, 0, false];
    /// A flit was ejected into its destination host; `is_tail` marks the
    /// packet as delivered.
    on_ejected(slot: u32, is_tail: bool; now: u64)
        => [hook_kind::EJECTED, slot, 0, 0, 0, is_tail];
    /// A packet was dropped by a fault (or became unroutable).
    on_dropped(slot: u32; now: u64)
        => [hook_kind::DROPPED, slot, 0, 0, 0, false];
    /// A measured flow completed: `class` is its log2 flow-size class and
    /// `fct_lo`/`fct_hi` the completion time in cycles split into 32-bit
    /// halves (hook arguments are `u32`).
    on_flow_completed(class: u32, fct_lo: u32, fct_hi: u32; now: u64)
        => [hook_kind::FLOW_COMPLETED, class, fct_lo, fct_hi, 0, false];
}

/// A windowed per-index counter table: counts are accumulated into the
/// current window and flushed as sparse `(index, value)` rows when an
/// event lands in a later window. Windows with no events produce no row.
#[derive(Debug, Clone)]
struct WindowTable {
    window: u64,
    cur: u64,
    counts: Vec<u64>,
    touched: Vec<u32>,
    /// Flushed `(window_index, nonzero (index, value) pairs)` rows.
    rows: Vec<(u64, Vec<(u32, u64)>)>,
    /// True when values combine by max instead of addition.
    is_max: bool,
}

impl WindowTable {
    fn new(window: u64, domain: usize, is_max: bool) -> Self {
        WindowTable {
            window,
            cur: 0,
            counts: vec![0; domain],
            touched: Vec::new(),
            rows: Vec::new(),
            is_max,
        }
    }

    #[inline]
    fn roll(&mut self, now: u64) {
        let idx = now / self.window;
        if idx != self.cur {
            self.flush();
            self.cur = idx;
        }
    }

    fn flush(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        let row: Vec<(u32, u64)> = self
            .touched
            .drain(..)
            .map(|i| {
                let v = self.counts[i as usize];
                self.counts[i as usize] = 0;
                (i, v)
            })
            .collect();
        self.rows.push((self.cur, row));
    }

    #[inline]
    fn add(&mut self, now: u64, index: u32, v: u64) {
        self.roll(now);
        let slot = &mut self.counts[index as usize];
        if *slot == 0 {
            self.touched.push(index);
        }
        if self.is_max {
            *slot = (*slot).max(v);
        } else {
            *slot += v;
        }
    }
}

/// Per-packet decomposition state, indexed by simulator slab slot (both
/// engines allocate and retire slots in the same order, so indices agree).
#[derive(Debug, Clone, Copy, Default)]
struct PacketSlot {
    created: u64,
    last: u64,
    queueing: u64,
    credit_stall: u64,
    wire: u64,
    phase: u8,
    class: u8,
    active: bool,
}

/// Aggregates for one `(phase, distance class)` cell.
#[derive(Debug, Clone, Default)]
struct Cell {
    hist: LogHistogram,
    queueing: u64,
    credit_stall: u64,
    wire: u64,
    ejection: u64,
}

/// The enabled telemetry sink. Construct through [`Telemetry::on`]; turn
/// into a [`crate::report::TelemetryReport`] with [`Recorder::finish`].
#[derive(Debug)]
pub struct Recorder {
    cfg: TelemetryConfig,
    topo: TelemetryTopo,
    classes: usize,

    // Windowed time series.
    link_flits: WindowTable,
    vc_depth: WindowTable,
    inj_depth: WindowTable,
    conflicts: WindowTable,
    eject_flits: WindowTable,

    // All-time per-channel aggregates.
    link_flits_total: Vec<u64>,
    link_flits_measured: Vec<u64>,
    link_peak_depth: Vec<u32>,

    // Per-packet decomposition and per-(phase, class) aggregates.
    packets: Vec<PacketSlot>,
    cells: Vec<Cell>,
    created_per_phase: Vec<u64>,
    delivered_per_phase: Vec<u64>,
    dropped_per_phase: Vec<u64>,

    flits_sent_total: u64,
    flits_ejected_total: u64,
    conflicts_total: u64,

    /// Flow-completion-time histograms by log2 flow-size class (class 7 is
    /// open-ended; larger classes clamp into it).
    fct_classes: Vec<LogHistogram>,
}

/// Log2 flow-size classes the recorder slices FCTs into (mirrors the
/// simulator's flow-class bucketing).
const FCT_CLASSES: usize = 8;

impl Recorder {
    /// Build a recorder for the given configuration and network.
    ///
    /// # Panics
    /// Panics when the configuration is invalid ([`TelemetryConfig::validate`]).
    pub fn new(cfg: TelemetryConfig, topo: TelemetryTopo) -> Self {
        cfg.validate();
        let classes = bucket_of((topo.nodes / 2).max(1) as u64) + 1;
        let w = cfg.window;
        let nphases = cfg.phases.len();
        Recorder {
            link_flits: WindowTable::new(w, topo.channels.len(), false),
            vc_depth: WindowTable::new(w, topo.vcs.max(1), true),
            inj_depth: WindowTable::new(w, 1, true),
            conflicts: WindowTable::new(w, topo.nodes, false),
            eject_flits: WindowTable::new(w, 1, false),
            link_flits_total: vec![0; topo.channels.len()],
            link_flits_measured: vec![0; topo.channels.len()],
            link_peak_depth: vec![0; topo.channels.len()],
            packets: Vec::new(),
            cells: vec![Cell::default(); nphases * classes],
            created_per_phase: vec![0; nphases],
            delivered_per_phase: vec![0; nphases],
            dropped_per_phase: vec![0; nphases],
            flits_sent_total: 0,
            flits_ejected_total: 0,
            conflicts_total: 0,
            fct_classes: vec![LogHistogram::default(); FCT_CLASSES],
            classes,
            cfg,
            topo,
        }
    }

    /// Ring-distance class of a `src -> dst` pair: 0 for the same switch,
    /// else `floor(log2(ring_distance)) + 1` — the log-bucketed shortcut
    /// reach, so class `k >= 1` covers ring distances `[2^(k-1), 2^k - 1]`.
    fn class_of(&self, src_sw: u32, dest_sw: u32) -> u8 {
        let n = self.topo.nodes as u32;
        let d = src_sw.abs_diff(dest_sw);
        let ring_dist = d.min(n - d);
        bucket_of(ring_dist as u64) as u8
    }

    fn phase_of(&self, created: u64) -> u8 {
        let mut phase = 0u8;
        for (i, (start, _)) in self.cfg.phases.iter().enumerate() {
            if created >= *start {
                phase = i as u8;
            }
        }
        phase
    }

    fn slot_mut(&mut self, slot: u32) -> &mut PacketSlot {
        let idx = slot as usize;
        if self.packets.len() <= idx {
            self.packets.resize(idx + 1, PacketSlot::default());
        }
        &mut self.packets[idx]
    }

    /// A packet entered the network (slab slot, endpoints, cycle).
    pub fn on_created(&mut self, slot: u32, src_sw: u32, dest_sw: u32, now: u64) {
        let phase = self.phase_of(now);
        let class = self.class_of(src_sw, dest_sw);
        *self.slot_mut(slot) = PacketSlot {
            created: now,
            last: now,
            queueing: 0,
            credit_stall: 0,
            wire: 0,
            phase,
            class,
            active: true,
        };
        self.created_per_phase[phase as usize] += 1;
    }

    /// A head packet won VC allocation (network grant or ejection grant).
    pub fn on_alloc_granted(&mut self, slot: u32, now: u64) {
        let p = &mut self.packets[slot as usize];
        debug_assert!(p.active, "grant for inactive packet slot {slot}");
        p.queueing += now - p.last;
        p.last = now;
    }

    /// A head packet found no free output VC with enough credits at `node`.
    pub fn on_alloc_blocked(&mut self, node: u32, now: u64) {
        self.conflicts.add(now, node, 1);
        self.conflicts_total += 1;
    }

    /// A flit crossed the crossbar onto channel `ch`.
    pub fn on_flit_sent(&mut self, ch: u32, slot: u32, is_tail: bool, now: u64) {
        self.link_flits.add(now, ch, 1);
        self.link_flits_total[ch as usize] += 1;
        if now >= self.topo.measure_start && now < self.topo.measure_end {
            self.link_flits_measured[ch as usize] += 1;
        }
        self.flits_sent_total += 1;
        if is_tail {
            let p = &mut self.packets[slot as usize];
            debug_assert!(p.active, "tail send for inactive packet slot {slot}");
            p.credit_stall += now - p.last;
            p.last = now;
        }
    }

    /// A flit arrived off channel `ch`'s wire into input VC `vc`, leaving
    /// that buffer `depth` flits deep.
    pub fn on_link_arrival(
        &mut self,
        ch: u32,
        vc: u32,
        depth: u32,
        slot: u32,
        is_tail: bool,
        now: u64,
    ) {
        self.vc_depth.add(now, vc, depth as u64);
        let peak = &mut self.link_peak_depth[ch as usize];
        *peak = (*peak).max(depth);
        if is_tail {
            let p = &mut self.packets[slot as usize];
            debug_assert!(p.active, "tail arrival for inactive packet slot {slot}");
            p.wire += now - p.last;
            p.last = now;
        }
    }

    /// A freshly injected flit left the source host's injection queue
    /// `depth` flits deep.
    pub fn on_inject_depth(&mut self, depth: u32, now: u64) {
        self.inj_depth.add(now, 0, depth as u64);
    }

    /// A flit was ejected into its destination host; `is_tail` marks the
    /// packet as delivered.
    pub fn on_ejected(&mut self, slot: u32, is_tail: bool, now: u64) {
        self.eject_flits.add(now, 0, 1);
        self.flits_ejected_total += 1;
        if is_tail {
            let p = &mut self.packets[slot as usize];
            debug_assert!(p.active, "delivery for inactive packet slot {slot}");
            p.active = false;
            let ejection = now - p.last;
            let total = now - p.created;
            debug_assert_eq!(
                p.queueing + p.credit_stall + p.wire + ejection,
                total,
                "decomposition must sum to the packet's latency"
            );
            let (phase, class) = (p.phase as usize, p.class as usize);
            let (q, cs, w) = (p.queueing, p.credit_stall, p.wire);
            let cell = &mut self.cells[phase * self.classes + class];
            cell.hist.record(total);
            cell.queueing += q;
            cell.credit_stall += cs;
            cell.wire += w;
            cell.ejection += ejection;
            self.delivered_per_phase[phase] += 1;
        }
    }

    /// A measured flow completed. `class` is the flow's log2 size class
    /// and `fct_lo`/`fct_hi` the low/high 32-bit halves of its completion
    /// time in cycles (reassembled here; hook arguments are `u32`).
    pub fn on_flow_completed(&mut self, class: u32, fct_lo: u32, fct_hi: u32, _now: u64) {
        let fct = fct_lo as u64 | ((fct_hi as u64) << 32);
        self.fct_classes[(class as usize).min(FCT_CLASSES - 1)].record(fct);
    }

    /// A packet was dropped by a fault (or became unroutable).
    pub fn on_dropped(&mut self, slot: u32, _now: u64) {
        let p = &mut self.packets[slot as usize];
        debug_assert!(p.active, "drop of inactive packet slot {slot}");
        p.active = false;
        self.dropped_per_phase[p.phase as usize] += 1;
    }

    /// Flush the open windows and assemble the final report.
    pub fn finish(mut self, final_cycle: u64) -> crate::report::TelemetryReport {
        use crate::report::*;
        for t in [
            &mut self.link_flits,
            &mut self.vc_depth,
            &mut self.inj_depth,
            &mut self.conflicts,
            &mut self.eject_flits,
        ] {
            t.flush();
        }
        let classes = self.classes;
        let phases = self
            .cfg
            .phases
            .iter()
            .enumerate()
            .map(|(pi, (start, name))| {
                let cells = &self.cells[pi * classes..(pi + 1) * classes];
                let latency_sum: u64 = cells.iter().map(|c| c.hist.sum()).sum();
                PhaseReport {
                    name: name.clone(),
                    start_cycle: *start,
                    created: self.created_per_phase[pi],
                    delivered: self.delivered_per_phase[pi],
                    dropped: self.dropped_per_phase[pi],
                    latency_sum_cycles: latency_sum,
                    queueing_cycles: cells.iter().map(|c| c.queueing).sum(),
                    credit_stall_cycles: cells.iter().map(|c| c.credit_stall).sum(),
                    wire_cycles: cells.iter().map(|c| c.wire).sum(),
                    ejection_cycles: cells.iter().map(|c| c.ejection).sum(),
                    classes: cells
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.hist.count() > 0)
                        .map(|(ci, c)| ClassReport {
                            class: ci as u32,
                            count: c.hist.count(),
                            p50: c.hist.quantile(0.50),
                            p95: c.hist.quantile(0.95),
                            p99: c.hist.quantile(0.99),
                            max: c.hist.max(),
                            latency_sum_cycles: c.hist.sum(),
                            buckets: c.hist.buckets().to_vec(),
                        })
                        .collect(),
                }
            })
            .collect();
        let fct = self
            .fct_classes
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(ci, h)| FctClassReport {
                class: ci as u32,
                count: h.count(),
                p50: h.quantile(0.50),
                p99: h.quantile(0.99),
                max: h.max(),
                fct_sum_cycles: h.sum(),
                buckets: h.buckets().to_vec(),
            })
            .collect();
        let links = self
            .topo
            .channels
            .iter()
            .enumerate()
            .map(|(ch, d)| LinkReport {
                channel: ch as u32,
                src: d.src,
                dst: d.dst,
                ring: d.ring,
                flits: self.link_flits_total[ch],
                measured_flits: self.link_flits_measured[ch],
                peak_occupancy: self.link_peak_depth[ch],
            })
            .collect();
        let series = [
            ("link_flits", self.link_flits.rows),
            ("vc_depth_max", self.vc_depth.rows),
            ("inj_depth_max", self.inj_depth.rows),
            ("alloc_conflicts", self.conflicts.rows),
            ("eject_flits", self.eject_flits.rows),
        ]
        .into_iter()
        .map(|(name, rows)| Series {
            metric: name.to_string(),
            rows,
        })
        .collect();
        TelemetryReport {
            window_cycles: self.cfg.window,
            final_cycle,
            nodes: self.topo.nodes,
            vcs: self.topo.vcs,
            measure_start: self.topo.measure_start,
            measure_end: self.topo.measure_end,
            phases,
            fct,
            links,
            series,
            flits_sent_total: self.flits_sent_total,
            flits_ejected_total: self.flits_ejected_total,
            alloc_conflicts_total: self.conflicts_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> TelemetryTopo {
        TelemetryTopo {
            nodes: 8,
            vcs: 2,
            channels: vec![
                ChannelDesc {
                    src: 0,
                    dst: 1,
                    ring: true,
                },
                ChannelDesc {
                    src: 1,
                    dst: 4,
                    ring: false,
                },
            ],
            measure_start: 10,
            measure_end: 100,
        }
    }

    #[test]
    fn decomposition_sums_exactly() {
        let mut r = Recorder::new(TelemetryConfig::windowed(16), topo());
        // created 0, alloc 5 (q 5), tail send 9 (cs 4), arrival 11 (wire 2),
        // alloc 14 (q 3), eject tail 20 (ej 6) -> total 20.
        r.on_created(0, 0, 4, 0);
        r.on_alloc_granted(0, 5);
        r.on_flit_sent(1, 0, true, 9);
        r.on_link_arrival(1, 0, 1, 0, true, 11);
        r.on_alloc_granted(0, 14);
        r.on_ejected(0, true, 20);
        let rep = r.finish(32);
        let p = &rep.phases[0];
        assert_eq!(p.delivered, 1);
        assert_eq!(p.queueing_cycles, 8);
        assert_eq!(p.credit_stall_cycles, 4);
        assert_eq!(p.wire_cycles, 2);
        assert_eq!(p.ejection_cycles, 6);
        assert_eq!(p.latency_sum_cycles, 20);
        // src 0 -> dst 4 on an 8-ring: distance 4, class 3.
        assert_eq!(p.classes[0].class, 3);
    }

    #[test]
    fn phases_partition_by_creation_cycle() {
        let cfg = TelemetryConfig::windowed(8).with_phases(&[(0, "pre"), (50, "post")]);
        let mut r = Recorder::new(cfg, topo());
        r.on_created(0, 0, 1, 10);
        r.on_alloc_granted(0, 12);
        r.on_ejected(0, true, 20);
        r.on_created(0, 0, 1, 60);
        r.on_alloc_granted(0, 61);
        r.on_ejected(0, true, 70);
        let rep = r.finish(80);
        assert_eq!(rep.phases[0].name, "pre");
        assert_eq!(rep.phases[0].delivered, 1);
        assert_eq!(rep.phases[1].name, "post");
        assert_eq!(rep.phases[1].delivered, 1);
        assert_eq!(rep.phases[1].latency_sum_cycles, 10);
    }

    #[test]
    fn windows_flush_sparsely() {
        let mut r = Recorder::new(TelemetryConfig::windowed(10), topo());
        r.on_created(0, 0, 1, 0);
        r.on_flit_sent(0, 0, false, 3); // window 0
        r.on_flit_sent(0, 0, false, 35); // window 3 (1 and 2 silent)
        r.on_flit_sent(1, 0, true, 36);
        let rep = r.finish(40);
        let s = rep
            .series
            .iter()
            .find(|s| s.metric == "link_flits")
            .unwrap();
        assert_eq!(
            s.rows,
            vec![(0, vec![(0, 1)]), (3, vec![(0, 1), (1, 1)])],
            "only touched windows appear, indices sorted"
        );
        assert_eq!(rep.flits_sent_total, 3);
        // measured window is [10, 100): only the two late flits count.
        assert_eq!(rep.links[0].measured_flits, 1);
        assert_eq!(rep.links[0].flits, 2);
    }

    #[test]
    fn dropped_packets_never_reach_histograms() {
        let mut r = Recorder::new(TelemetryConfig::windowed(16), topo());
        r.on_created(0, 0, 2, 0);
        r.on_alloc_granted(0, 4);
        r.on_dropped(0, 6);
        let rep = r.finish(10);
        assert_eq!(rep.phases[0].created, 1);
        assert_eq!(rep.phases[0].dropped, 1);
        assert_eq!(rep.phases[0].delivered, 0);
        assert!(rep.phases[0].classes.is_empty());
    }

    #[test]
    fn flow_completions_aggregate_by_class() {
        let mut r = Recorder::new(TelemetryConfig::windowed(16), topo());
        r.on_flow_completed(0, 12, 0, 20);
        r.on_flow_completed(0, 20, 0, 30);
        // 64-bit FCT reassembly: lo=1, hi=1 -> 2^32 + 1.
        r.on_flow_completed(3, 1, 1, 40);
        // Out-of-range class clamps into the open-ended last class.
        r.on_flow_completed(99, 5, 0, 50);
        let rep = r.finish(60);
        assert_eq!(rep.fct.len(), 3);
        assert_eq!(rep.fct[0].class, 0);
        assert_eq!(rep.fct[0].count, 2);
        assert_eq!(rep.fct[0].fct_sum_cycles, 32);
        assert_eq!(rep.fct[1].class, 3);
        assert_eq!(rep.fct[1].max, (1u64 << 32) + 1);
        assert_eq!(rep.fct[2].class, 7);
        assert_eq!(rep.fct[2].count, 1);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn zero_window_rejected() {
        Recorder::new(
            TelemetryConfig {
                window: 0,
                phases: vec![(0, "all".into())],
            },
            topo(),
        );
    }
}
