//! # dsn-telemetry — zero-cost-when-off observability for the DSN simulator
//!
//! A recorder the flit-level simulator drives through hooks placed in its
//! *shared* mutation helpers, so the dense and event scheduling cores emit
//! bit-identical telemetry (and bit-identical `RunStats` whether telemetry
//! is on or off). The subsystem collects:
//!
//! * **Windowed time series** — per-link flit counts, per-VC peak buffer
//!   depth, injection-queue peak depth, per-switch allocation conflicts,
//!   and ejected flits, in sparse fixed-width windows;
//! * **Latency histograms** — deterministic log-bucketed distributions
//!   (p50/p95/p99/max) per src→dst ring-distance class and per traffic
//!   phase ([`hist::LogHistogram`]);
//! * **Latency decomposition** — each delivered packet's latency split
//!   exactly into queueing / credit-stall / wire / ejection cycles by gap
//!   attribution ([`recorder`] module docs);
//! * **Exporters** — stable-schema JSON (`"dsn-telemetry/v2"`), long-format
//!   CSV time series, and a terminal link-utilization heatmap keyed by ring
//!   position ([`report::TelemetryReport`]).
//!
//! The crate is dependency-free and knows nothing about the simulator; the
//! simulator hands it a [`TelemetryTopo`] description at construction and
//! calls hooks. When disabled ([`Telemetry::Off`]) every hook is an inlined
//! variant check — zero measurable overhead (pinned by a Criterion row).
//!
//! The older per-packet [`trace::PacketTracer`] lives here too (folded in
//! from the simulator crate, which re-exports it at its root).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod recorder;
pub mod report;
pub mod trace;

pub use hist::{bucket_of, bucket_upper_bound, LogHistogram};
pub use recorder::{
    hook_kind, ChannelDesc, HookEvent, Recorder, Telemetry, TelemetryConfig, TelemetryTopo,
};
pub use report::{ClassReport, LinkReport, PhaseReport, Series, TelemetryReport, SCHEMA};
pub use trace::{PacketTracer, TraceEvent, TraceRecord};
