//! Optional per-packet event tracing: records injection, each hop's
//! VC-allocation and tail departure, and final delivery, so latency can be
//! decomposed into queueing vs pipeline vs serialization. Tracing is off
//! by default (zero overhead beyond an `Option` check) and meant for small
//! diagnostic runs, not full sweeps.
//!
//! This module was folded in from the simulator crate so the workspace has
//! a single tracing/telemetry entry point; `dsn_sim` re-exports the types
//! at its root. Switch ids are plain `usize`, matching `dsn_core::NodeId`.

/// One recorded event in a packet's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Packet enqueued at its source host.
    Injected {
        /// Source switch.
        src_sw: usize,
        /// Destination switch.
        dest_sw: usize,
    },
    /// Head flit won VC allocation toward the given channel/VC.
    VcAllocated {
        /// Switch where allocation happened.
        at: usize,
        /// Directed channel granted.
        channel: usize,
        /// Virtual channel granted.
        vc: u8,
    },
    /// Tail flit left a switch over the given channel.
    TailSent {
        /// Switch the tail departed from.
        at: usize,
        /// Directed channel used.
        channel: usize,
    },
    /// Tail flit ejected at the destination.
    Delivered {
        /// Destination switch.
        at: usize,
    },
    /// Packet dropped by a fault (link/switch death or unroutable on the
    /// survivor graph).
    Dropped,
}

/// A `(cycle, packet, event)` record.
pub type TraceRecord = (u64, u32, TraceEvent);

/// Collects trace records for the packets selected by a predicate.
#[derive(Debug)]
pub struct PacketTracer {
    /// Only packets with `id % sample == 0` are traced (1 = all).
    sample: u32,
    records: Vec<TraceRecord>,
}

impl PacketTracer {
    /// Trace every `sample`-th packet (1 = every packet).
    ///
    /// # Panics
    /// Panics if `sample == 0`.
    pub fn new(sample: u32) -> Self {
        assert!(sample >= 1, "sample must be >= 1");
        PacketTracer {
            sample,
            records: Vec::new(),
        }
    }

    /// Whether this packet id is traced.
    #[inline]
    pub fn traces(&self, packet: u32) -> bool {
        packet.is_multiple_of(self.sample)
    }

    /// Record an event (no-op if the packet is not sampled).
    #[inline]
    pub fn record(&mut self, cycle: u64, packet: u32, event: TraceEvent) {
        if self.traces(packet) {
            self.records.push((cycle, packet, event));
        }
    }

    /// All records in chronological (insertion) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records for one packet, in order.
    pub fn packet_timeline(&self, packet: u32) -> Vec<TraceRecord> {
        self.records
            .iter()
            .filter(|&&(_, p, _)| p == packet)
            .copied()
            .collect()
    }

    /// Decompose one delivered packet's latency:
    /// `(injection_to_first_alloc, network_transit, total)` in cycles.
    /// Returns `None` when the packet was not traced or not delivered.
    pub fn latency_breakdown(&self, packet: u32) -> Option<(u64, u64, u64)> {
        let timeline = self.packet_timeline(packet);
        let injected = timeline.iter().find_map(|&(c, _, e)| match e {
            TraceEvent::Injected { .. } => Some(c),
            _ => None,
        })?;
        let first_alloc = timeline.iter().find_map(|&(c, _, e)| match e {
            TraceEvent::VcAllocated { .. } => Some(c),
            _ => None,
        })?;
        let delivered = timeline.iter().find_map(|&(c, _, e)| match e {
            TraceEvent::Delivered { .. } => Some(c),
            _ => None,
        })?;
        Some((
            first_alloc - injected,
            delivered - first_alloc,
            delivered - injected,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_filters() {
        let mut t = PacketTracer::new(2);
        t.record(
            0,
            0,
            TraceEvent::Injected {
                src_sw: 0,
                dest_sw: 1,
            },
        );
        t.record(
            1,
            1,
            TraceEvent::Injected {
                src_sw: 0,
                dest_sw: 1,
            },
        );
        t.record(
            2,
            2,
            TraceEvent::Injected {
                src_sw: 0,
                dest_sw: 1,
            },
        );
        assert_eq!(t.records().len(), 2);
        assert!(t.traces(0) && !t.traces(1) && t.traces(2));
    }

    #[test]
    fn breakdown_arithmetic() {
        let mut t = PacketTracer::new(1);
        t.record(
            10,
            7,
            TraceEvent::Injected {
                src_sw: 0,
                dest_sw: 3,
            },
        );
        t.record(
            14,
            7,
            TraceEvent::VcAllocated {
                at: 0,
                channel: 2,
                vc: 1,
            },
        );
        t.record(20, 7, TraceEvent::TailSent { at: 0, channel: 2 });
        t.record(55, 7, TraceEvent::Delivered { at: 3 });
        assert_eq!(t.latency_breakdown(7), Some((4, 41, 45)));
        assert_eq!(t.latency_breakdown(8), None);
        assert_eq!(t.packet_timeline(7).len(), 4);
    }

    #[test]
    #[should_panic(expected = "sample must be >= 1")]
    fn zero_sample_rejected() {
        PacketTracer::new(0);
    }
}
