//! Bit-equivalence and accounting gates for the flow-level workload
//! layer (heavy-tailed open-loop flows, synchronized incast waves,
//! dependency-staged collectives): all three engines — dense reference,
//! event core, sharded driver at every worker count — must produce the
//! same `RunStats` bit for bit on every new workload class, with
//! telemetry on they must export byte-identical artifacts (the per-class
//! `"fct"` section included), the size-CDF samplers must converge to
//! their analytic moments, and the per-flow accounting must match
//! hand-computed oracles.

use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultPlan, FlowArrivals, FlowSizeDist, RetryPolicy, RunStats,
    SimConfig, SimRouting, Simulator, StagedSpec, TrafficPattern, Workload,
};
use std::sync::Arc;

/// Worker counts the sharded engine is checked under (one-shard fallback,
/// an even cut, more shards than cores).
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Short-horizon config so the dense reference stays fast in debug builds.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 6_000,
        ..SimConfig::test_small()
    }
}

/// Run the identical scenario on the dense reference, the event core and
/// the sharded driver at every worker count, demanding bit-identical
/// stats everywhere; returns them for scenario-specific assertions.
fn assert_three_engines_agree(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let dense = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Dense,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    )
    .run();
    assert!(
        dense.total_packets_all_time > 0,
        "{label}: vacuous scenario"
    );
    let event = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Event,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    )
    .run();
    assert_eq!(dense, event, "{label}: event core diverged from dense");
    for workers in WORKER_COUNTS {
        let sharded = Simulator::with_workload(
            g.clone(),
            SimConfig {
                engine: EngineKind::Sharded,
                workers,
                ..cfg.clone()
            },
            routing.clone(),
            workload.clone(),
            seed,
        )
        .run();
        assert_eq!(
            dense, sharded,
            "{label}: sharded ({workers} workers) diverged from dense"
        );
    }
    dense
}

fn small_dsn() -> Arc<Graph> {
    Arc::new(Dsn::new(16, 3).unwrap().into_graph())
}

fn websearch_flows(rate: f64) -> Workload {
    Workload::Flows {
        pattern: TrafficPattern::Uniform,
        sizes: FlowSizeDist::websearch(),
        arrivals: FlowArrivals::Poisson {
            flows_per_cycle: rate,
        },
    }
}

// ---------------------------------------------------------------- engines

#[test]
fn websearch_poisson_flows_three_engines_agree() {
    let g = small_dsn();
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        websearch_flows(0.002),
        41,
        "dsn16 websearch poisson flows",
    );
    assert!(stats.flows_started > 0, "window must see flow starts");
    assert!(stats.flows_completed > 0, "some flows must complete");
}

#[test]
fn zipf_hot_host_flows_three_engines_agree() {
    // The skewed hot-host destination mix: host 0 is the hot sink, so
    // the three engines must agree while one corner of the network
    // carries most of the load.
    let g = small_dsn();
    let cfg = cfg();
    let hosts = g.node_count() * cfg.hosts_per_switch;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Flows {
        pattern: TrafficPattern::zipf(hosts, 1.2),
        sizes: FlowSizeDist::websearch(),
        arrivals: FlowArrivals::Poisson {
            flows_per_cycle: 0.002,
        },
    };
    let stats =
        assert_three_engines_agree(g, cfg, routing, workload, 47, "dsn16 zipf hot-host flows");
    assert!(stats.flows_started > 0, "window must see flow starts");
    assert!(stats.flows_completed > 0, "some flows must complete");
}

#[test]
fn hadoop_onoff_flows_three_engines_agree() {
    let g = small_dsn();
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Flows {
        pattern: TrafficPattern::Uniform,
        sizes: FlowSizeDist::hadoop(),
        arrivals: FlowArrivals::OnOff {
            on_rate: 0.01,
            off_rate: 0.0005,
            mean_burst: 4.0,
        },
    };
    let stats =
        assert_three_engines_agree(g, cfg, routing, workload, 43, "dsn16 hadoop on-off flows");
    assert!(stats.flows_started_all_time > 0);
}

#[test]
fn pareto_flows_three_engines_agree() {
    let g = small_dsn();
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Flows {
        pattern: TrafficPattern::Transpose,
        sizes: FlowSizeDist::Pareto {
            scale: 1.0,
            shape: 1.5,
        },
        arrivals: FlowArrivals::Poisson {
            flows_per_cycle: 0.003,
        },
    };
    assert_three_engines_agree(
        g,
        cfg,
        routing,
        workload,
        47,
        "dsn16 pareto transpose flows",
    );
}

#[test]
fn incast_three_engines_agree() {
    let g = small_dsn();
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Incast {
        fanin: 8,
        request_packets: 3,
        wave_period: 600,
    };
    let stats = assert_three_engines_agree(g, cfg, routing, workload, 53, "dsn16 incast 8-to-1");
    assert!(stats.flows_completed > 0, "incast waves must complete");
}

#[test]
fn staged_ring_allreduce_three_engines_agree() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.warmup_cycles = 0;
    cfg.drain_cycles = 120_000; // ring has 2(N-1) serial stages
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let spec = StagedSpec::ring_allreduce(hosts, 2);
    let total = spec.total_packets();
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        Workload::Staged(spec),
        59,
        "dsn16 ring allreduce",
    );
    assert!(stats.completion_cycle.is_some(), "collective must finish");
    assert_eq!(
        stats.total_packets_all_time, total,
        "staged run must inject exactly the spec's packets"
    );
}

#[test]
fn staged_recursive_doubling_three_engines_agree() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.warmup_cycles = 0;
    cfg.drain_cycles = 60_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let spec = StagedSpec::recursive_doubling_allreduce(hosts, 2);
    let total = spec.total_packets();
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        Workload::Staged(spec),
        61,
        "dsn16 recursive-doubling allreduce",
    );
    assert!(stats.completion_cycle.is_some(), "collective must finish");
    assert_eq!(stats.total_packets_all_time, total);
}

#[test]
fn staged_all_to_all_three_engines_agree() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.warmup_cycles = 0;
    cfg.drain_cycles = 120_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let spec = StagedSpec::pipelined_all_to_all(hosts, 1);
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        Workload::Staged(spec),
        67,
        "dsn16 pipelined all-to-all",
    );
    assert!(stats.completion_cycle.is_some(), "collective must finish");
}

/// Flow workloads under a link-flap plan with retries: fault plans fall
/// back to the single-thread event path, which must still match the dense
/// reference and every sharded worker count bit for bit.
#[test]
fn faulted_flows_three_engines_agree() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::flap(3, 700, 400, 3).with_retry(RetryPolicy::new(2, 150, 50));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        websearch_flows(0.004),
        71,
        "dsn16 websearch flows under link flaps",
    );
    assert!(stats.flows_started > 0);
}

/// With telemetry on, every engine must export byte-identical artifacts —
/// including the new per-class `"fct"` section fed by the
/// `FLOW_COMPLETED` hook (replayed from shard logs on the sharded path).
#[test]
fn flow_telemetry_byte_identical_across_engines() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.telemetry = Some(cfg.standard_telemetry(512));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = websearch_flows(0.004);

    let (dense_stats, dense_rep) = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Dense,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        73,
    )
    .run_with_telemetry();
    let dense_rep = dense_rep.expect("telemetry was configured");
    let json = dense_rep.to_json();
    assert!(
        json.contains("\"fct\": ["),
        "flow run must emit the fct telemetry section"
    );
    assert!(
        dense_stats.flows_completed > 0,
        "scenario must complete flows"
    );

    let mut runs: Vec<(String, SimConfig)> = vec![(
        "event".into(),
        SimConfig {
            engine: EngineKind::Event,
            ..cfg.clone()
        },
    )];
    for workers in WORKER_COUNTS {
        runs.push((
            format!("sharded/{workers}"),
            SimConfig {
                engine: EngineKind::Sharded,
                workers,
                ..cfg.clone()
            },
        ));
    }
    for (label, run_cfg) in runs {
        let (stats, rep) =
            Simulator::with_workload(g.clone(), run_cfg, routing.clone(), workload.clone(), 73)
                .run_with_telemetry();
        let rep = rep.expect("telemetry was configured");
        assert_eq!(dense_stats, stats, "{label}: stats diverged");
        assert_eq!(json, rep.to_json(), "{label}: JSON diverged");
        assert_eq!(dense_rep.to_csv(), rep.to_csv(), "{label}: CSV diverged");
    }
}

// ------------------------------------------------------------ accounting

/// Fault-free fixed-size flows with a drain long enough for every flow to
/// finish: the per-flow packet accounting must balance exactly — every
/// created packet is flow-tagged and delivered, and every started flow
/// completes.
#[test]
fn flow_packet_accounting_balances_exactly() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.drain_cycles = 30_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Flows {
        pattern: TrafficPattern::Uniform,
        sizes: FlowSizeDist::Fixed(4),
        arrivals: FlowArrivals::Poisson {
            flows_per_cycle: 0.001,
        },
    };
    let stats = Simulator::with_workload(
        g,
        SimConfig {
            engine: EngineKind::Event,
            ..cfg
        },
        routing,
        workload,
        79,
    )
    .run();
    assert!(stats.flows_started > 0);
    // Arrivals run through the drain (open-loop convention), so a flow
    // starting near the horizon may not finish; but every *measured* flow
    // has the whole 30k-cycle drain to complete in.
    assert_eq!(
        stats.flows_completed, stats.flows_started,
        "every measured fixed-size flow must complete within the drain"
    );
    let stragglers = stats.flows_started_all_time - stats.flows_completed_all_time;
    assert!(
        stragglers <= 3,
        "only flows arriving at the very end of the drain may miss it \
         ({stragglers} stragglers)"
    );
    // Delivered flow packets bracket exactly: 4 per completed flow plus
    // at most 4 partial packets per straggler — and every packet in a
    // pure-flow run is flow-tagged.
    assert!(
        stats.flow_packets_delivered >= stats.flows_completed_all_time * 4
            && stats.flow_packets_delivered <= stats.flows_started_all_time * 4,
        "delivered flow packets must equal flows x fixed size (+ partials)"
    );
    assert!(stats.flow_packets_delivered <= stats.total_packets_all_time);
}

/// Single-flow FCT oracle on an otherwise idle network: a `fanin = 1`
/// incast wave with one `k`-packet request. The source paces packets one
/// serialization time apart, so the flow's FCT must scale as
/// `FCT(k) = FCT(1) + (k - 1) * packet_flits` exactly.
#[test]
fn single_flow_fct_scales_with_pacing() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.warmup_cycles = 0; // wave 0 fires at cycle 0, inside the window
    cfg.drain_cycles = 30_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let fct = |k: u32| -> u64 {
        let stats = Simulator::with_workload(
            g.clone(),
            SimConfig {
                engine: EngineKind::Event,
                ..cfg.clone()
            },
            routing.clone(),
            Workload::Incast {
                fanin: 1,
                request_packets: k,
                wave_period: 1_000_000, // only wave 0 fires
            },
            83,
        )
        .run();
        assert_eq!(stats.flows_completed, 1, "exactly one measured flow");
        stats.fct_max_cycles
    };
    let base = fct(1);
    assert!(base > 0, "one-packet flow has a positive FCT");
    // Each extra packet costs one fixed increment: the pacing gap plus
    // the per-packet pipeline overhead (route + serialization of the
    // follow-up head). The increment must be at least the pacing gap and
    // exactly linear in the packet count.
    let step = fct(2) - base;
    assert!(
        step >= cfg.packet_flits as u64,
        "per-packet FCT step {step} below the pacing gap"
    );
    assert_eq!(
        fct(5),
        base + 4 * step,
        "FCT must scale linearly with flow size on an idle network"
    );
}

/// Incast accounting: every wave inside the window starts exactly `fanin`
/// flows of `request_packets` packets each.
#[test]
fn incast_wave_accounting() {
    let g = small_dsn();
    let mut cfg = cfg();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 2_000;
    cfg.drain_cycles = 30_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = Simulator::with_workload(
        g,
        SimConfig {
            engine: EngineKind::Event,
            ..cfg
        },
        routing,
        Workload::Incast {
            fanin: 6,
            request_packets: 2,
            wave_period: 500,
        },
        89,
    )
    .run();
    // Waves at 0, 500, 1000, 1500 are measured: 4 waves x 6 senders.
    assert_eq!(stats.flows_started, 24, "4 measured waves x fanin 6");
    assert_eq!(stats.flows_completed, 24, "idle-network waves all finish");
    assert_eq!(
        stats.flow_packets_delivered,
        stats.flows_started_all_time * 2
    );
}

// ----------------------------------------------------- CDF convergence

/// Empirical moments of the size samplers must converge to the analytic
/// `mean()` / `quantile()` of the same distribution.
fn assert_converges(dist: FlowSizeDist, label: &str, tol: f64) {
    let n = 200_000;
    let samples = dist.samples(0xCDF, n);
    assert_eq!(samples.len(), n);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let analytic = dist.mean();
    assert!(
        (mean - analytic).abs() / analytic < tol,
        "{label}: empirical mean {mean:.1} vs analytic {analytic:.1}"
    );
    let mut sorted = samples;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.50, 0.99] {
        let emp = sorted[(q * n as f64) as usize];
        let ana = dist.quantile(q);
        assert!(
            (emp - ana).abs() / ana < tol,
            "{label}: empirical p{:.0} {emp:.1} vs analytic {ana:.1}",
            q * 100.0
        );
    }
}

#[test]
fn websearch_cdf_converges() {
    assert_converges(FlowSizeDist::websearch(), "websearch", 0.03);
}

#[test]
fn hadoop_cdf_converges() {
    assert_converges(FlowSizeDist::hadoop(), "hadoop", 0.05);
}

#[test]
fn pareto_converges() {
    // shape 2.5 keeps the variance finite so the mean converges at this n.
    assert_converges(
        FlowSizeDist::Pareto {
            scale: 10.0,
            shape: 2.5,
        },
        "pareto",
        0.05,
    );
}

#[test]
fn cdf_sampling_is_seed_deterministic() {
    let d = FlowSizeDist::websearch();
    assert_eq!(
        d.samples(7, 1_000),
        d.samples(7, 1_000),
        "same seed must replay the same stream"
    );
    assert_ne!(
        d.samples(7, 1_000),
        d.samples(8, 1_000),
        "different seeds must decorrelate"
    );
}

// -------------------------------------------------------------- CI smoke

/// CI smoke: a 30k-cycle three-engine check of the flow layer on a
/// paper-sized DSN with the paper's full-size delays, kept as one named
/// test so the workflow can run exactly this gate.
#[test]
fn smoke_30k_flows_dense_vs_event_vs_sharded() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = assert_three_engines_agree(
        g,
        cfg,
        routing,
        websearch_flows(2.0e-5),
        2024,
        "smoke dsn64-x5 websearch flows 30k cycles",
    );
    assert!(stats.flows_started > 0);
    assert!(stats.flows_completed > 0);
    assert!(!stats.deadlock_suspected);
}
