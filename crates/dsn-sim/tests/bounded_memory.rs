//! Long-horizon memory-boundedness gate: with the free-list packet slab,
//! a near-saturation open-loop run creates tens of thousands of packets
//! but only ever holds the in-flight window live, so peak memory is a
//! small constant independent of the horizon.

use dsn_core::ring::Ring;
use dsn_sim::{AdaptiveEscape, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

fn long_run(total_cycles: u64, rate: f64) -> dsn_sim::RunStats {
    let g = Arc::new(Ring::new(8).unwrap().into_graph());
    let cfg = SimConfig {
        warmup_cycles: total_cycles / 20,
        measure_cycles: total_cycles * 9 / 10,
        drain_cycles: total_cycles / 20,
        ..SimConfig::test_small()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, 99).run()
}

#[test]
fn peak_in_flight_stays_bounded_over_500k_cycles() {
    let stats = long_run(500_000, 0.02);
    assert!(
        stats.total_packets_all_time > 50_000,
        "horizon too short: only {} packets",
        stats.total_packets_all_time
    );
    assert!(
        stats.delivery_ratio() > 0.95,
        "ran past saturation (ratio {}); the bound below would be vacuous",
        stats.delivery_ratio()
    );
    // The live window is set by the bandwidth-delay product, not the
    // horizon: far below even 1% of the packets ever created.
    assert!(
        stats.peak_in_flight_packets < stats.total_packets_all_time / 100,
        "peak in-flight {} vs {} created — slab not recycling?",
        stats.peak_in_flight_packets,
        stats.total_packets_all_time
    );
    // Buffered flits are bounded by what the peak in-flight packets can
    // occupy across their source queues and network buffers.
    assert!(stats.peak_buffered_flits > 0);
    assert!(
        stats.peak_buffered_flits <= stats.peak_in_flight_packets * 4,
        "peak buffered {} flits for {} in-flight packets (4-flit packets)",
        stats.peak_buffered_flits,
        stats.peak_in_flight_packets
    );
}

#[test]
fn doubling_the_horizon_does_not_grow_the_peak() {
    let short = long_run(60_000, 0.02);
    let long = long_run(120_000, 0.02);
    assert!(long.total_packets_all_time > short.total_packets_all_time);
    // Steady state: peak in-flight is a property of the load point, not
    // the run length (allow slack for the stochastic high-water mark).
    assert!(
        long.peak_in_flight_packets <= short.peak_in_flight_packets * 2,
        "peak grew with horizon: {} -> {}",
        short.peak_in_flight_packets,
        long.peak_in_flight_packets
    );
}
