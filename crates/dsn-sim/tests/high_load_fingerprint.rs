//! CI smoke gate for the hot path: one 30k-cycle high-load row (DSN-5-64,
//! uniform traffic at 11 Gbit/s/host, event engine, flat routing tables)
//! against a pinned `RunStats` fingerprint. Every optimization to the
//! allocation hot path — SoA state, flat candidate tables, the routing
//! cache — is required to be *bit-identical*, so any drift in these
//! numbers means a semantics change, not a perf change, and the test
//! fails loudly.
//!
//! If a deliberate semantic change lands (e.g. a new arbitration rule),
//! regenerate the pins with:
//! `cargo test --release -p dsn-sim --test high_load_fingerprint -- --nocapture`
//! (the failing assertions print the measured values).

use dsn_core::dsn::Dsn;
use dsn_sim::{AdaptiveEscape, EngineKind, RoutingTables, SimConfig, Simulator, TrafficPattern};
use std::sync::Arc;

const SEED: u64 = 2024;

/// Pinned fingerprint of the run, generated on the reference
/// implementation. Float pins use `to_bits()`: the run is deterministic
/// down to the last ulp.
const PIN_DELIVERED: u64 = 13111;
const PIN_CREATED: u64 = 13111;
const PIN_TOTAL_ALL_TIME: u64 = 26376;
const PIN_P99_LATENCY_CYCLES: u64 = 592;
const PIN_PEAK_IN_FLIGHT: u64 = 317;
const PIN_AVG_LATENCY_NS_BITS: u64 = 0x4088bdc7d4d5deca;
const PIN_ACCEPTED_GBPS_BITS: u64 = 0x402599374bc6a7f0;
const PIN_MEAN_UTIL_BITS: u64 = 0x3fdbff639a2b5595;

#[test]
fn high_load_event_flat_matches_pinned_fingerprint() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        engine: EngineKind::Event,
        routing_tables: RoutingTables::Flat,
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(11.0);
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, SEED).run();

    println!(
        "measured: delivered={} created={} total={} p99={} peak_in_flight={} \
         avg_latency_ns_bits={:#018x} accepted_gbps_bits={:#018x} mean_util_bits={:#018x}",
        stats.delivered_packets,
        stats.created_packets,
        stats.total_packets_all_time,
        stats.p99_latency_cycles,
        stats.peak_in_flight_packets,
        stats.avg_latency_ns.to_bits(),
        stats.accepted_gbps_per_host.to_bits(),
        stats.mean_channel_utilization.to_bits(),
    );
    assert_eq!(stats.delivered_packets, PIN_DELIVERED);
    assert_eq!(stats.created_packets, PIN_CREATED);
    assert_eq!(stats.total_packets_all_time, PIN_TOTAL_ALL_TIME);
    assert_eq!(stats.p99_latency_cycles, PIN_P99_LATENCY_CYCLES);
    assert_eq!(stats.peak_in_flight_packets, PIN_PEAK_IN_FLIGHT);
    assert_eq!(stats.avg_latency_ns.to_bits(), PIN_AVG_LATENCY_NS_BITS);
    assert_eq!(
        stats.accepted_gbps_per_host.to_bits(),
        PIN_ACCEPTED_GBPS_BITS
    );
    assert_eq!(stats.mean_channel_utilization.to_bits(), PIN_MEAN_UTIL_BITS);
    assert!(!stats.deadlock_suspected);
}
