//! Bit-equivalence gate for the fault-injection subsystem: under every
//! fault schedule shape (single link, correlated burst, flapping link,
//! switch death), every salvage policy and every retry policy, the
//! event-driven engine must reproduce the dense reference's `RunStats`
//! *exactly* — drop/salvage/retry counters and post-fault latency floats
//! included. The comparison is `assert_eq!` on the whole struct, so any
//! new `RunStats` field is automatically covered.

use dsn_core::dln::Dln;
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultKind, FaultPlan, RetryPolicy, RunStats, SalvagePolicy,
    SimConfig, SimRouting, Simulator, SourceRouted, TrafficPattern, UpDownRouting, Workload,
};
use std::sync::Arc;

/// Short-horizon config so the dense reference stays fast in debug builds.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        ..SimConfig::test_small()
    }
}

/// Run the identical faulted scenario under both engines and demand
/// bit-identical stats; returns them for scenario-specific assertions.
fn assert_engines_agree(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let dense = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Dense,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    )
    .run();
    let event = Simulator::with_workload(
        g,
        SimConfig {
            engine: EngineKind::Event,
            ..cfg
        },
        routing,
        workload,
        seed,
    )
    .run();
    assert_eq!(dense, event, "{label}: engines diverged under faults");
    assert!(
        dense.total_packets_all_time > 0,
        "{label}: vacuous scenario"
    );
    dense
}

fn open(rate: f64) -> Workload {
    Workload::Open {
        pattern: TrafficPattern::Uniform,
        packets_per_cycle_per_host: rate,
    }
}

// ---------------------------------------------------------------------
// Scripted single-link schedules across the topology × routing matrix.
// ---------------------------------------------------------------------

#[test]
fn single_link_dsn_adaptive_both_policies() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    for policy in [SalvagePolicy::Drop, SalvagePolicy::Salvage] {
        let cfg = SimConfig {
            fault_plan: FaultPlan::single_link(5, 900).with_salvage(policy),
            ..cfg0.clone()
        };
        let stats = assert_engines_agree(
            g.clone(),
            cfg,
            routing.clone(),
            open(0.02),
            42,
            &format!("dsn64 adaptive single-link salvage={}", policy.name()),
        );
        assert!(stats.delivered_packets > 0);
    }
}

#[test]
fn single_link_dsn_updown_with_retries() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg0.vcs));
    for retry in [RetryPolicy::disabled(), RetryPolicy::new(3, 200, 100)] {
        let cfg = SimConfig {
            fault_plan: FaultPlan::single_link(7, 800).with_retry(retry),
            ..cfg0.clone()
        };
        assert_engines_agree(
            g.clone(),
            cfg,
            routing.clone(),
            open(0.015),
            7,
            &format!("dsn64 up*/down* single-link retries={}", retry.max_retries),
        );
    }
}

#[test]
fn single_link_dsn_custom_routing() {
    // DSN-V custom routing: the planned source routes detour around the
    // dead link via the greedy masked-distance ring fallback.
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(SourceRouted::dsn_custom(dsn));
    let cfg = SimConfig {
        vcs: 4,
        fault_plan: FaultPlan::single_link(3, 900).with_retry(RetryPolicy::new(2, 150, 50)),
        ..cfg()
    };
    assert_engines_agree(g, cfg, routing, open(0.01), 11, "dsn64 DSN-V single-link");
}

#[test]
fn single_link_torus_dor_detour() {
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    let routing = Arc::new(SourceRouted::torus_dor(torus));
    let cfg = SimConfig {
        fault_plan: FaultPlan::single_link(2, 700).with_salvage(SalvagePolicy::Salvage),
        ..cfg()
    };
    assert_engines_agree(g, cfg, routing, open(0.012), 13, "torus4x4 DOR single-link");
}

#[test]
fn single_link_dln_adaptive() {
    let g = Arc::new(Dln::new(64, 2).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    let cfg = SimConfig {
        fault_plan: FaultPlan::single_link(9, 1_000),
        ..cfg0
    };
    assert_engines_agree(
        g,
        cfg,
        routing,
        open(0.015),
        17,
        "dln64 adaptive single-link",
    );
}

// ---------------------------------------------------------------------
// Correlated bursts and flapping links.
// ---------------------------------------------------------------------

#[test]
fn burst_dsn_adaptive_both_policies() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    for policy in [SalvagePolicy::Drop, SalvagePolicy::Salvage] {
        let cfg = SimConfig {
            fault_plan: FaultPlan::burst(&[4, 11, 30, 57], 850)
                .with_salvage(policy)
                .with_retry(RetryPolicy::new(2, 120, 60)),
            ..cfg0.clone()
        };
        let stats = assert_engines_agree(
            g.clone(),
            cfg,
            routing.clone(),
            open(0.025),
            23,
            &format!("dsn64 adaptive burst salvage={}", policy.name()),
        );
        assert!(stats.delivered_packets > 0);
    }
}

#[test]
fn flap_dsn_updown() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg0.vcs));
    let cfg = SimConfig {
        fault_plan: FaultPlan::flap(6, 600, 400, 3).with_retry(RetryPolicy::new(4, 100, 50)),
        ..cfg0
    };
    assert_engines_agree(g, cfg, routing, open(0.015), 29, "dsn64 up*/down* flap");
}

#[test]
fn flap_torus_dor() {
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    let routing = Arc::new(SourceRouted::torus_dor(torus));
    let cfg = SimConfig {
        fault_plan: FaultPlan::flap(1, 500, 300, 4).with_salvage(SalvagePolicy::Salvage),
        ..cfg()
    };
    assert_engines_agree(g, cfg, routing, open(0.012), 31, "torus4x4 DOR flap");
}

// ---------------------------------------------------------------------
// Switch death, seeded-random schedules, and closed workloads.
// ---------------------------------------------------------------------

#[test]
fn switch_down_and_recovery_dsn_adaptive() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    let cfg = SimConfig {
        fault_plan: FaultPlan::none()
            .with_event(700, FaultKind::SwitchDown(10))
            .with_event(1_900, FaultKind::SwitchUp(10))
            .with_retry(RetryPolicy::new(3, 150, 80)),
        ..cfg0
    };
    let stats = assert_engines_agree(
        g,
        cfg,
        routing,
        open(0.02),
        37,
        "dsn64 adaptive switch bounce",
    );
    assert!(
        stats.dropped_packets_all_time > 0,
        "a dying switch at load must drop residents"
    );
}

#[test]
fn seeded_random_connected_schedule() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg0 = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    let plan = FaultPlan::random_connected(&g, 0xFA11, 5, 600, 350)
        .with_retry(RetryPolicy::new(3, 150, 80));
    assert_eq!(plan.events.len(), 5, "dsn64 has links to spare");
    let cfg = SimConfig {
        fault_plan: plan,
        ..cfg0
    };
    assert_engines_agree(g, cfg, routing, open(0.02), 41, "dsn64 random-connected x5");
}

#[test]
fn closed_batch_under_single_link() {
    // A closed all-to-all exchange with a mid-batch link death: the batch
    // completes once everything is delivered or definitively dropped, and
    // both engines agree on the makespan.
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let mut cfg0 = cfg();
    cfg0.drain_cycles = 60_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg0.vcs));
    let hosts = 16 * cfg0.hosts_per_switch;
    for retry in [RetryPolicy::disabled(), RetryPolicy::new(3, 200, 100)] {
        let cfg = SimConfig {
            fault_plan: FaultPlan::single_link(2, 150).with_retry(retry),
            ..cfg0.clone()
        };
        let stats = assert_engines_agree(
            g.clone(),
            cfg,
            routing.clone(),
            Workload::all_to_all(hosts),
            3,
            &format!("dsn16 all-to-all faulted retries={}", retry.max_retries),
        );
        assert!(stats.completion_cycle.is_some(), "batch must resolve");
    }
}

/// CI smoke: a 30k-cycle faulted dense-vs-event check on a paper-sized DSN
/// with a seeded connectivity-preserving schedule, salvage and retries all
/// on — one named test so the workflow can run exactly this gate.
#[test]
fn smoke_30k_faulted_dense_vs_event() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    cfg.fault_plan = FaultPlan::random_connected(&g, 2024, 4, 8_000, 3_000)
        .with_salvage(SalvagePolicy::Salvage)
        .with_retry(RetryPolicy::new(3, 500, 250));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    let stats = assert_engines_agree(
        g,
        cfg,
        routing,
        open(rate),
        2024,
        "smoke dsn64-x5 30k cycles faulted",
    );
    assert!(stats.delivered_packets > 0);
    assert!(!stats.deadlock_suspected);
    assert!(stats.post_fault_delivered > 0, "post-fault traffic flowed");
}
