//! Bit-equivalence gate for the two scheduling cores: the event-driven
//! engine must reproduce the dense reference's `RunStats` *exactly* —
//! every counter and every float — across topologies, routings, traffic
//! patterns, open and closed workloads, and a seeded deadlock case. Any
//! divergence means the event core reordered an arbitration or mistimed an
//! event, so the comparison is `assert_eq!` on the whole struct, not a
//! tolerance check.

use dsn_core::dln::Dln;
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_sim::{
    AdaptiveEscape, EngineKind, RunStats, SimConfig, SimRouting, Simulator, SourceRouted,
    TrafficPattern, UpDownRouting, Workload,
};
use std::sync::Arc;

/// Short-horizon config so the dense reference stays fast in debug builds.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        ..SimConfig::test_small()
    }
}

/// Run the identical scenario under both engines and demand bit-identical
/// stats; returns them for extra scenario-specific assertions.
fn assert_engines_agree(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let dense = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Dense,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    )
    .run();
    let event = Simulator::with_workload(
        g,
        SimConfig {
            engine: EngineKind::Event,
            ..cfg
        },
        routing,
        workload,
        seed,
    )
    .run();
    assert_eq!(dense, event, "{label}: engines diverged");
    assert!(
        dense.total_packets_all_time > 0,
        "{label}: vacuous scenario"
    );
    dense
}

fn open(pattern: TrafficPattern, rate: f64) -> Workload {
    Workload::Open {
        pattern,
        packets_per_cycle_per_host: rate,
    }
}

#[test]
fn dsn_adaptive_uniform_low_and_high_load() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    for (rate, label) in [(0.002, "low"), (0.04, "near-saturation")] {
        let stats = assert_engines_agree(
            g.clone(),
            cfg.clone(),
            routing.clone(),
            open(TrafficPattern::Uniform, rate),
            42,
            &format!("dsn64 adaptive uniform {label}"),
        );
        assert!(stats.delivered_packets > 0);
    }
}

#[test]
fn dsn_updown_transpose() {
    // DSN-6-128: p = 7, so x = 6 is the densest shortcut set.
    let g = Arc::new(Dsn::new(128, 6).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg.vcs));
    assert_engines_agree(
        g,
        cfg,
        routing,
        open(TrafficPattern::Transpose, 0.004),
        7,
        "dsn128-x6 up*/down* transpose",
    );
}

#[test]
fn dsn_custom_routing_uniform() {
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(SourceRouted::dsn_custom(dsn));
    // DSN-V levels need the paper's 4 VCs; keep the short test horizon.
    let cfg = SimConfig { vcs: 4, ..cfg() };
    assert_engines_agree(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        11,
        "dsn64 DSN-V custom uniform",
    );
}

#[test]
fn torus_dor_uniform_and_transpose() {
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    for (pattern, label) in [
        (TrafficPattern::Uniform, "uniform"),
        (TrafficPattern::Transpose, "transpose"),
    ] {
        let routing = Arc::new(SourceRouted::torus_dor(torus.clone()));
        assert_engines_agree(
            g.clone(),
            cfg(),
            routing,
            open(pattern, 0.006),
            13,
            &format!("torus4x4 DOR {label}"),
        );
    }
}

#[test]
fn dln_adaptive_uniform() {
    let g = Arc::new(Dln::new(64, 2).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    assert_engines_agree(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        17,
        "dln64 adaptive uniform",
    );
}

#[test]
fn closed_all_to_all_batch() {
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.drain_cycles = 60_000; // room for the batch to finish
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let stats = assert_engines_agree(
        g,
        cfg,
        routing,
        Workload::all_to_all(hosts),
        3,
        "dsn16 all-to-all batch",
    );
    assert!(stats.completion_cycle.is_some(), "batch must complete");
}

#[test]
fn seeded_deadlock_watchdog_case() {
    // The provably-cyclic single-VC basic routing wedges under load; both
    // engines must agree on the whole wedged-run fingerprint, watchdog
    // verdict included.
    let dsn = Arc::new(Dsn::new(60, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let cfg = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 5_000,
        drain_cycles: 5_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(4.0);
    let routing = Arc::new(SourceRouted::dsn_basic_single_vc(dsn));
    let stats = assert_engines_agree(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, rate),
        0xDEAD,
        "dsn60 unsafe 1-VC routing at 4 Gbps",
    );
    assert!(
        stats.deadlock_suspected,
        "expected the watchdog to fire (longest stall {})",
        stats.longest_stall_cycles
    );
}

/// CI smoke: a 30k-cycle dense-vs-event check on a paper-sized DSN, kept
/// as one named test so the workflow can run exactly this gate.
#[test]
fn smoke_30k_dense_vs_event() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    let stats = assert_engines_agree(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, rate),
        2024,
        "smoke dsn64-x5 30k cycles",
    );
    assert!(stats.delivered_packets > 0);
    assert!(!stats.deadlock_suspected);
}
