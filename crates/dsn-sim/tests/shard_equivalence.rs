//! Bit-equivalence gate for the sharded parallel driver: for every worker
//! count the sharded engine must reproduce the single-thread event
//! engine's `RunStats` *exactly* — every counter and every float — across
//! topologies, routings, traffic patterns, open and closed workloads, and
//! with telemetry on it must additionally export byte-identical artifacts
//! (JSON, CSV, heatmap). The partition depends only on `cfg.workers`,
//! never on the machine's thread count, so these gates hold under any
//! `RAYON_NUM_THREADS`.

use dsn_core::dln::Dln;
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultPlan, RetryPolicy, RunStats, SimConfig, SimRouting, Simulator,
    SourceRouted, TrafficPattern, UpDownRouting, Workload,
};
use std::sync::Arc;

/// Worker counts every scenario is checked under: the degenerate one-shard
/// case (fallback path), an even cut, and more shards than the container
/// has cores (shards are a partition, not threads, so this must not matter).
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Short-horizon config so the whole matrix stays fast in debug builds.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        ..SimConfig::test_small()
    }
}

/// Run the identical scenario on the event oracle and on the sharded
/// engine at every worker count, demanding bit-identical stats.
fn assert_sharded_agrees(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let oracle = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Event,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    )
    .run();
    assert!(
        oracle.total_packets_all_time > 0,
        "{label}: vacuous scenario"
    );
    for workers in WORKER_COUNTS {
        let sharded = Simulator::with_workload(
            g.clone(),
            SimConfig {
                engine: EngineKind::Sharded,
                workers,
                ..cfg.clone()
            },
            routing.clone(),
            workload.clone(),
            seed,
        )
        .run();
        assert_eq!(
            oracle, sharded,
            "{label}: sharded ({workers} workers) diverged from event oracle"
        );
    }
    oracle
}

fn open(pattern: TrafficPattern, rate: f64) -> Workload {
    Workload::Open {
        pattern,
        packets_per_cycle_per_host: rate,
    }
}

#[test]
fn dsn_adaptive_uniform_low_and_high_load() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    for (rate, label) in [(0.002, "low"), (0.04, "near-saturation")] {
        let stats = assert_sharded_agrees(
            g.clone(),
            cfg.clone(),
            routing.clone(),
            open(TrafficPattern::Uniform, rate),
            42,
            &format!("dsn64 adaptive uniform {label}"),
        );
        assert!(stats.delivered_packets > 0);
    }
}

#[test]
fn dsn_updown_transpose() {
    let g = Arc::new(Dsn::new(128, 6).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg.vcs));
    assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Transpose, 0.004),
        7,
        "dsn128-x6 up*/down* transpose",
    );
}

#[test]
fn dsn_custom_routing_uniform() {
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(SourceRouted::dsn_custom(dsn));
    // DSN-V levels need the paper's 4 VCs; keep the short test horizon.
    let cfg = SimConfig { vcs: 4, ..cfg() };
    assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        11,
        "dsn64 DSN-V custom uniform",
    );
}

#[test]
fn torus_dor_uniform_and_transpose() {
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    for (pattern, label) in [
        (TrafficPattern::Uniform, "uniform"),
        (TrafficPattern::Transpose, "transpose"),
    ] {
        let routing = Arc::new(SourceRouted::torus_dor(torus.clone()));
        assert_sharded_agrees(
            g.clone(),
            cfg(),
            routing,
            open(pattern, 0.006),
            13,
            &format!("torus4x4 DOR {label}"),
        );
    }
}

#[test]
fn dln_adaptive_uniform() {
    let g = Arc::new(Dln::new(64, 2).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        17,
        "dln64 adaptive uniform",
    );
}

#[test]
fn closed_all_to_all_batch() {
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.drain_cycles = 60_000; // room for the batch to finish
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let stats = assert_sharded_agrees(
        g,
        cfg,
        routing,
        Workload::all_to_all(hosts),
        3,
        "dsn16 all-to-all batch",
    );
    assert!(stats.completion_cycle.is_some(), "batch must complete");
}

/// Fault plans fall back to the single-thread event path (their global
/// zero-lag drop refunds have no lookahead), so a faulted sharded run must
/// still match the event oracle bit for bit at every worker count.
#[test]
fn faulted_run_falls_back_and_matches() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::single_link(5, 900).with_retry(RetryPolicy::new(2, 150, 50));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        23,
        "dsn64 adaptive uniform with link fault",
    );
}

/// With telemetry on, the sharded engine must export byte-identical
/// artifacts: shard hook logs replayed through the coordinator's recorder
/// reproduce the single-thread recording exactly.
#[test]
fn telemetry_byte_identical() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.telemetry = Some(cfg.standard_telemetry(512));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = open(TrafficPattern::Uniform, 0.01);

    let (oracle_stats, oracle_rep) = Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine: EngineKind::Event,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        31,
    )
    .run_with_telemetry();
    let oracle_rep = oracle_rep.expect("telemetry was configured");
    for workers in WORKER_COUNTS {
        let (stats, rep) = Simulator::with_workload(
            g.clone(),
            SimConfig {
                engine: EngineKind::Sharded,
                workers,
                ..cfg.clone()
            },
            routing.clone(),
            workload.clone(),
            31,
        )
        .run_with_telemetry();
        let rep = rep.expect("telemetry was configured");
        assert_eq!(oracle_stats, stats, "{workers} workers: stats diverged");
        assert_eq!(
            oracle_rep.to_json(),
            rep.to_json(),
            "{workers} workers: JSON diverged"
        );
        assert_eq!(
            oracle_rep.to_csv(),
            rep.to_csv(),
            "{workers} workers: CSV diverged"
        );
        assert_eq!(
            oracle_rep.heatmap(),
            rep.heatmap(),
            "{workers} workers: heatmap diverged"
        );
    }
}

/// CI smoke: a 30k-cycle event-vs-sharded check on a paper-sized DSN with
/// the paper's full-size delays (8-cycle lookahead window), kept as one
/// named test so the workflow can run exactly this gate.
#[test]
fn smoke_30k_sharded_vs_event() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    let stats = assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, rate),
        2024,
        "smoke dsn64-x5 30k cycles",
    );
    assert!(stats.delivered_packets > 0);
    assert!(!stats.deadlock_suspected);
}

/// CI smoke: the saturated steady state at scale — a 256-switch DSN at
/// 11 Gbit/s/host (the BENCH near-saturation point) on flat tables, the
/// exact regime the cache-conscious layout, word-parallel scans, batch
/// draining and zero-alloc presizing all target. Event oracle vs every
/// worker count, bit-identical, with the run actually saturated so the
/// hot paths being gated are the ones that executed.
#[test]
fn smoke_saturated_256_sharded_vs_event() {
    let g = Arc::new(Dsn::new(256, 7).unwrap().into_graph());
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        routing_tables: dsn_sim::RoutingTables::Flat,
        ..SimConfig::default()
    };
    let routing: Arc<dyn SimRouting> = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    routing.compiled_flat();
    let rate = cfg.packets_per_cycle_for_gbps(11.0);
    let stats = assert_sharded_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, rate),
        2024,
        "smoke dsn256-x7 saturated 11G",
    );
    assert!(stats.delivered_packets > 0);
    assert!(
        stats.saturated(),
        "11G on DSN-7-256 must exercise the saturated path"
    );
}
