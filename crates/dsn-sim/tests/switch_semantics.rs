//! Integration tests pinning router-level semantics observable through the
//! packet tracer: virtual cut-through atomicity, pipeline latency floors,
//! and hop accounting.

use dsn_core::ring::Ring;
use dsn_core::torus::Torus;
use dsn_sim::{AdaptiveEscape, SimConfig, Simulator, SourceRouted, TraceEvent, TrafficPattern};
use std::sync::Arc;

fn small_cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 0,
        measure_cycles: 4_000,
        drain_cycles: 4_000,
        ..SimConfig::test_small()
    }
}

#[test]
fn hop_count_matches_route_length_on_deterministic_routing() {
    // On a torus with DOR source routing, each traced packet's number of
    // VcAllocated events must equal its DOR path length exactly.
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    let cfg = small_cfg();
    let routing = Arc::new(SourceRouted::torus_dor(torus.clone()));
    let sim =
        Simulator::new(g, cfg.clone(), routing, TrafficPattern::Uniform, 0.004, 13).with_tracer(1);
    let (stats, trace) = sim.run_traced();
    assert!(stats.delivered_packets > 5);

    // Group events per packet.
    let mut checked = 0;
    for &(_, p, e) in trace.records() {
        if !matches!(e, TraceEvent::Delivered { .. }) {
            continue;
        }
        let timeline = trace.packet_timeline(p);
        let TraceEvent::Injected { src_sw, dest_sw } = timeline[0].2 else {
            panic!("first event must be injection");
        };
        let expected_hops = torus.hop_distance(src_sw, dest_sw);
        let allocs = timeline
            .iter()
            .filter(|(_, _, e)| matches!(e, TraceEvent::VcAllocated { .. }))
            .count();
        assert_eq!(allocs, expected_hops, "packet {p}: {src_sw}->{dest_sw}");
        checked += 1;
    }
    assert!(checked > 5, "too few delivered traced packets");
}

#[test]
fn per_hop_latency_floor_respected() {
    // Between consecutive VC allocations of one packet there must be at
    // least header_delay + link_delay cycles (pipeline + wire).
    let g = Arc::new(Ring::new(8).unwrap().into_graph());
    let cfg = small_cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let sim =
        Simulator::new(g, cfg.clone(), routing, TrafficPattern::Uniform, 0.003, 5).with_tracer(1);
    let (_, trace) = sim.run_traced();

    let floor = cfg.header_delay + cfg.link_delay;
    let mut pairs = 0;
    let packets: std::collections::HashSet<u32> =
        trace.records().iter().map(|&(_, p, _)| p).collect();
    for p in packets {
        let allocs: Vec<u64> = trace
            .packet_timeline(p)
            .iter()
            .filter_map(|&(c, _, e)| matches!(e, TraceEvent::VcAllocated { .. }).then_some(c))
            .collect();
        for w in allocs.windows(2) {
            assert!(
                w[1] - w[0] >= floor,
                "packet {p}: consecutive hops {} -> {} violate the {floor}-cycle floor",
                w[0],
                w[1]
            );
            pairs += 1;
        }
    }
    assert!(pairs > 0, "need at least one multi-hop packet");
}

#[test]
fn vct_grants_only_with_full_packet_space() {
    // With buffer == packet size exactly, at most one packet can occupy a
    // VC buffer; the network must still drain at trickle load (VCT's
    // defining property: a blocked packet fits entirely in one buffer).
    let g = Arc::new(Ring::new(6).unwrap().into_graph());
    let cfg = SimConfig {
        buffer_flits: 4, // == packet_flits in test_small
        ..small_cfg()
    };
    assert_eq!(cfg.buffer_flits, cfg.packet_flits);
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.004, 3).run();
    assert!(stats.delivery_ratio() > 0.95, "{}", stats.delivery_ratio());
    assert!(!stats.deadlock_suspected);
}

#[test]
fn tail_follows_head_within_packet_span() {
    // Cut-through: the delivery happens no earlier than injection +
    // hops*(header+link) + packet serialization.
    let g = Arc::new(Ring::new(8).unwrap().into_graph());
    let cfg = small_cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let sim =
        Simulator::new(g, cfg.clone(), routing, TrafficPattern::Uniform, 0.002, 9).with_tracer(1);
    let (_, trace) = sim.run_traced();
    let mut checked = 0;
    for &(when, p, e) in trace.records() {
        if !matches!(e, TraceEvent::Delivered { .. }) {
            continue;
        }
        let timeline = trace.packet_timeline(p);
        let injected = timeline[0].0;
        let hops = timeline
            .iter()
            .filter(|(_, _, e)| matches!(e, TraceEvent::VcAllocated { .. }))
            .count() as u64;
        let min_total = hops * (cfg.header_delay + cfg.link_delay) + cfg.packet_flits as u64 - 1;
        assert!(
            when - injected >= min_total,
            "packet {p} delivered impossibly fast: {} < {min_total}",
            when - injected
        );
        checked += 1;
    }
    assert!(checked > 0);
}
