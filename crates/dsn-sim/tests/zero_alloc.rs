//! Zero-allocation steady state: a saturated run (DSN-5-64, uniform
//! traffic at 24 Gbit/s/host — past the saturation knee, so source
//! queues and the live-packet population keep growing — event engine,
//! flat routing tables) must perform **zero heap allocations** during
//! the measurement phase.
//!
//! All steady-state storage — the flit ring arena, the packet slab, the
//! timing wheel, injection queues, stats histograms and the event core's
//! scratch — is either fixed-size or pre-reserved when the run crosses
//! the warmup→measure boundary (`presize_steady_state`), so a counting
//! `#[global_allocator]` bracketing the measure phase via the
//! `advance_until` stepping API must read zero.
//!
//! This lives in its own integration-test binary because a global
//! allocator is a per-binary property; the single `#[test]` keeps the
//! counter free of concurrent harness noise while armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dsn_core::dsn::Dsn;
use dsn_sim::{
    AdaptiveEscape, EngineKind, RoutingTables, SimConfig, SimRouting, Simulator, TrafficPattern,
};

/// Counts every allocator entry point while armed; delegates to `System`.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
static TRACE: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            let n = REALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
            if n < TRACE.len() {
                TRACE[n].store(
                    ((layout.size() as u64) << 32) | new_size as u64,
                    Ordering::Relaxed,
                );
            }
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn saturated_measure_phase_allocates_nothing() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        engine: EngineKind::Event,
        routing_tables: RoutingTables::Flat,
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(24.0);
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    routing.compiled_flat();
    let mut sim = Simulator::new(g, cfg.clone(), routing, TrafficPattern::Uniform, rate, 2024);

    // Warmup (ends with the steady-state presize) ...
    sim.advance_until(cfg.warmup_cycles);

    // ... then bracket the measure phase with the armed counter.
    ARMED.store(true, Ordering::SeqCst);
    sim.advance_until(cfg.warmup_cycles + cfg.measure_cycles);
    ARMED.store(false, Ordering::SeqCst);

    for t in &TRACE {
        let v = t.load(Ordering::SeqCst);
        if v != 0 {
            eprintln!("realloc {} -> {}", v >> 32, v & 0xFFFF_FFFF);
        }
    }
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    let stats = sim.finish();

    // Same config as the high_load_fingerprint gate: a genuinely
    // saturated run, not a trickle that trivially never allocates.
    assert!(
        stats.saturated(),
        "run must be saturated for the invariant to mean anything"
    );
    assert!(stats.delivered_packets > 10_000, "sanity: real traffic ran");
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "measure phase must not touch the heap: {allocs} allocation(s), \
         {reallocs} reallocation(s)"
    );
}
