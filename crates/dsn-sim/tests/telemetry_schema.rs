//! Golden-file pin for the telemetry JSON export: the schema (key order,
//! float formatting, series/phase/link layout) and — thanks to the
//! simulator's determinism — the exact values of a tiny fixed scenario must
//! never drift silently. Regenerate by running with
//! `UPDATE_GOLDEN=1 cargo test -p dsn-sim --test telemetry_schema`.

use dsn_core::dsn::Dsn;
use dsn_sim::{AdaptiveEscape, EngineKind, SimConfig, Simulator, TrafficPattern, Workload};
use dsn_telemetry::SCHEMA;
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/telemetry_schema.json";
const GOLDEN: &str = include_str!("golden/telemetry_schema.json");

/// Tiny fixed scenario: DSN with 16 switches, short warmup/measure/drain
/// phases, 256-cycle windows, event engine, fixed seed.
fn tiny_report() -> String {
    let mut cfg = SimConfig {
        engine: EngineKind::Event,
        warmup_cycles: 200,
        measure_cycles: 1_500,
        drain_cycles: 1_500,
        ..SimConfig::test_small()
    };
    cfg.telemetry = Some(cfg.standard_telemetry(256));
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Open {
        pattern: TrafficPattern::Uniform,
        packets_per_cycle_per_host: 0.01,
    };
    let (_, report) =
        Simulator::with_workload(g, cfg, routing, workload, 0x7e1e).run_with_telemetry();
    report.expect("telemetry enabled").to_json()
}

#[test]
fn json_schema_is_pinned() {
    let actual = tiny_report();
    assert!(actual.contains(SCHEMA), "schema tag missing");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("update golden");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "telemetry JSON drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
