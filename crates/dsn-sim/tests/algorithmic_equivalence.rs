//! Bit-equivalence gate for table-free (algorithmic) DSN routing: the
//! [`DsnAlgorithmic`] scheme computes every hop from switch ids and the
//! DSN level structure, and must be indistinguishable — every `RunStats`
//! counter and float — from
//!
//! 1. its own 4-context compiled flat table (`RoutingTables::Flat` vs
//!    `Algorithmic` vs `Dyn`),
//! 2. the materialized-path [`SourceRouted::dsn_custom`] scheme it
//!    replaces (same candidate sequence by construction), and
//! 3. itself across engines and mid-run fault rebuilds (where it falls
//!    back gracefully to the ring-detour scheme on the EdgeMask
//!    survivors).
//!
//! Plus the large-n scale smoke: a three-engine (dense short-horizon /
//! event / sharded w4) bit-equality run on DSN-9-1020, the first rung of
//! the paper's full Fig. 7 size range.

use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_sim::{
    DsnAlgorithmic, EngineKind, FaultPlan, RetryPolicy, RoutingTables, RunStats, SimConfig,
    SimRouting, Simulator, SourceRouted, TrafficPattern, Workload, ALGORITHMIC_AUTO_THRESHOLD,
};
use std::sync::Arc;

/// Short-horizon config so the matrix stays fast in debug builds. DSN-V
/// needs the paper's 4 VCs.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        vcs: 4,
        ..SimConfig::test_small()
    }
}

fn open(rate: f64) -> Workload {
    Workload::Open {
        pattern: TrafficPattern::Uniform,
        packets_per_cycle_per_host: rate,
    }
}

fn run_one(
    g: &Arc<Graph>,
    cfg: &SimConfig,
    engine: EngineKind,
    tables: RoutingTables,
    routing: Arc<dyn SimRouting>,
    workload: &Workload,
    seed: u64,
) -> RunStats {
    Simulator::with_workload(
        g.clone(),
        SimConfig {
            engine,
            routing_tables: tables,
            ..cfg.clone()
        },
        routing,
        workload.clone(),
        seed,
    )
    .run()
}

/// Run the identical scenario under all three table modes (dynamic,
/// compiled 4-context flat, table-free algorithmic) on both engines and
/// demand bit-identical stats.
fn assert_all_modes_agree(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let mut last = None;
    for engine in [EngineKind::Dense, EngineKind::Event] {
        let dynamic = run_one(
            &g,
            &cfg,
            engine,
            RoutingTables::Dyn,
            routing.clone(),
            &workload,
            seed,
        );
        assert!(
            dynamic.total_packets_all_time > 0,
            "{label} [{}]: vacuous scenario",
            engine.name()
        );
        for tables in [RoutingTables::Flat, RoutingTables::Algorithmic] {
            let other = run_one(&g, &cfg, engine, tables, routing.clone(), &workload, seed);
            assert_eq!(
                dynamic,
                other,
                "{label} [{} / {}]: diverged from the dynamic path",
                engine.name(),
                tables.name()
            );
        }
        last = Some(dynamic);
    }
    last.unwrap()
}

#[test]
fn algorithmic_modes_agree_across_sizes() {
    // Clean (p | n) and non-clean sizes: the automaton covers the
    // incomplete-final-super-node geometry too.
    for (n, rate) in [(30usize, 0.01), (64, 0.006), (126, 0.004)] {
        let dsn = Arc::new(Dsn::new(n, dsn_core::util::ceil_log2(n) - 1).unwrap());
        let g = Arc::new(dsn.graph().clone());
        let routing = Arc::new(DsnAlgorithmic::new(dsn));
        assert_all_modes_agree(
            g,
            cfg(),
            routing,
            open(rate),
            0xA16,
            &format!("dsn{n} algorithmic uniform"),
        );
    }
}

#[test]
fn algorithmic_matches_source_routed_paths() {
    // The table-free scheme must emit the exact candidate sequence of the
    // materialized DSN-V source routes: identical stats, hop for hop.
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let algorithmic: Arc<dyn SimRouting> = Arc::new(DsnAlgorithmic::new(dsn.clone()));
    let source: Arc<dyn SimRouting> = Arc::new(SourceRouted::dsn_custom(dsn));
    let cfg = cfg();
    let workload = open(0.008);
    for engine in [EngineKind::Dense, EngineKind::Event] {
        let a = run_one(
            &g,
            &cfg,
            engine,
            RoutingTables::Dyn,
            algorithmic.clone(),
            &workload,
            31,
        );
        let s = run_one(
            &g,
            &cfg,
            engine,
            RoutingTables::Dyn,
            source.clone(),
            &workload,
            31,
        );
        assert_eq!(
            a,
            s,
            "[{}] algorithmic diverged from materialized source routes",
            engine.name()
        );
        assert!(a.delivered_packets > 0);
    }
}

#[test]
fn fault_rebuild_falls_back_gracefully() {
    // Mid-run link death: the rebuild swaps in the ring-detour scheme
    // (EdgeMask survivors), which is not algorithmic — all three table
    // modes must converge on the same dynamic fallback, bit-identically.
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::single_link(5, 900).with_retry(RetryPolicy::new(2, 150, 50));
    let routing = Arc::new(DsnAlgorithmic::new(dsn));
    let stats = assert_all_modes_agree(
        g,
        cfg,
        routing,
        open(0.008),
        0xFA17,
        "dsn64 algorithmic single-link fault",
    );
    assert!(stats.dropped_packets_all_time + stats.delivered_packets > 0);
}

#[test]
fn fault_flap_algorithmic() {
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::flap(6, 600, 400, 3).with_retry(RetryPolicy::new(4, 100, 50));
    let routing = Arc::new(DsnAlgorithmic::new(dsn));
    assert_all_modes_agree(
        g,
        cfg,
        routing,
        open(0.006),
        0xF1A8,
        "dsn64 algorithmic flapping link",
    );
}

#[test]
fn table_bytes_ratio_and_auto_threshold() {
    // The whole point of the algorithmic path: O(n) LUT bytes vs the
    // O(ctxs * n^2) CSR arena. Even at n = 64 the compiled table is well
    // over 10x the LUTs; the benchmark rows assert the same at n = 2046.
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(DsnAlgorithmic::new(dsn));
    let flat = routing.compiled_flat().expect("4-ctx table compiles");
    assert!(
        flat.table_bytes() >= 10 * routing.table_bytes(),
        "flat {} B vs algorithmic {} B: expected >= 10x",
        flat.table_bytes(),
        routing.table_bytes()
    );

    // Below the threshold, Flat mode compiles the table...
    let sim = Simulator::with_workload(
        g.clone(),
        SimConfig {
            routing_tables: RoutingTables::Flat,
            ..cfg()
        },
        routing.clone(),
        open(0.004),
        1,
    );
    assert_eq!(
        sim.routing_table_bytes(),
        flat.table_bytes() + routing.table_bytes()
    );
    // ...and explicit Algorithmic mode never does.
    let sim = Simulator::with_workload(
        g.clone(),
        SimConfig {
            routing_tables: RoutingTables::Algorithmic,
            ..cfg()
        },
        routing.clone(),
        open(0.004),
        1,
    );
    assert_eq!(sim.routing_table_bytes(), routing.table_bytes());

    // Above the threshold, plain Flat auto-degrades to table-free.
    let dsn = Arc::new(Dsn::new_clean(1024).unwrap());
    let n = dsn.n();
    assert!(n > ALGORITHMIC_AUTO_THRESHOLD);
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(DsnAlgorithmic::new(dsn));
    let sim = Simulator::with_workload(
        g,
        SimConfig {
            routing_tables: RoutingTables::Flat,
            ..cfg()
        },
        routing.clone(),
        open(0.001),
        1,
    );
    assert_eq!(sim.routing_table_bytes(), routing.table_bytes());
    assert_eq!(routing.table_bytes(), 3 * n * std::mem::size_of::<u32>());
}

#[test]
fn smoke_1020_three_engines() {
    // DSN-9-1020, the first rung of the paper's Fig. 7 scale: dense
    // (short-horizon reference), event, and sharded w4 must agree
    // bit-exactly with table-free routing.
    let dsn = Arc::new(Dsn::new_clean(1024).unwrap());
    assert_eq!(dsn.n(), 1020);
    let g = Arc::new(dsn.graph().clone());
    let routing: Arc<dyn SimRouting> = Arc::new(DsnAlgorithmic::new(dsn));
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 900,
        drain_cycles: 1_000,
        vcs: 4,
        routing_tables: RoutingTables::Algorithmic,
        ..SimConfig::test_small()
    };
    let workload = open(0.004);
    let seed = 0x1020;
    let dense = run_one(
        &g,
        &cfg,
        EngineKind::Dense,
        RoutingTables::Algorithmic,
        routing.clone(),
        &workload,
        seed,
    );
    assert!(dense.delivered_packets > 0, "vacuous 1020 smoke");
    let event = run_one(
        &g,
        &cfg,
        EngineKind::Event,
        RoutingTables::Algorithmic,
        routing.clone(),
        &workload,
        seed,
    );
    assert_eq!(dense, event, "dsn1020: event diverged from dense");
    let sharded = Simulator::with_workload(
        g,
        SimConfig {
            engine: EngineKind::Sharded,
            workers: 4,
            ..cfg
        },
        routing,
        workload,
        seed,
    )
    .run();
    assert_eq!(event, sharded, "dsn1020: sharded w4 diverged from event");
}
