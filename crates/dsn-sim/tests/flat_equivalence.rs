//! Bit-equivalence gate for the flattened routing tables: with
//! `RoutingTables::Flat` the engine serves allocation candidates from the
//! compiled CSR arena instead of calling the `SimRouting` trait object,
//! and the two paths must produce *identical* `RunStats` — every counter
//! and every float — across topologies, schemes (including the
//! adaptive-with-escape-residue and the untabulable source-routed ones),
//! both engines, and mid-run fault rebuilds. Any divergence means a
//! compiled row disagrees with what the scheme would have answered
//! dynamically, so the comparison is `assert_eq!` on the whole struct.

use dsn_core::dln::Dln;
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FaultPlan, MinimalAdaptiveDsn, RetryPolicy, RoutingTables,
    RunStats, SimConfig, SimRouting, Simulator, SourceRouted, TrafficPattern, UpDownRouting,
    Workload,
};
use std::sync::Arc;

/// Short-horizon config so the dense engine stays fast in debug builds.
fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        ..SimConfig::test_small()
    }
}

fn open(pattern: TrafficPattern, rate: f64) -> Workload {
    Workload::Open {
        pattern,
        packets_per_cycle_per_host: rate,
    }
}

/// Run the identical scenario with flat and dynamic candidate sourcing,
/// under **both** engines, and demand bit-identical stats per engine.
fn assert_flat_matches_dyn(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> RunStats {
    let mut last = None;
    for engine in [EngineKind::Dense, EngineKind::Event] {
        let run = |tables: RoutingTables| {
            Simulator::with_workload(
                g.clone(),
                SimConfig {
                    engine,
                    routing_tables: tables,
                    ..cfg.clone()
                },
                routing.clone(),
                workload.clone(),
                seed,
            )
            .run()
        };
        let dynamic = run(RoutingTables::Dyn);
        let flat = run(RoutingTables::Flat);
        assert_eq!(
            dynamic,
            flat,
            "{label} [{}]: flat tables diverged from the dynamic path",
            engine.name()
        );
        assert!(
            flat.total_packets_all_time > 0,
            "{label} [{}]: vacuous scenario",
            engine.name()
        );
        last = Some(flat);
    }
    last.unwrap()
}

#[test]
fn dsn_adaptive_escape_low_and_high_load() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    for (rate, label) in [(0.002, "low"), (0.04, "near-saturation")] {
        let stats = assert_flat_matches_dyn(
            g.clone(),
            cfg.clone(),
            routing.clone(),
            open(TrafficPattern::Uniform, rate),
            42,
            &format!("dsn64 adaptive uniform {label}"),
        );
        assert!(stats.delivered_packets > 0);
    }
}

#[test]
fn dsn_updown_transpose() {
    // Pure phase-table scheme: both contexts (Up / Down) of the compiled
    // arena are exercised, including rows left empty for unreachable
    // Down-phase states.
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg.vcs));
    assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Transpose, 0.004),
        7,
        "dsn64 up*/down* transpose",
    );
}

#[test]
fn dln_adaptive_uniform() {
    let g = Arc::new(Dln::new(64, 2).unwrap().into_graph());
    let cfg = cfg();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        17,
        "dln64 adaptive uniform",
    );
}

#[test]
fn torus_dor_stays_dynamic() {
    // Source-routed schemes are untabulable: `Flat` must silently fall
    // back to the dynamic path rather than change behavior.
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    let routing = Arc::new(SourceRouted::torus_dor(torus));
    assert_flat_matches_dyn(
        g,
        cfg(),
        routing,
        open(TrafficPattern::Transpose, 0.006),
        13,
        "torus4x4 DOR transpose",
    );
}

#[test]
fn dsn_custom_dsnv_uniform() {
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(SourceRouted::dsn_custom(dsn));
    // DSN-V levels need the paper's 4 VCs; keep the short test horizon.
    let cfg = SimConfig { vcs: 4, ..cfg() };
    assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        11,
        "dsn64 DSN-V custom uniform",
    );
}

#[test]
fn minimal_adaptive_dsn_escape_residue() {
    // Adaptive candidates come from the compiled table; the DSN-V escape
    // layer stays a dynamic residue (`HopRule::Dyn` + `dyn_escape`), so
    // this row covers the mixed table-plus-escape allocation path.
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(MinimalAdaptiveDsn::new(dsn, 8));
    let cfg = SimConfig { vcs: 8, ..cfg() };
    let stats = assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.02),
        23,
        "dsn64 minimal-adaptive + dsnv escape",
    );
    assert!(stats.delivered_packets > 0);
}

#[test]
fn fault_rebuild_refreshes_flat_tables() {
    // Mid-run link death: the online reroute rebuilds the scheme and the
    // engine must recompile (and re-serve) the flat arena for the survivor,
    // bit-identically to the dynamic rebuild.
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::single_link(5, 900).with_retry(RetryPolicy::new(2, 150, 50));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let stats = assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.01),
        0xFA11,
        "dsn64 adaptive single-link fault",
    );
    assert!(stats.dropped_packets_all_time + stats.delivered_packets > 0);
}

#[test]
fn fault_flap_updown() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = cfg();
    cfg.fault_plan = FaultPlan::flap(6, 600, 400, 3).with_retry(RetryPolicy::new(4, 100, 50));
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg.vcs));
    assert_flat_matches_dyn(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.008),
        0xF1A9,
        "dsn64 up*/down* flapping link",
    );
}
