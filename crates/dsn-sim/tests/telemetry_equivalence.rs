//! Equivalence gates for the telemetry subsystem:
//!
//! 1. **Engine equivalence, telemetry on** — dense vs event must produce
//!    bit-identical `RunStats` *and* byte-identical exported telemetry
//!    (JSON, CSV, heatmap) across DSN / torus / DLN topologies and
//!    adaptive / up\*down\* / DSN-V routings. Hooks live only in the shared
//!    mutation helpers, so any divergence means a hook leaked into one
//!    scheduling core.
//! 2. **On/off invariance** — enabling telemetry must not perturb the
//!    simulation: `RunStats` with telemetry on are bit-identical to
//!    telemetry off.
//! 3. **Reconciliation** — telemetry's per-link measured-flit counts must
//!    reproduce `RunStats` channel-utilization fields bit-for-bit, and on
//!    a fault-free closed batch every created flit must be ejected.

use dsn_core::dln::Dln;
use dsn_core::dsn::Dsn;
use dsn_core::graph::Graph;
use dsn_core::torus::Torus;
use dsn_sim::{
    AdaptiveEscape, EngineKind, SimConfig, SimRouting, Simulator, SourceRouted, TelemetryReport,
    TrafficPattern, UpDownRouting, Workload,
};
use std::sync::Arc;

/// Short-horizon config with telemetry enabled (warmup/measure/drain
/// phases, 512-cycle windows).
fn cfg_on() -> SimConfig {
    let mut cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_500,
        drain_cycles: 2_500,
        ..SimConfig::test_small()
    };
    cfg.telemetry = Some(cfg.standard_telemetry(512));
    cfg
}

fn open(pattern: TrafficPattern, rate: f64) -> Workload {
    Workload::Open {
        pattern,
        packets_per_cycle_per_host: rate,
    }
}

fn run_with(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
) -> (dsn_sim::RunStats, Option<TelemetryReport>) {
    Simulator::with_workload(g, cfg, routing, workload, seed).run_with_telemetry()
}

/// Both engines, telemetry on: bit-identical stats AND byte-identical
/// exported artifacts. Returns the (shared) report for extra checks.
fn assert_telemetry_agrees(
    g: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    workload: Workload,
    seed: u64,
    label: &str,
) -> (dsn_sim::RunStats, TelemetryReport) {
    let (dense_stats, dense_rep) = run_with(
        g.clone(),
        SimConfig {
            engine: EngineKind::Dense,
            ..cfg.clone()
        },
        routing.clone(),
        workload.clone(),
        seed,
    );
    let (event_stats, event_rep) = run_with(
        g,
        SimConfig {
            engine: EngineKind::Event,
            ..cfg
        },
        routing,
        workload,
        seed,
    );
    assert_eq!(dense_stats, event_stats, "{label}: RunStats diverged");
    let dense_rep = dense_rep.expect("telemetry enabled");
    let event_rep = event_rep.expect("telemetry enabled");
    assert_eq!(dense_rep, event_rep, "{label}: telemetry reports diverged");
    assert_eq!(
        dense_rep.to_json(),
        event_rep.to_json(),
        "{label}: JSON exports diverged"
    );
    assert_eq!(
        dense_rep.to_csv(),
        event_rep.to_csv(),
        "{label}: CSV exports diverged"
    );
    assert_eq!(
        dense_rep.heatmap(),
        event_rep.heatmap(),
        "{label}: heatmaps diverged"
    );
    assert!(
        dense_stats.total_packets_all_time > 0,
        "{label}: vacuous scenario"
    );
    (dense_stats, dense_rep)
}

/// Telemetry's view must reconcile with the engine's own accounting.
fn assert_reconciles(stats: &dsn_sim::RunStats, rep: &TelemetryReport, label: &str) {
    assert_eq!(
        rep.mean_measured_utilization(),
        stats.mean_channel_utilization,
        "{label}: mean utilization must match RunStats bit-for-bit"
    );
    assert_eq!(
        rep.max_measured_utilization(),
        stats.max_channel_utilization,
        "{label}: max utilization must match RunStats bit-for-bit"
    );
    let delivered: u64 = rep.phases.iter().map(|p| p.delivered).sum();
    let created: u64 = rep.phases.iter().map(|p| p.created).sum();
    let dropped: u64 = rep.phases.iter().map(|p| p.dropped).sum();
    assert_eq!(
        created, stats.total_packets_all_time,
        "{label}: created packets"
    );
    assert_eq!(
        dropped, stats.dropped_packets_all_time,
        "{label}: dropped packets"
    );
    assert!(
        delivered + dropped <= created,
        "{label}: delivered + dropped must not exceed created"
    );
    // Per-class histogram counts fold up to the phase delivered counts.
    for p in &rep.phases {
        let class_sum: u64 = p.classes.iter().map(|c| c.count).sum();
        assert_eq!(class_sum, p.delivered, "{label}: phase {} classes", p.name);
        assert_eq!(
            p.queueing_cycles + p.credit_stall_cycles + p.wire_cycles + p.ejection_cycles,
            p.latency_sum_cycles,
            "{label}: phase {} decomposition",
            p.name
        );
    }
}

#[test]
fn dsn_adaptive_uniform_telemetry_matches() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = cfg_on();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.01),
        42,
        "dsn64 adaptive uniform",
    );
    assert_reconciles(&stats, &rep, "dsn64 adaptive uniform");
    assert!(stats.delivered_packets > 0);
    assert!(rep.flits_sent_total > 0);
    assert!(
        rep.links.iter().any(|l| l.ring) && rep.links.iter().any(|l| !l.ring),
        "DSN must expose both ring and shortcut links"
    );
}

#[test]
fn dsn_updown_transpose_telemetry_matches() {
    let g = Arc::new(Dsn::new(128, 6).unwrap().into_graph());
    let cfg = cfg_on();
    let routing = Arc::new(UpDownRouting::new(g.clone(), cfg.vcs));
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Transpose, 0.004),
        7,
        "dsn128-x6 up*/down* transpose",
    );
    assert_reconciles(&stats, &rep, "dsn128-x6 up*/down* transpose");
}

#[test]
fn dsn_custom_routing_telemetry_matches() {
    let dsn = Arc::new(Dsn::new(64, 5).unwrap());
    let g = Arc::new(dsn.graph().clone());
    let routing = Arc::new(SourceRouted::dsn_custom(dsn));
    let cfg = SimConfig { vcs: 4, ..cfg_on() };
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        11,
        "dsn64 DSN-V custom uniform",
    );
    assert_reconciles(&stats, &rep, "dsn64 DSN-V custom uniform");
}

#[test]
fn torus_dor_telemetry_matches() {
    let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
    let g = Arc::new(torus.graph().clone());
    let routing = Arc::new(SourceRouted::torus_dor(torus));
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg_on(),
        routing,
        open(TrafficPattern::Uniform, 0.006),
        13,
        "torus4x4 DOR uniform",
    );
    assert_reconciles(&stats, &rep, "torus4x4 DOR uniform");
}

#[test]
fn dln_adaptive_telemetry_matches() {
    let g = Arc::new(Dln::new(64, 2).unwrap().into_graph());
    let cfg = cfg_on();
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.004),
        17,
        "dln64 adaptive uniform",
    );
    assert_reconciles(&stats, &rep, "dln64 adaptive uniform");
}

#[test]
fn telemetry_on_does_not_perturb_runstats() {
    // Same scenario with telemetry off and on, both engines: all four
    // RunStats must be bit-identical.
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let on = cfg_on();
    let off = SimConfig {
        telemetry: None,
        ..on.clone()
    };
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), on.vcs));
    let mut all = Vec::new();
    for engine in [EngineKind::Dense, EngineKind::Event] {
        for cfg in [&off, &on] {
            let (stats, rep) = run_with(
                g.clone(),
                SimConfig {
                    engine,
                    ..cfg.clone()
                },
                routing.clone(),
                open(TrafficPattern::Uniform, 0.01),
                99,
            );
            assert_eq!(rep.is_some(), cfg.telemetry.is_some());
            all.push(stats);
        }
    }
    assert!(all[0].delivered_packets > 0);
    for s in &all[1..] {
        assert_eq!(&all[0], s, "telemetry or engine choice perturbed RunStats");
    }
}

#[test]
fn closed_batch_flits_fully_accounted() {
    // Fault-free closed batch: every created flit must be ejected, and the
    // telemetry totals must say so exactly.
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let mut cfg = cfg_on();
    cfg.drain_cycles = 60_000;
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let hosts = 16 * cfg.hosts_per_switch;
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg.clone(),
        routing,
        Workload::all_to_all(hosts),
        3,
        "dsn16 all-to-all batch",
    );
    assert_reconciles(&stats, &rep, "dsn16 all-to-all batch");
    assert!(stats.completion_cycle.is_some(), "batch must complete");
    let expected_flits = stats.total_packets_all_time * cfg.packet_flits as u64;
    assert_eq!(rep.flits_ejected_total, expected_flits);
    // Every flit sent on some channel later arrived and was counted there.
    let arrived: u64 = rep.links.iter().map(|l| l.flits).sum();
    assert_eq!(rep.flits_sent_total, arrived);
}

#[test]
fn fault_phases_tag_pre_and_post_packets() {
    // A faulted run with explicit pre/post-fault phases: phase totals must
    // partition the packets, and both engines must still agree bit-for-bit.
    use dsn_sim::{FaultPlan, TelemetryConfig};
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = cfg_on();
    let fault_cycle = cfg.warmup_cycles + cfg.measure_cycles / 4;
    cfg.fault_plan = FaultPlan::random_connected(&g, 0xFA11, 4, fault_cycle, 50);
    cfg.telemetry = Some(
        TelemetryConfig::windowed(512)
            .with_phases(&[(0, "pre-fault"), (fault_cycle, "post-fault")]),
    );
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, 0.01),
        0xFA11,
        "dsn64 faulted pre/post phases",
    );
    assert_eq!(rep.phases.len(), 2);
    assert_eq!(rep.phases[0].name, "pre-fault");
    assert_eq!(rep.phases[1].name, "post-fault");
    assert!(rep.phases[0].created > 0 && rep.phases[1].created > 0);
    let created: u64 = rep.phases.iter().map(|p| p.created).sum();
    assert_eq!(created, stats.total_packets_all_time);
    let dropped: u64 = rep.phases.iter().map(|p| p.dropped).sum();
    assert_eq!(dropped, stats.dropped_packets_all_time);
}

/// CI smoke: a 30k-cycle telemetry-enabled dense-vs-event check on a
/// paper-sized DSN, one named test so the workflow can run exactly this
/// gate next to `smoke_30k_dense_vs_event`.
#[test]
fn smoke_30k_telemetry_dense_vs_event() {
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let mut cfg = SimConfig {
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    cfg.telemetry = Some(cfg.standard_telemetry(1_000));
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let rate = cfg.packets_per_cycle_for_gbps(1.0);
    let (stats, rep) = assert_telemetry_agrees(
        g,
        cfg,
        routing,
        open(TrafficPattern::Uniform, rate),
        2024,
        "smoke dsn64-x5 30k cycles telemetry",
    );
    assert_reconciles(&stats, &rep, "smoke dsn64-x5 30k cycles telemetry");
    assert!(stats.delivered_packets > 0);
    assert!(!stats.deadlock_suspected);
}
