//! Golden-file pin for the telemetry export of a *flow* workload: unlike
//! the open-loop pin in `telemetry_schema.rs` (whose `"fct"` array is
//! empty), this scenario completes flows, so the per-class FCT section's
//! layout and exact values are locked. Regenerate by running with
//! `UPDATE_GOLDEN=1 cargo test -p dsn-sim --test flow_telemetry_schema`.

use dsn_core::dsn::Dsn;
use dsn_sim::{
    AdaptiveEscape, EngineKind, FlowArrivals, FlowSizeDist, SimConfig, Simulator, TrafficPattern,
    Workload,
};
use dsn_telemetry::SCHEMA;
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/flow_telemetry_schema.json";
const GOLDEN: &str = include_str!("golden/flow_telemetry_schema.json");

/// Tiny fixed scenario: DSN with 16 switches, web-search flows at a low
/// Poisson rate, 256-cycle windows, event engine, fixed seed.
fn tiny_report() -> String {
    let mut cfg = SimConfig {
        engine: EngineKind::Event,
        warmup_cycles: 200,
        measure_cycles: 1_500,
        drain_cycles: 4_000,
        ..SimConfig::test_small()
    };
    cfg.telemetry = Some(cfg.standard_telemetry(256));
    let g = Arc::new(Dsn::new(16, 3).unwrap().into_graph());
    let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    let workload = Workload::Flows {
        pattern: TrafficPattern::Uniform,
        sizes: FlowSizeDist::websearch(),
        arrivals: FlowArrivals::Poisson {
            flows_per_cycle: 0.002,
        },
    };
    let (stats, report) =
        Simulator::with_workload(g, cfg, routing, workload, 0xF1_07).run_with_telemetry();
    assert!(stats.flows_completed > 0, "scenario must complete flows");
    report.expect("telemetry enabled").to_json()
}

#[test]
fn fct_section_is_pinned() {
    let actual = tiny_report();
    assert!(actual.contains(SCHEMA), "schema tag missing");
    assert!(
        actual.contains("\"fct\": ["),
        "fct section missing from flow-run telemetry"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("update golden");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "flow telemetry JSON drifted from {GOLDEN_PATH}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
