//! Profiling driver for the allocation hot path: repeats the CI high-load
//! fingerprint row (DSN-5-64, uniform, 11 Gbit/s/host, event engine, flat
//! tables) enough times for a sampling profiler to see it.
//!
//! Usage: `cargo build --release -p dsn-sim --example profile_high_load`
//! then point your profiler at the binary, e.g.
//! `gprofng collect app target/release/examples/profile_high_load [reps]`.
//! Pass `dyn` as a second argument to profile the dynamic routing path
//! instead of the flat tables.

use dsn_core::dsn::Dsn;
use dsn_sim::{
    AdaptiveEscape, EngineKind, RoutingTables, SimConfig, SimRouting, Simulator, TrafficPattern,
};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let tables = match args.next().as_deref() {
        Some("dyn") => RoutingTables::Dyn,
        _ => RoutingTables::Flat,
    };
    let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
    let cfg = SimConfig {
        engine: EngineKind::Event,
        routing_tables: tables,
        warmup_cycles: 5_000,
        measure_cycles: 15_000,
        drain_cycles: 10_000,
        ..SimConfig::default()
    };
    let rate = cfg.packets_per_cycle_for_gbps(11.0);
    let routing: Arc<dyn SimRouting> = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
    routing.compiled_flat();
    let mut delivered = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        let stats = Simulator::new(
            g.clone(),
            cfg.clone(),
            routing.clone(),
            TrafficPattern::Uniform,
            rate,
            2024,
        )
        .run();
        delivered += stats.delivered_packets;
    }
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{reps} reps ({} tables): {delivered} delivered, {:.0} cycles/s",
        tables.name(),
        reps as f64 * cfg.total_cycles() as f64 / wall
    );
}
