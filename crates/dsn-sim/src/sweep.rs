//! Load-sweep harness: run the simulator across a range of offered loads
//! (in parallel with rayon) and produce the latency-vs-accepted-traffic
//! curves of the paper's Figure 10.
//!
//! Every sweep point of one invocation shares a single routing instance:
//! `make_routing` is called **exactly once** per sweep (the schemes are
//! immutable during a run, and fault rebuilds replace the `Arc` per
//! simulation), and with [`crate::config::RoutingTables::Flat`] the
//! flattened candidate table is compiled once before the fan-out so no
//! rayon worker pays the compile. The `_cached` variants additionally pull
//! the scheme from a shared [`RoutingCache`], which deduplicates builds
//! across *separate* sweeps of the same topology — and across the fault
//! rebuilds inside degraded sweeps.
//!
//! Sweeps parallelize *across* points; the sharded engine
//! ([`crate::config::EngineKind::Sharded`]) parallelizes *inside* one
//! simulation. Both draw from the same rayon pool, so combining them
//! oversubscribes it — prefer point-level parallelism for sweeps (many
//! independent runs saturate the pool already) and reserve the sharded
//! engine for single long runs, like the saturated Figure-10 rows or a
//! bisection probe at one load.

use crate::cache::RoutingCache;
use crate::config::{RoutingTables, SimConfig};
use crate::engine::Simulator;
use crate::routing::SimRouting;
use crate::stats::RunStats;
use crate::traffic::TrafficPattern;
use dsn_core::graph::Graph;
use dsn_core::parallel::Parallelism;
use rayon::prelude::*;
use std::sync::Arc;

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load for this run, in Gbit/s/host.
    pub offered_gbps: f64,
    /// Full run statistics.
    pub stats: RunStats,
}

/// Latency-vs-load curve for one topology + routing + pattern.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Display label (topology + routing).
    pub label: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Points in increasing offered load.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Accepted throughput at the last non-saturated point (the paper's
    /// "largest amount of traffic accepted before the network saturates"),
    /// in Gbit/s/host. Falls back to the highest accepted value measured.
    pub fn saturation_throughput_gbps(&self) -> f64 {
        let last_ok = self
            .points
            .iter()
            .filter(|p| !p.stats.saturated())
            .map(|p| p.stats.accepted_gbps_per_host)
            .fold(0.0f64, f64::max);
        if last_ok > 0.0 {
            last_ok
        } else {
            self.points
                .iter()
                .map(|p| p.stats.accepted_gbps_per_host)
                .fold(0.0f64, f64::max)
        }
    }

    /// Mean latency (ns) at the lowest offered load — the paper's
    /// "latency under low-traffic load".
    pub fn low_load_latency_ns(&self) -> f64 {
        self.points
            .first()
            .map(|p| p.stats.avg_latency_ns)
            .unwrap_or(0.0)
    }
}

/// Prepare one shared routing instance for a sweep: build (or fetch from
/// the cache) once, then precompile the flat table once — *before* the
/// parallel fan-out, so workers share it instead of racing to build it.
fn sweep_routing(
    graph: &Arc<Graph>,
    cfg: &SimConfig,
    cache: Option<(&Arc<RoutingCache>, &str)>,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
) -> Arc<dyn SimRouting> {
    let routing = match cache {
        Some((cache, key)) => cache.get_or_build(graph, key, make_routing),
        None => make_routing(),
    };
    // Warm exactly the table the engine will select (memoized per
    // instance), *before* the parallel fan-out, so workers share it
    // instead of racing to build it. Algorithmic-capable schemes above
    // the auto threshold (or under explicit `Algorithmic` mode) never
    // compile one.
    let wants_flat = match cfg.routing_tables {
        RoutingTables::Flat => {
            !(routing.algorithmic()
                && graph.node_count() > crate::engine::ALGORITHMIC_AUTO_THRESHOLD)
        }
        RoutingTables::Dyn => false,
        RoutingTables::Algorithmic => !routing.algorithmic(),
    };
    if wants_flat {
        routing.compiled_flat();
    }
    routing
}

/// Run a load sweep: one simulation per offered load (Gbit/s/host), fanned
/// out over the rayon pool. `make_routing` is called exactly once — every
/// point shares the immutable routing tables.
pub fn load_sweep(
    label: impl Into<String>,
    graph: Arc<Graph>,
    cfg: &SimConfig,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    offered_gbps: &[f64],
    seed: u64,
) -> SweepResult {
    load_sweep_with(
        label,
        graph,
        cfg,
        make_routing,
        pattern,
        offered_gbps,
        seed,
        &Parallelism::auto(),
    )
}

/// [`load_sweep`] under an explicit [`Parallelism`] policy. Each point is
/// seeded as `seed ^ offered.to_bits()`, so the curve is identical no
/// matter how many points run concurrently.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_with(
    label: impl Into<String>,
    graph: Arc<Graph>,
    cfg: &SimConfig,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    offered_gbps: &[f64],
    seed: u64,
    par: &Parallelism,
) -> SweepResult {
    let routing = sweep_routing(&graph, cfg, None, make_routing);
    run_sweep_points(
        label.into(),
        graph,
        cfg,
        routing,
        None,
        pattern,
        offered_gbps,
        seed,
        par,
    )
}

/// [`load_sweep_with`] against a shared [`RoutingCache`]: the scheme for
/// `(graph, scheme_key)` is fetched from (or built into) `cache`, and the
/// cache is threaded into every simulation so fault rebuilds reaching the
/// same survivor state are also built only once across the sweep. Produces
/// bit-identical [`RunStats`] to the uncached sweep.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_cached(
    label: impl Into<String>,
    graph: Arc<Graph>,
    cfg: &SimConfig,
    cache: &Arc<RoutingCache>,
    scheme_key: &str,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    offered_gbps: &[f64],
    seed: u64,
    par: &Parallelism,
) -> SweepResult {
    let routing = sweep_routing(&graph, cfg, Some((cache, scheme_key)), make_routing);
    run_sweep_points(
        label.into(),
        graph,
        cfg,
        routing,
        Some(cache),
        pattern,
        offered_gbps,
        seed,
        par,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sweep_points(
    label: String,
    graph: Arc<Graph>,
    cfg: &SimConfig,
    routing: Arc<dyn SimRouting>,
    cache: Option<&Arc<RoutingCache>>,
    pattern: &TrafficPattern,
    offered_gbps: &[f64],
    seed: u64,
    par: &Parallelism,
) -> SweepResult {
    let run_point = |gbps: f64| -> SweepPoint {
        let rate = cfg.packets_per_cycle_for_gbps(gbps);
        let mut sim = Simulator::new(
            graph.clone(),
            cfg.clone(),
            routing.clone(),
            pattern.clone(),
            rate,
            seed ^ gbps.to_bits(),
        );
        if let Some(cache) = cache {
            sim = sim.with_routing_cache(cache.clone());
        }
        SweepPoint {
            offered_gbps: gbps,
            stats: sim.run(),
        }
    };
    let points: Vec<SweepPoint> = if par.is_serial() {
        offered_gbps.iter().map(|&gbps| run_point(gbps)).collect()
    } else {
        offered_gbps
            .par_iter()
            .map(|&gbps| run_point(gbps))
            .collect()
    };
    SweepResult {
        label,
        pattern: pattern.name().to_string(),
        points,
    }
}

/// Interior probe loads per refinement round of [`find_saturation_with`]:
/// the bracket shrinks by `SECTION_PROBES + 1` per round, and all probes
/// of a round are independent simulations that can run concurrently.
const SECTION_PROBES: usize = 4;

/// Find the saturation throughput (Gbit/s/host) by a sectioned search on
/// offered load: the largest load in `[lo, hi]` the network accepts
/// without saturating, to within `tol`. Returns `hi` when even the top of
/// the range is absorbed (the true saturation point lies above the probe
/// range). One simulation per probe.
#[allow(clippy::too_many_arguments)]
pub fn find_saturation(
    graph: Arc<Graph>,
    cfg: &SimConfig,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    lo: f64,
    hi: f64,
    tol: f64,
    seed: u64,
) -> f64 {
    find_saturation_with(
        graph,
        cfg,
        make_routing,
        pattern,
        lo,
        hi,
        tol,
        seed,
        &Parallelism::auto(),
    )
}

/// [`find_saturation`] under an explicit [`Parallelism`] policy.
///
/// The initial `probe(hi)` / `probe(lo)` bracket runs both probes
/// concurrently under a parallel policy (both verdicts are needed unless
/// the top of the range is absorbed — the common case when searching);
/// each refinement round then places `SECTION_PROBES` evenly spaced loads
/// inside the bracket and simulates them (concurrently unless the policy
/// is serial), narrowing to the gap around the lowest saturated probe.
/// Every probe is seeded as `seed ^ load.to_bits()`, and the bracketing
/// decision depends only on the probe verdicts, so the result is
/// identical for every worker count.
#[allow(clippy::too_many_arguments)]
pub fn find_saturation_with(
    graph: Arc<Graph>,
    cfg: &SimConfig,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    lo: f64,
    hi: f64,
    tol: f64,
    seed: u64,
    par: &Parallelism,
) -> f64 {
    let routing = sweep_routing(&graph, cfg, None, make_routing);
    saturation_search(graph, cfg, routing, None, pattern, lo, hi, tol, seed, par)
}

/// [`find_saturation_with`] against a shared [`RoutingCache`]; see
/// [`load_sweep_cached`] for the caching contract.
#[allow(clippy::too_many_arguments)]
pub fn find_saturation_cached(
    graph: Arc<Graph>,
    cfg: &SimConfig,
    cache: &Arc<RoutingCache>,
    scheme_key: &str,
    make_routing: impl FnOnce() -> Arc<dyn SimRouting>,
    pattern: &TrafficPattern,
    lo: f64,
    hi: f64,
    tol: f64,
    seed: u64,
    par: &Parallelism,
) -> f64 {
    let routing = sweep_routing(&graph, cfg, Some((cache, scheme_key)), make_routing);
    saturation_search(
        graph,
        cfg,
        routing,
        Some(cache),
        pattern,
        lo,
        hi,
        tol,
        seed,
        par,
    )
}

#[allow(clippy::too_many_arguments)]
fn saturation_search(
    graph: Arc<Graph>,
    cfg: &SimConfig,
    routing: Arc<dyn SimRouting>,
    cache: Option<&Arc<RoutingCache>>,
    pattern: &TrafficPattern,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    seed: u64,
    par: &Parallelism,
) -> f64 {
    assert!(lo > 0.0 && hi > lo && tol > 0.0, "invalid search range");
    let probe = |gbps: f64| -> bool {
        let rate = cfg.packets_per_cycle_for_gbps(gbps);
        let mut sim = Simulator::new(
            graph.clone(),
            cfg.clone(),
            routing.clone(),
            pattern.clone(),
            rate,
            seed ^ gbps.to_bits(),
        );
        if let Some(cache) = cache {
            sim = sim.with_routing_cache(cache.clone());
        }
        sim.run().saturated()
    };
    // Establish the bracket. Serially the lo probe is skipped when the top
    // of the range is absorbed; in parallel both verdicts launch together
    // (the lo verdict is needed in every case that continues) and are
    // reused rather than re-probed.
    let (hi_sat, lo_sat) = if par.is_serial() {
        if !probe(hi) {
            return hi;
        }
        (true, probe(lo))
    } else {
        rayon::join(|| probe(hi), || probe(lo))
    };
    if !hi_sat {
        return hi;
    }
    if lo_sat {
        return lo; // saturated everywhere in range; report the floor
    }
    // Invariant: probe(lo) is absorbed, probe(hi) saturated.
    while hi - lo > tol {
        let step = (hi - lo) / (SECTION_PROBES + 1) as f64;
        let mids: Vec<f64> = (1..=SECTION_PROBES).map(|i| lo + step * i as f64).collect();
        let verdicts: Vec<bool> = if par.is_serial() {
            mids.iter().map(|&m| probe(m)).collect()
        } else {
            mids.par_iter().map(|&m| probe(m)).collect()
        };
        match verdicts.iter().position(|&saturated| saturated) {
            Some(0) => hi = mids[0],
            Some(i) => {
                lo = mids[i - 1];
                hi = mids[i];
            }
            None => lo = mids[SECTION_PROBES - 1],
        }
    }
    lo
}

/// The offered-load grid of the paper's Figure 10 (0.5 – 12 Gbit/s/host).
pub fn paper_load_grid() -> Vec<f64> {
    vec![
        0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0,
    ]
}

/// Render a sweep as aligned text rows (offered, accepted, latency-ns,
/// delivery ratio) for the figure binaries.
pub fn format_sweep(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} / {} traffic\n# {:>8} {:>10} {:>12} {:>9} {:>6}\n",
        result.label, result.pattern, "offered", "accepted", "latency[ns]", "delivered", "sat"
    ));
    for p in &result.points {
        out.push_str(&format!(
            "  {:>8.2} {:>10.3} {:>12.1} {:>9.3} {:>6}\n",
            p.offered_gbps,
            p.stats.accepted_gbps_per_host,
            p.stats.avg_latency_ns,
            p.stats.delivery_ratio(),
            if p.stats.saturated() { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::AdaptiveEscape;
    use dsn_core::ring::Ring;

    #[test]
    fn sweep_produces_monotone_accepted_until_saturation() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let vcs = cfg.vcs;
        let grid = [0.5, 2.0, 8.0];
        // test_small has cycle_ns = 1 and 256-bit flits: x Gbps/host ->
        // x/256 flits per cycle per host... keep loads tiny.
        let res = load_sweep(
            "ring-8",
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            &grid,
            1,
        );
        assert_eq!(res.points.len(), 3);
        assert!(res.points[0].stats.delivered_packets > 0);
        // offered recorded in order
        assert!(res
            .points
            .windows(2)
            .all(|w| w[0].offered_gbps < w[1].offered_gbps));
        let text = format_sweep(&res);
        assert!(text.contains("ring-8"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn find_saturation_brackets() {
        // A ring of 8 with tiny packets saturates somewhere; bisection must
        // return a value inside the probe range, and the point just below
        // must actually be absorbable.
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let vcs = cfg.vcs;
        let sat = find_saturation(
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            1.0,
            200.0,
            10.0,
            3,
        );
        assert!((1.0..=200.0).contains(&sat), "saturation {sat}");
    }

    #[test]
    fn channel_utilization_reported() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let vcs = cfg.vcs;
        let res = load_sweep(
            "ring-8",
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            &[4.0],
            9,
        );
        let s = &res.points[0].stats;
        assert!(s.mean_channel_utilization > 0.0);
        assert!(s.max_channel_utilization >= s.mean_channel_utilization);
        assert!(s.max_channel_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn cached_sweep_is_bit_identical_and_builds_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let vcs = cfg.vcs;
        let grid = [0.5, 2.0, 8.0];
        let baseline = load_sweep(
            "ring-8",
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            &grid,
            1,
        );
        let cache = Arc::new(RoutingCache::new());
        let builds = AtomicUsize::new(0);
        let key = AdaptiveEscape::key_for(vcs);
        for round in 0..2 {
            let cached = load_sweep_cached(
                "ring-8",
                g.clone(),
                &cfg,
                &cache,
                &key,
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    Arc::new(AdaptiveEscape::new(g.clone(), vcs))
                },
                &TrafficPattern::Uniform,
                &grid,
                1,
                &Parallelism::auto(),
            );
            for (a, b) in baseline.points.iter().zip(&cached.points) {
                assert_eq!(
                    a.stats, b.stats,
                    "cached sweep diverged at {} Gbps (round {round})",
                    a.offered_gbps
                );
            }
        }
        assert_eq!(
            builds.load(Ordering::Relaxed),
            1,
            "routing must be built exactly once per (topology, scheme)"
        );
        assert_eq!(cache.misses(), 1);
        assert!(cache.hits() >= 1, "second sweep must hit the cache");
    }

    #[test]
    fn saturation_throughput_positive() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let vcs = cfg.vcs;
        let res = load_sweep(
            "ring-8",
            g.clone(),
            &cfg,
            || Arc::new(AdaptiveEscape::new(g.clone(), vcs)),
            &TrafficPattern::Uniform,
            &[0.5, 1.0],
            2,
        );
        assert!(res.saturation_throughput_gbps() > 0.0);
        assert!(res.low_load_latency_ns() > 0.0);
    }
}
