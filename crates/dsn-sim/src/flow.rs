//! Datacenter workload layer: heavy-tailed flow sources, synchronized
//! incast waves, and dependency-staged collectives.
//!
//! The paper's Figure 10 methodology drives every host with an open-loop
//! Bernoulli packet process. Datacenter evaluations of small-world
//! topologies judge a network on *flow-completion time* instead: hosts
//! start multi-packet flows whose sizes follow heavy-tailed distributions
//! (web-search- and Hadoop-style byte CDFs), arrivals are Poisson or
//! ON-OFF bursty, and collective phases impose *stage dependencies* (a
//! host may send stage `k + 1` only after its stage-`k` receives land).
//!
//! Three building blocks live here:
//!
//! * [`FlowSizeDist`] / [`FlowArrivals`] — pluggable flow-size and
//!   inter-arrival samplers with analytic moments for oracle tests;
//! * `FlowSource` (crate-private) — the per-host open-loop flow state
//!   machine ([`Workload::Flows`](crate::workload::Workload) and
//!   [`Workload::Incast`](crate::workload::Workload)): flows queue in a
//!   per-host backlog and drain one packet per serialization time
//!   (`packet_flits` cycles, the NIC line rate), through the same
//!   calendar-heap injection path as the Bernoulli injector;
//! * [`StagedSpec`] / `StagedState` (crate-private) — dependency-staged
//!   closed collectives (ring and recursive-doubling allreduce, pipelined
//!   all-to-all) generalizing the cycle-0 `Closed` batch.
//!
//! **Determinism.** Every random draw comes from a per-host `SmallRng`
//! seeded by a SplitMix64 mix of the run seed and the host index (salted
//! so flow streams never collide with the Bernoulli injector streams),
//! with a fixed draw order per arrival (destination, size, gap). A host's
//! traffic therefore never depends on how other hosts are iterated, which
//! is what keeps the dense, event, and sharded engines bit-identical on
//! flow workloads: each shard rebuilds all host streams but fires only
//! the hosts it owns.

use crate::inject::{gap, mix, NEVER};
use crate::traffic::TrafficPattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Salt XORed into the run seed before per-host mixing so flow-source
/// streams are decorrelated from the Bernoulli injector streams.
const FLOW_SEED_SALT: u64 = 0xB10C_F10E_5EED_CAFE;

/// Flow-size distribution. `Fixed` and `Pareto` are parameterized
/// directly in packets; `ByteCdf` is a piecewise-linear CDF over flow
/// size in **bytes** (the format datacenter traces are published in),
/// converted to whole packets at sampling time using the configured
/// packet size.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowSizeDist {
    /// Every flow is exactly this many packets (oracle tests).
    Fixed(u32),
    /// Pareto over packets: `P(X > x) = (scale / x)^shape` for
    /// `x >= scale`. Heavy-tailed; the mean is finite for `shape > 1`.
    Pareto {
        /// Minimum flow size in packets (`x_m`), >= 1.
        scale: f64,
        /// Tail index (`alpha`), > 1 so the mean exists.
        shape: f64,
    },
    /// Piecewise-linear CDF over flow size in bytes: `(bytes, cum_prob)`
    /// points, strictly increasing in both coordinates, ending at
    /// probability 1; an implicit `(0, 0)` anchors the first segment.
    ByteCdf(Vec<(f64, f64)>),
}

impl FlowSizeDist {
    /// A web-search-style flow-size CDF (DCTCP/pFabric search workload
    /// shape): ~half the flows under 33 KB, a tail out to ~6.7 MB.
    pub fn websearch() -> Self {
        FlowSizeDist::ByteCdf(vec![
            (6_000.0, 0.15),
            (13_000.0, 0.30),
            (19_000.0, 0.40),
            (33_000.0, 0.53),
            (53_000.0, 0.60),
            (133_000.0, 0.70),
            (667_000.0, 0.80),
            (1_333_000.0, 0.90),
            (3_333_000.0, 0.97),
            (6_667_000.0, 1.00),
        ])
    }

    /// A Hadoop-style flow-size CDF (data-mining workload shape): most
    /// flows tiny, a very heavy tail out to ~1 GB.
    pub fn hadoop() -> Self {
        FlowSizeDist::ByteCdf(vec![
            (1_000.0, 0.20),
            (10_000.0, 0.40),
            (100_000.0, 0.57),
            (1_000_000.0, 0.65),
            (10_000_000.0, 0.80),
            (100_000_000.0, 0.92),
            (1_000_000_000.0, 1.00),
        ])
    }

    /// Sanity-check the parameters.
    ///
    /// # Panics
    /// Panics on out-of-range parameters or a malformed CDF.
    pub fn validate(&self) {
        match self {
            FlowSizeDist::Fixed(n) => assert!(*n >= 1, "fixed flow size must be >= 1 packet"),
            FlowSizeDist::Pareto { scale, shape } => {
                assert!(*scale >= 1.0, "Pareto scale must be >= 1 packet");
                assert!(*shape > 1.0, "Pareto shape must be > 1 (finite mean)");
            }
            FlowSizeDist::ByteCdf(points) => {
                assert!(!points.is_empty(), "byte CDF needs at least one point");
                let mut prev = (0.0f64, 0.0f64);
                for &(b, p) in points {
                    assert!(
                        b > prev.0 && p > prev.1,
                        "byte CDF must be strictly increasing, got ({b}, {p}) after {prev:?}"
                    );
                    prev = (b, p);
                }
                assert_eq!(prev.1, 1.0, "byte CDF must end at probability 1");
            }
        }
    }

    /// One raw sample in the distribution's native unit (packets for
    /// `Fixed` / `Pareto`, bytes for `ByteCdf`) by inverse-transform
    /// sampling; compare against [`FlowSizeDist::mean`] /
    /// [`FlowSizeDist::quantile`] in convergence tests.
    fn sample_raw(&self, rng: &mut SmallRng) -> f64 {
        match self {
            FlowSizeDist::Fixed(n) => *n as f64,
            FlowSizeDist::Pareto { scale, shape } => {
                let u: f64 = rng.gen_f64(); // [0, 1)
                scale / (1.0 - u).powf(1.0 / shape)
            }
            FlowSizeDist::ByteCdf(points) => {
                let u: f64 = rng.gen_f64();
                let (mut b0, mut p0) = (0.0f64, 0.0f64);
                for &(b1, p1) in points {
                    if u < p1 {
                        return b0 + (b1 - b0) * (u - p0) / (p1 - p0);
                    }
                    b0 = b1;
                    p0 = p1;
                }
                b0 // u rounded to 1.0 exactly: the supremum
            }
        }
    }

    /// One flow size in whole packets (>= 1). `bytes_per_packet` converts
    /// `ByteCdf` samples; `Fixed` / `Pareto` are already in packets.
    pub(crate) fn sample_packets(&self, bytes_per_packet: f64, rng: &mut SmallRng) -> u32 {
        let raw = self.sample_raw(rng);
        let packets = match self {
            FlowSizeDist::ByteCdf(_) => (raw / bytes_per_packet).ceil(),
            _ => raw.ceil(),
        };
        (packets.max(1.0).min(u32::MAX as f64)) as u32
    }

    /// Analytic mean in the distribution's native unit.
    pub fn mean(&self) -> f64 {
        match self {
            FlowSizeDist::Fixed(n) => *n as f64,
            FlowSizeDist::Pareto { scale, shape } => scale * shape / (shape - 1.0),
            FlowSizeDist::ByteCdf(points) => {
                let (mut b0, mut p0) = (0.0f64, 0.0f64);
                let mut mean = 0.0;
                for &(b1, p1) in points {
                    mean += (p1 - p0) * 0.5 * (b0 + b1);
                    b0 = b1;
                    p0 = p1;
                }
                mean
            }
        }
    }

    /// Analytic quantile (`0 <= q < 1`) in the distribution's native unit.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile needs 0 <= q < 1");
        match self {
            FlowSizeDist::Fixed(n) => *n as f64,
            FlowSizeDist::Pareto { scale, shape } => scale / (1.0 - q).powf(1.0 / shape),
            FlowSizeDist::ByteCdf(points) => {
                let (mut b0, mut p0) = (0.0f64, 0.0f64);
                for &(b1, p1) in points {
                    if q < p1 {
                        return b0 + (b1 - b0) * (q - p0) / (p1 - p0);
                    }
                    b0 = b1;
                    p0 = p1;
                }
                b0
            }
        }
    }

    /// `n` raw samples from a fresh seeded stream, for convergence and
    /// seed-determinism tests (native unit, see [`FlowSizeDist::mean`]).
    pub fn samples(&self, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(mix(seed ^ FLOW_SEED_SALT, 0));
        (0..n).map(|_| self.sample_raw(&mut rng)).collect()
    }
}

/// Flow inter-arrival process per host.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowArrivals {
    /// Poisson (discretized): each cycle starts a new flow with this
    /// probability, sampled by geometric gaps like the packet injector.
    Poisson {
        /// Flow-arrival probability per host per cycle, in `(0, 1]`.
        flows_per_cycle: f64,
    },
    /// ON-OFF bursty arrivals: within a burst, flows arrive at `on_rate`;
    /// after a geometric number of flows (mean `mean_burst`) the host
    /// goes quiet and the next flow arrives at `off_rate` instead.
    OnOff {
        /// Arrival probability per cycle within a burst, in `(0, 1]`.
        on_rate: f64,
        /// Arrival probability per cycle between bursts, in `(0, 1]`.
        off_rate: f64,
        /// Mean flows per burst, >= 1.
        mean_burst: f64,
    },
}

impl FlowArrivals {
    /// Sanity-check the parameters.
    ///
    /// # Panics
    /// Panics on out-of-range rates or burst length.
    pub fn validate(&self) {
        match self {
            FlowArrivals::Poisson { flows_per_cycle } => {
                assert!(
                    *flows_per_cycle > 0.0 && *flows_per_cycle <= 1.0,
                    "Poisson flow rate must be in (0, 1]"
                );
            }
            FlowArrivals::OnOff {
                on_rate,
                off_rate,
                mean_burst,
            } => {
                assert!(
                    *on_rate > 0.0 && *on_rate <= 1.0 && *off_rate > 0.0 && *off_rate <= 1.0,
                    "ON-OFF rates must be in (0, 1]"
                );
                assert!(*mean_burst >= 1.0, "mean burst must be >= 1 flow");
            }
        }
    }

    /// One inter-arrival gap (>= 1 cycles). Draw order is fixed (burst
    /// coin, then gap) so the per-host streams replay identically.
    fn gap(&self, rng: &mut SmallRng) -> u64 {
        match self {
            FlowArrivals::Poisson { flows_per_cycle } => {
                gap(rng, *flows_per_cycle).expect("validated rate > 0")
            }
            FlowArrivals::OnOff {
                on_rate,
                off_rate,
                mean_burst,
            } => {
                let burst_ends = rng.gen_f64() * *mean_burst < 1.0;
                let rate = if burst_ends { *off_rate } else { *on_rate };
                gap(rng, rate).expect("validated rate > 0")
            }
        }
    }
}

/// One packet emission decided by [`FlowSource::fire`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowEmit {
    /// Flow id: `src_host << 32 | per-host flow sequence number`.
    pub id: u64,
    /// Destination host.
    pub dest: usize,
    /// Total packets of the flow (for completion detection at the sink).
    pub total: u32,
    /// Cycle the flow's first packet was enqueued (FCT start).
    pub start: u64,
    /// True for the flow's first packet.
    pub first: bool,
}

/// What starts flows: random heavy-tailed arrivals or deterministic
/// incast waves.
#[derive(Debug, Clone)]
enum SourceKind {
    /// Heavy-tailed flows to pattern-drawn destinations.
    Random {
        pattern: TrafficPattern,
        sizes: FlowSizeDist,
        arrivals: FlowArrivals,
    },
    /// Synchronized N-to-1 fan-in: wave `w` starts at `w * wave_period`,
    /// aggregator `w % hosts`, senders the next `fanin` hosts on the
    /// ring, each sending a `request_packets`-packet response.
    Incast {
        fanin: u32,
        request_packets: u32,
        wave_period: u64,
    },
}

/// Per-host flow bookkeeping.
#[derive(Debug, Clone)]
struct HostState {
    rng: SmallRng,
    /// Next flow-arrival cycle ([`NEVER`] = none).
    next_arrival: u64,
    /// Incast only: wave index of the next arrival.
    wave: u64,
    flow_seq: u32,
    backlog: VecDeque<PendingFlow>,
    /// Next packet-emission cycle ([`NEVER`] when the backlog is empty).
    next_emit: u64,
}

/// A flow waiting in (or draining through) a host's backlog.
#[derive(Debug, Clone)]
struct PendingFlow {
    id: u64,
    dest: u32,
    total: u32,
    sent: u32,
    start: u64,
}

/// The per-host open-loop flow state machine driving
/// [`Workload::Flows`](crate::workload::Workload) and
/// [`Workload::Incast`](crate::workload::Workload).
///
/// Arrived flows queue in a per-host FIFO backlog and drain one packet
/// every [`FlowSource::pacing`] cycles (one packet's serialization time —
/// NIC line rate), so a host never offers more than the paper's injection
/// model allows. Flows are emitted in arrival order, head-of-line.
#[derive(Debug, Clone)]
pub(crate) struct FlowSource {
    kind: SourceKind,
    /// Cycles between consecutive packet emissions of one host.
    pacing: u64,
    bytes_per_packet: f64,
    hosts: Vec<HostState>,
}

impl FlowSource {
    /// Heavy-tailed random flows (`Workload::Flows`).
    pub fn new_random(
        seed: u64,
        hosts: usize,
        pattern: TrafficPattern,
        sizes: FlowSizeDist,
        arrivals: FlowArrivals,
        packet_flits: usize,
        flit_bits: usize,
    ) -> Self {
        sizes.validate();
        arrivals.validate();
        assert!(hosts >= 2, "flow workloads need at least two hosts");
        let mut fs = FlowSource {
            kind: SourceKind::Random {
                pattern,
                sizes,
                arrivals,
            },
            pacing: (packet_flits as u64).max(1),
            bytes_per_packet: (packet_flits * flit_bits) as f64 / 8.0,
            hosts: Vec::with_capacity(hosts),
        };
        for h in 0..hosts {
            let mut rng = SmallRng::seed_from_u64(mix(seed ^ FLOW_SEED_SALT, h as u64));
            // First arrival at `gap - 1`, like the Bernoulli injector, so
            // cycle 0 starts a flow with the per-cycle probability.
            let first = match &fs.kind {
                SourceKind::Random { arrivals, .. } => arrivals.gap(&mut rng) - 1,
                SourceKind::Incast { .. } => unreachable!(),
            };
            fs.hosts.push(HostState {
                rng,
                next_arrival: first,
                wave: 0,
                flow_seq: 0,
                backlog: VecDeque::new(),
                next_emit: NEVER,
            });
        }
        fs
    }

    /// Synchronized incast waves (`Workload::Incast`).
    pub fn new_incast(
        seed: u64,
        hosts: usize,
        fanin: u32,
        request_packets: u32,
        wave_period: u64,
        packet_flits: usize,
        flit_bits: usize,
    ) -> Self {
        assert!(hosts >= 2, "incast needs at least two hosts");
        assert!(
            fanin >= 1 && (fanin as usize) < hosts,
            "incast fan-in must be in [1, hosts)"
        );
        assert!(request_packets >= 1, "incast request must be >= 1 packet");
        assert!(wave_period >= 1, "incast wave period must be >= 1 cycle");
        let kind = SourceKind::Incast {
            fanin,
            request_packets,
            wave_period,
        };
        let mut fs = FlowSource {
            kind,
            pacing: (packet_flits as u64).max(1),
            bytes_per_packet: (packet_flits * flit_bits) as f64 / 8.0,
            hosts: Vec::with_capacity(hosts),
        };
        for h in 0..hosts {
            let (wave, cycle) = incast_next_wave(h, hosts, fanin, wave_period, 0);
            fs.hosts.push(HostState {
                // Incast is deterministic; the stream is unused but kept so
                // the host-state layout is uniform.
                rng: SmallRng::seed_from_u64(mix(seed ^ FLOW_SEED_SALT, h as u64)),
                next_arrival: cycle,
                wave,
                flow_seq: 0,
                backlog: VecDeque::new(),
                next_emit: NEVER,
            });
        }
        fs
    }

    /// The cycle of this host's next action (arrival or emission);
    /// [`NEVER`] when it has nothing scheduled.
    #[inline]
    pub fn next_cycle(&self, host: usize) -> u64 {
        let hs = &self.hosts[host];
        hs.next_arrival.min(hs.next_emit)
    }

    /// Run `host`'s due actions at `now`: process at most one flow
    /// arrival, then at most one packet emission. Returns the packet to
    /// enqueue, if any. Afterwards [`FlowSource::next_cycle`] is strictly
    /// greater than `now` (or [`NEVER`]).
    pub fn fire(&mut self, host: usize, now: u64) -> Option<FlowEmit> {
        let nhosts = self.hosts.len();
        let hs = &mut self.hosts[host];
        if hs.next_arrival == now {
            let (dest, total) = match &self.kind {
                SourceKind::Random {
                    pattern,
                    sizes,
                    arrivals,
                } => {
                    // Fixed draw order: destination, size, next gap.
                    let dest = pattern.pick(host, nhosts, &mut hs.rng) as u32;
                    let total = sizes.sample_packets(self.bytes_per_packet, &mut hs.rng);
                    hs.next_arrival = now + arrivals.gap(&mut hs.rng);
                    (dest, total)
                }
                SourceKind::Incast {
                    fanin,
                    request_packets,
                    wave_period,
                } => {
                    let agg = (hs.wave % nhosts as u64) as u32;
                    let (wave, cycle) =
                        incast_next_wave(host, nhosts, *fanin, *wave_period, hs.wave + 1);
                    hs.wave = wave;
                    hs.next_arrival = cycle;
                    (agg, *request_packets)
                }
            };
            let id = (host as u64) << 32 | hs.flow_seq as u64;
            hs.flow_seq += 1;
            hs.backlog.push_back(PendingFlow {
                id,
                dest,
                total,
                sent: 0,
                start: 0,
            });
            // An idle host (empty backlog) emits the new flow's first
            // packet immediately; a busy host keeps its paced schedule.
            if hs.next_emit == NEVER {
                hs.next_emit = now;
            }
        }
        if hs.next_emit == now {
            let f = hs.backlog.front_mut().expect("emission due => backlog");
            let first = f.sent == 0;
            if first {
                f.start = now;
            }
            f.sent += 1;
            let emit = FlowEmit {
                id: f.id,
                dest: f.dest as usize,
                total: f.total,
                start: f.start,
                first,
            };
            if f.sent == f.total {
                hs.backlog.pop_front();
            }
            hs.next_emit = if hs.backlog.is_empty() {
                NEVER
            } else {
                now + self.pacing
            };
            return Some(emit);
        }
        None
    }
}

/// The first wave index `>= from` in which `host` is one of the `fanin`
/// senders, and its start cycle. Wave `w`'s aggregator is `w % hosts`;
/// its senders are the next `fanin` hosts clockwise on the ring.
fn incast_next_wave(
    host: usize,
    hosts: usize,
    fanin: u32,
    wave_period: u64,
    from: u64,
) -> (u64, u64) {
    let mut w = from;
    loop {
        let agg = (w % hosts as u64) as usize;
        let offset = (host + hosts - agg) % hosts;
        if offset >= 1 && offset <= fanin as usize {
            return (w, w * wave_period);
        }
        w += 1;
    }
}

/// A dependency-staged closed collective: per (host, stage) send lists in
/// CSR form plus the per-(host, stage) expected receive counts. Stage
/// `k + 1` of a host releases only when its stage-`k` receives complete;
/// stage 0 releases at cycle 0.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedSpec {
    name: &'static str,
    hosts: u32,
    stages: u32,
    msg_packets: u32,
    /// CSR offsets into `send_dest`, indexed by `host * stages + stage`.
    send_off: Vec<u32>,
    send_dest: Vec<u32>,
    /// Packets each (host, stage) must receive before its next stage.
    expect: Vec<u32>,
}

impl StagedSpec {
    /// Build a one-send-per-stage collective from a destination function.
    fn from_dests(
        name: &'static str,
        hosts: usize,
        stages: u32,
        msg_packets: u32,
        dest: impl Fn(usize, u32) -> usize,
    ) -> Self {
        assert!(hosts >= 2, "staged collectives need at least two hosts");
        assert!(msg_packets >= 1, "stage messages must be >= 1 packet");
        let cells = hosts * stages as usize;
        let mut send_off = Vec::with_capacity(cells + 1);
        let mut send_dest = Vec::with_capacity(cells);
        let mut expect = vec![0u32; cells];
        send_off.push(0);
        for h in 0..hosts {
            for s in 0..stages {
                let d = dest(h, s);
                assert_ne!(d, h, "staged collective self-send at host {h} stage {s}");
                assert!(d < hosts, "staged destination out of range");
                send_dest.push(d as u32);
                expect[d * stages as usize + s as usize] += msg_packets;
                send_off.push(send_dest.len() as u32);
            }
        }
        StagedSpec {
            name,
            hosts: hosts as u32,
            stages,
            msg_packets,
            send_off,
            send_dest,
            expect,
        }
    }

    /// Ring allreduce: `2 (N - 1)` stages (reduce-scatter then allgather),
    /// each host passing one `msg_packets`-packet chunk to its clockwise
    /// neighbor per stage.
    pub fn ring_allreduce(hosts: usize, msg_packets: u32) -> Self {
        let stages = 2 * (hosts as u32 - 1);
        Self::from_dests("ring_allreduce", hosts, stages, msg_packets, |h, _| {
            (h + 1) % hosts
        })
    }

    /// Recursive-doubling allreduce: `log2 N` stages, stage `s` pairing
    /// host `h` with `h XOR 2^s`. `hosts` must be a power of two.
    pub fn recursive_doubling_allreduce(hosts: usize, msg_packets: u32) -> Self {
        assert!(
            hosts.is_power_of_two(),
            "recursive doubling needs a power-of-two host count"
        );
        let stages = hosts.trailing_zeros();
        Self::from_dests(
            "recursive_doubling_allreduce",
            hosts,
            stages,
            msg_packets,
            |h, s| h ^ (1usize << s),
        )
    }

    /// Pipelined all-to-all: `N - 1` stages, stage `s` sending host `h`'s
    /// chunk to `(h + s + 1) mod N` — each stage is a perfect matching, so
    /// the exchange streams through the network instead of bursting.
    pub fn pipelined_all_to_all(hosts: usize, msg_packets: u32) -> Self {
        let stages = hosts as u32 - 1;
        Self::from_dests(
            "pipelined_all_to_all",
            hosts,
            stages,
            msg_packets,
            |h, s| (h + s as usize + 1) % hosts,
        )
    }

    /// Stable collective name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Participating hosts. The simulated network must have at least this
    /// many hosts; extra hosts stay idle.
    pub fn hosts(&self) -> usize {
        self.hosts as usize
    }

    /// Dependency stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Packets per stage message.
    pub fn msg_packets(&self) -> u32 {
        self.msg_packets
    }

    /// Total packets the collective injects (the closed-batch size).
    pub fn total_packets(&self) -> u64 {
        self.send_dest.len() as u64 * self.msg_packets as u64
    }

    /// Total packets injected by hosts selected by `local` (per-shard
    /// closed-batch size).
    pub(crate) fn total_packets_from(&self, local: impl Fn(usize) -> bool) -> u64 {
        let stages = self.stages as usize;
        (0..self.hosts as usize)
            .filter(|&h| local(h))
            .map(|h| {
                let lo = self.send_off[h * stages] as usize;
                let hi = self.send_off[(h + 1) * stages] as usize;
                (hi - lo) as u64 * self.msg_packets as u64
            })
            .sum()
    }

    /// Destinations of `host`'s stage-`s` sends.
    fn sends(&self, host: usize, stage: u32) -> &[u32] {
        let i = host * self.stages as usize + stage as usize;
        let lo = self.send_off[i] as usize;
        let hi = self.send_off[i + 1] as usize;
        &self.send_dest[lo..hi]
    }

    /// Packets `host` must receive in stage `s` before releasing `s + 1`.
    fn expected(&self, host: usize, stage: u32) -> u32 {
        self.expect[host * self.stages as usize + stage as usize]
    }
}

/// Runtime dependency tracking for a [`StagedSpec`]: per-(host, stage)
/// receive counters and the per-host release frontier.
#[derive(Debug, Clone)]
pub(crate) struct StagedState {
    spec: StagedSpec,
    /// Packets received so far, indexed by `host * stages + stage`.
    recv: Vec<u32>,
    /// Stages released (sends enqueued) so far, per host.
    released: Vec<u32>,
}

impl StagedState {
    pub fn new(spec: StagedSpec) -> Self {
        let cells = spec.hosts as usize * spec.stages as usize;
        let hosts = spec.hosts as usize;
        StagedState {
            spec,
            recv: vec![0; cells],
            released: vec![0; hosts],
        }
    }

    pub fn spec(&self) -> &StagedSpec {
        &self.spec
    }

    /// A stage-`stage` packet was delivered to `host`; true when that
    /// stage's receive expectation is now exactly met (fires once).
    pub fn on_recv(&mut self, host: usize, stage: u32) -> bool {
        let i = host * self.spec.stages as usize + stage as usize;
        self.recv[i] += 1;
        debug_assert!(
            self.recv[i] <= self.spec.expected(host, stage),
            "host {host} stage {stage} over-received"
        );
        self.recv[i] == self.spec.expected(host, stage)
    }

    /// Append every send `host` may newly release as `(dest, stage)`
    /// pairs: stage `s` releases when `s == 0` or stage `s - 1`'s
    /// receives are complete. Idempotent — already-released stages are
    /// skipped — and cascading through zero-expectation stages.
    pub fn collect_releases(&mut self, host: usize, out: &mut Vec<(u32, u32)>) {
        loop {
            let s = self.released[host];
            if s >= self.spec.stages {
                return;
            }
            if s > 0 {
                let prev = host * self.spec.stages as usize + (s - 1) as usize;
                if self.recv[prev] < self.spec.expect[prev] {
                    return;
                }
            }
            for &d in self.spec.sends(host, s) {
                out.push((d, s));
            }
            self.released[host] = s + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_cdf_mean_and_quantiles_are_consistent() {
        let d = FlowSizeDist::websearch();
        d.validate();
        // The analytic quantile inverts the CDF: q=0.53 lands exactly on
        // the 33 KB knot; the mean lies between the extremes.
        assert!((d.quantile(0.53) - 33_000.0).abs() < 1e-6);
        let m = d.mean();
        assert!(m > 33_000.0 && m < 6_667_000.0, "websearch mean {m}");
    }

    #[test]
    fn samples_are_seed_deterministic() {
        for d in [
            FlowSizeDist::Fixed(7),
            FlowSizeDist::Pareto {
                scale: 2.0,
                shape: 2.5,
            },
            FlowSizeDist::websearch(),
            FlowSizeDist::hadoop(),
        ] {
            assert_eq!(d.samples(42, 100), d.samples(42, 100));
            if !matches!(d, FlowSizeDist::Fixed(_)) {
                assert_ne!(d.samples(42, 100), d.samples(43, 100));
            }
        }
    }

    #[test]
    fn sample_packets_is_at_least_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = FlowSizeDist::ByteCdf(vec![(10.0, 1.0)]); // tiny flows
        for _ in 0..100 {
            assert!(d.sample_packets(1056.0, &mut rng) >= 1);
        }
    }

    #[test]
    fn flow_source_paces_at_line_rate() {
        // One flow of 3 packets arriving at cycle 0 on an otherwise silent
        // host must emit at 0, pacing, 2*pacing.
        let mut fs = FlowSource::new_random(
            7,
            4,
            TrafficPattern::Uniform,
            FlowSizeDist::Fixed(3),
            FlowArrivals::Poisson {
                flows_per_cycle: 1e-9,
            },
            4,
            256,
        );
        // Force host 0's arrival to cycle 0 and silence later arrivals.
        fs.hosts[0].next_arrival = 0;
        let mut emits = Vec::new();
        let mut now = 0;
        while fs.next_cycle(0) != NEVER && emits.len() < 3 {
            now = fs.next_cycle(0).max(now);
            if let Some(e) = fs.fire(0, now) {
                emits.push((now, e));
                assert!(fs.next_cycle(0) > now, "post-fire schedule must advance");
            }
        }
        assert_eq!(emits.len(), 3);
        assert_eq!(emits[0].0, 0);
        assert_eq!(emits[1].0, fs.pacing);
        assert_eq!(emits[2].0, 2 * fs.pacing);
        assert!(emits[0].1.first && !emits[1].1.first && !emits[2].1.first);
        assert!(emits.iter().all(|(_, e)| e.total == 3 && e.start == 0));
        assert!(emits.iter().all(|(_, e)| e.dest != 0), "no self-sends");
    }

    #[test]
    fn incast_waves_fan_in_to_the_aggregator() {
        let hosts = 8;
        let fanin = 3;
        let period = 100;
        let mut fs = FlowSource::new_incast(0, hosts, fanin, 2, period, 4, 256);
        // Wave 0: aggregator 0, senders 1..=3 at cycle 0.
        for h in 0..hosts {
            let due = fs.next_cycle(h);
            if (1..=fanin as usize).contains(&h) {
                assert_eq!(due, 0, "host {h} sends in wave 0");
                let e = fs.fire(h, 0).expect("first packet due");
                assert_eq!(e.dest, 0);
                assert_eq!(e.total, 2);
            } else {
                assert!(due > 0, "host {h} idle in wave 0");
            }
        }
        // Wave 1: aggregator 1, senders 2..=4 at cycle `period`.
        assert_eq!(fs.next_cycle(4), period);
        let e = fs.fire(4, period).expect("wave-1 packet");
        assert_eq!(e.dest, 1);
    }

    #[test]
    fn staged_specs_have_the_expected_shape() {
        let ring = StagedSpec::ring_allreduce(8, 3);
        assert_eq!(ring.stages(), 14);
        assert_eq!(ring.total_packets(), 8 * 14 * 3);
        let rd = StagedSpec::recursive_doubling_allreduce(8, 2);
        assert_eq!(rd.stages(), 3);
        assert_eq!(rd.total_packets(), 8 * 3 * 2);
        let a2a = StagedSpec::pipelined_all_to_all(5, 1);
        assert_eq!(a2a.stages(), 4);
        assert_eq!(a2a.total_packets(), 5 * 4);
        // Every (host, stage) of each collective expects exactly one
        // message's worth of packets.
        for spec in [&ring, &rd, &a2a] {
            for h in 0..spec.hosts() {
                for s in 0..spec.stages() {
                    assert_eq!(spec.expected(h, s), spec.msg_packets());
                }
            }
        }
    }

    #[test]
    fn staged_state_releases_in_dependency_order() {
        let spec = StagedSpec::ring_allreduce(4, 1);
        let mut st = StagedState::new(spec);
        let mut out = Vec::new();
        // Stage 0 releases unconditionally.
        st.collect_releases(0, &mut out);
        assert_eq!(out, vec![(1, 0)]);
        out.clear();
        // Nothing more until stage 0's receive lands.
        st.collect_releases(0, &mut out);
        assert!(out.is_empty());
        assert!(st.on_recv(0, 0), "expectation met exactly once");
        st.collect_releases(0, &mut out);
        assert_eq!(out, vec![(1, 1)]);
    }

    #[test]
    fn shard_local_totals_partition_the_batch() {
        let spec = StagedSpec::pipelined_all_to_all(6, 2);
        let a = spec.total_packets_from(|h| h < 3);
        let b = spec.total_packets_from(|h| h >= 3);
        assert_eq!(a + b, spec.total_packets());
    }
}
