//! Shared routing-table cache for sweeps and fault runs.
//!
//! Building a routing scheme is the dominant per-point setup cost of a load
//! sweep: an up*/down* forest, an all-pairs distance table, and (with
//! [`crate::config::RoutingTables::Flat`]) the flattened candidate arena
//! are all recomputed per simulation even though every point of a sweep
//! shares one topology. A [`RoutingCache`] memoizes built schemes by
//! `(topology, scheme key, fault epoch)` so each table is built exactly
//! once per sweep and shared (via `Arc`) across the parallel probes.
//!
//! Keys:
//! - **topology** — the `Arc<Graph>` pointer address. The cache pins the
//!   `Arc` alive for its own lifetime, so the address cannot be reused by
//!   a different graph while cached entries exist.
//! - **scheme key** — [`crate::routing::SimRouting::scheme_key`], a string
//!   that must uniquely identify the built tables for a given graph (the
//!   built-in schemes embed their VC/lane parameters).
//! - **fault epoch** — [`EdgeMask::fingerprint`] of the survivor mask,
//!   `0` for the pristine topology. Fault rebuilds that reach the same
//!   survivor state (e.g. every probe of a degraded sweep replaying one
//!   fault schedule) reuse one rebuilt scheme instead of recomputing it
//!   per simulation.
//!
//! The sharded engine is cache-neutral: every shard receives a clone of
//! the coordinator's routing `Arc` and of its cache handle, so sharding a
//! run adds zero builds regardless of the worker count.

use crate::routing::SimRouting;
use dsn_core::fault::EdgeMask;
use dsn_core::graph::Graph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: `(graph address, scheme key, mask fingerprint)`.
type Key = (usize, String, u64);

struct Entry {
    routing: Arc<dyn SimRouting>,
    /// Pins the graph so its address (part of the key) stays unique.
    _graph: Arc<Graph>,
}

/// Memoizes built routing schemes across simulations. See the module docs.
///
/// Cheap to share: clone the `Arc<RoutingCache>` into every sweep worker.
/// Builds happen under the cache lock, so concurrent requests for the same
/// key build **exactly once** — the losers of the race block and receive
/// the winner's table.
#[derive(Default)]
pub struct RoutingCache {
    inner: Mutex<HashMap<Key, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RoutingCache {
    /// An empty cache.
    pub fn new() -> Self {
        RoutingCache::default()
    }

    /// Fetch the pristine-topology scheme for `(graph, key)`, building it
    /// with `build` on first request. `key` must uniquely identify what
    /// `build` produces for this graph ([`SimRouting::scheme_key`] of the
    /// built scheme is the conventional choice).
    pub fn get_or_build(
        &self,
        graph: &Arc<Graph>,
        key: &str,
        build: impl FnOnce() -> Arc<dyn SimRouting>,
    ) -> Arc<dyn SimRouting> {
        self.fetch(graph, key, 0, || Some(build()))
            .expect("pristine build cannot fail")
    }

    /// Fetch the post-fault rebuild of `base` for the survivor `mask`,
    /// delegating to [`SimRouting::rebuild`] on first request. Returns
    /// `None` (and caches nothing) when the scheme does not support
    /// online reroute.
    pub fn rebuild(
        &self,
        graph: &Arc<Graph>,
        base: &Arc<dyn SimRouting>,
        mask: &EdgeMask,
    ) -> Option<Arc<dyn SimRouting>> {
        self.fetch(graph, &base.scheme_key(), mask.fingerprint(), || {
            base.rebuild(graph, mask)
        })
    }

    fn fetch(
        &self,
        graph: &Arc<Graph>,
        key: &str,
        epoch: u64,
        build: impl FnOnce() -> Option<Arc<dyn SimRouting>>,
    ) -> Option<Arc<dyn SimRouting>> {
        let full_key = (Arc::as_ptr(graph) as usize, key.to_owned(), epoch);
        let mut map = self.inner.lock().expect("routing cache poisoned");
        if let Some(entry) = map.get(&full_key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(entry.routing.clone());
        }
        // Build under the lock: concurrent probes asking for the same
        // table must not build it twice (the build is the expensive part
        // the cache exists to dedupe).
        let routing = build()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        map.insert(
            full_key,
            Entry {
                routing: routing.clone(),
                _graph: graph.clone(),
            },
        );
        Some(routing)
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that built a new table (including fault rebuilds).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for RoutingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingCache")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::AdaptiveEscape;
    use dsn_core::ring::Ring;
    use std::sync::atomic::AtomicUsize;

    fn ring_graph(n: usize) -> Arc<Graph> {
        Arc::new(Ring::new(n).unwrap().into_graph())
    }

    #[test]
    fn builds_once_per_key() {
        let g = ring_graph(8);
        let cache = RoutingCache::new();
        let builds = AtomicUsize::new(0);
        let make = || -> Arc<dyn SimRouting> {
            builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(AdaptiveEscape::new(g.clone(), 4))
        };
        let key = make().scheme_key(); // throwaway probe build for the key
        builds.store(0, Ordering::Relaxed);
        let a = cache.get_or_build(&g, &key, make);
        let b = cache.get_or_build(&g, &key, make);
        assert_eq!(builds.load(Ordering::Relaxed), 1, "second fetch is a hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_graphs_and_epochs_do_not_collide() {
        let g1 = ring_graph(8);
        let g2 = ring_graph(8);
        let cache = RoutingCache::new();
        let r1 = cache.get_or_build(&g1, "k", || Arc::new(AdaptiveEscape::new(g1.clone(), 4)));
        let r2 = cache.get_or_build(&g2, "k", || Arc::new(AdaptiveEscape::new(g2.clone(), 4)));
        assert!(!Arc::ptr_eq(&r1, &r2), "same key on another graph misses");

        // a degraded epoch rebuild is cached separately from pristine
        let mut mask = EdgeMask::fully_alive(&g1);
        mask.set_edge_admin(&g1, 0, false);
        let d1 = cache.rebuild(&g1, &r1, &mask).expect("rebuild supported");
        let d2 = cache.rebuild(&g1, &r1, &mask).expect("rebuild supported");
        assert!(Arc::ptr_eq(&d1, &d2), "same survivor state is a hit");
        assert!(!Arc::ptr_eq(&d1, &r1));
        assert_eq!(cache.misses(), 3);
    }
}
