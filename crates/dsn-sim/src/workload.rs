//! Workload descriptions: the paper's open-loop synthetic traffic, plus
//! closed *batch* workloads (e.g. a full all-to-all exchange) whose
//! completion time — not steady-state latency — is the figure of merit,
//! matching the collective-communication patterns that make HPC
//! applications latency-sensitive in the first place (paper Section I) —
//! plus the datacenter workload layer ([`crate::flow`]): heavy-tailed
//! multi-packet flows, synchronized incast waves, and dependency-staged
//! collectives judged on flow-completion time.

use crate::flow::{FlowArrivals, FlowSizeDist, StagedSpec};
use crate::traffic::TrafficPattern;

/// What drives packet injection.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Open loop: every host injects with the given probability per cycle,
    /// destinations drawn from the pattern (the Figure 10 methodology).
    Open {
        /// Destination distribution.
        pattern: TrafficPattern,
        /// Injection probability per host per cycle.
        packets_per_cycle_per_host: f64,
    },
    /// Closed batch: a fixed list of `(src_host, dest_host)` packets all
    /// enqueued at cycle 0; the run ends when the last one is delivered.
    Closed {
        /// The packets to exchange.
        packets: Vec<(usize, usize)>,
    },
    /// Open-loop multi-packet flows: each host starts flows whose sizes
    /// come from a heavy-tailed distribution and whose destinations come
    /// from the pattern; flows drain through a per-host line-rate backlog
    /// and are scored on flow-completion time ([`crate::RunStats`]).
    Flows {
        /// Destination distribution.
        pattern: TrafficPattern,
        /// Flow-size distribution.
        sizes: FlowSizeDist,
        /// Flow inter-arrival process per host.
        arrivals: FlowArrivals,
    },
    /// Synchronized N-to-1 incast: wave `w` starts at `w * wave_period`
    /// with aggregator `w mod hosts` and the next `fanin` ring hosts each
    /// sending it a `request_packets`-packet response.
    Incast {
        /// Concurrent senders per wave (in `[1, hosts)`).
        fanin: u32,
        /// Response size in packets.
        request_packets: u32,
        /// Cycles between wave starts.
        wave_period: u64,
    },
    /// A dependency-staged closed collective (ring / recursive-doubling
    /// allreduce, pipelined all-to-all): stage `k + 1` of a host releases
    /// only when its stage-`k` receives complete. Generalizes `Closed`,
    /// whose whole batch releases at cycle 0.
    Staged(StagedSpec),
}

impl Workload {
    /// A full all-to-all exchange: every ordered pair of distinct hosts,
    /// in a src-major order (each host's send queue is its destination
    /// sequence).
    pub fn all_to_all(hosts: usize) -> Self {
        let mut packets = Vec::with_capacity(hosts * (hosts - 1));
        for s in 0..hosts {
            for d in 0..hosts {
                if s != d {
                    packets.push((s, d));
                }
            }
        }
        Workload::Closed { packets }
    }

    /// A ring shift: host `i` sends `count` packets to host `(i + offset)
    /// mod hosts` — the nearest-neighbor exchange of stencil codes.
    ///
    /// The batch is emitted **round-major**: one packet per host for round
    /// 0, then one per host for round 1, and so on — `(0, d0), (1, d1),
    /// ..., (0, d0), (1, d1), ...` — *not* src-major like
    /// [`Workload::all_to_all`]. Since the cycle-0 batch is enqueued in
    /// list order, each host still sees its own `count` repetitions in
    /// order, but packets of round `r` of every host precede round `r + 1`
    /// of any host in uid/slab order (pinned by a unit test).
    pub fn ring_shift(hosts: usize, offset: usize, count: usize) -> Self {
        let mut packets = Vec::with_capacity(hosts * count);
        for _ in 0..count {
            for s in 0..hosts {
                let d = (s + offset) % hosts;
                if d != s {
                    packets.push((s, d));
                }
            }
        }
        Workload::Closed { packets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_counts() {
        let w = Workload::all_to_all(8);
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert_eq!(packets.len(), 8 * 7);
        assert!(packets.iter().all(|&(s, d)| s != d && s < 8 && d < 8));
    }

    #[test]
    fn ring_shift_counts() {
        let w = Workload::ring_shift(8, 1, 3);
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert_eq!(packets.len(), 24);
        assert!(packets.iter().all(|&(s, d)| d == (s + 1) % 8));
    }

    #[test]
    fn ring_shift_is_round_major() {
        // Pin the documented emission order: round r of every host
        // precedes round r + 1 of any host.
        let w = Workload::ring_shift(3, 1, 2);
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert_eq!(
            packets,
            vec![(0, 1), (1, 2), (2, 0), (0, 1), (1, 2), (2, 0)],
            "ring_shift emits round-major, not src-major"
        );
    }

    #[test]
    fn self_sends_skipped() {
        let w = Workload::ring_shift(4, 4, 1); // offset = hosts -> self
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert!(packets.is_empty());
    }
}
