//! Workload descriptions: the paper's open-loop synthetic traffic, plus
//! closed *batch* workloads (e.g. a full all-to-all exchange) whose
//! completion time — not steady-state latency — is the figure of merit,
//! matching the collective-communication patterns that make HPC
//! applications latency-sensitive in the first place (paper Section I).

use crate::traffic::TrafficPattern;

/// What drives packet injection.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Open loop: every host injects with the given probability per cycle,
    /// destinations drawn from the pattern (the Figure 10 methodology).
    Open {
        /// Destination distribution.
        pattern: TrafficPattern,
        /// Injection probability per host per cycle.
        packets_per_cycle_per_host: f64,
    },
    /// Closed batch: a fixed list of `(src_host, dest_host)` packets all
    /// enqueued at cycle 0; the run ends when the last one is delivered.
    Closed {
        /// The packets to exchange.
        packets: Vec<(usize, usize)>,
    },
}

impl Workload {
    /// A full all-to-all exchange: every ordered pair of distinct hosts,
    /// in a src-major order (each host's send queue is its destination
    /// sequence).
    pub fn all_to_all(hosts: usize) -> Self {
        let mut packets = Vec::with_capacity(hosts * (hosts - 1));
        for s in 0..hosts {
            for d in 0..hosts {
                if s != d {
                    packets.push((s, d));
                }
            }
        }
        Workload::Closed { packets }
    }

    /// A ring shift: host `i` sends `count` packets to host `(i + offset)
    /// mod hosts` — the nearest-neighbor exchange of stencil codes.
    pub fn ring_shift(hosts: usize, offset: usize, count: usize) -> Self {
        let mut packets = Vec::with_capacity(hosts * count);
        for _ in 0..count {
            for s in 0..hosts {
                let d = (s + offset) % hosts;
                if d != s {
                    packets.push((s, d));
                }
            }
        }
        Workload::Closed { packets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_counts() {
        let w = Workload::all_to_all(8);
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert_eq!(packets.len(), 8 * 7);
        assert!(packets.iter().all(|&(s, d)| s != d && s < 8 && d < 8));
    }

    #[test]
    fn ring_shift_counts() {
        let w = Workload::ring_shift(8, 1, 3);
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert_eq!(packets.len(), 24);
        assert!(packets.iter().all(|&(s, d)| d == (s + 1) % 8));
    }

    #[test]
    fn self_sends_skipped() {
        let w = Workload::ring_shift(4, 4, 1); // offset = hosts -> self
        let Workload::Closed { packets } = w else {
            panic!("expected closed")
        };
        assert!(packets.is_empty());
    }
}
