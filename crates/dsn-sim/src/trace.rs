//! Deprecated relocation shim: the per-packet tracer moved to the
//! [`dsn_telemetry`] crate (one tracing/telemetry entry point for the
//! whole workspace). The types below are re-exported unchanged — switch
//! imports to `dsn_telemetry::{PacketTracer, TraceEvent, TraceRecord}` or
//! the crate-root re-exports (`dsn_sim::PacketTracer`).

#[deprecated(
    since = "0.1.0",
    note = "moved to the dsn-telemetry crate; use `dsn_telemetry::PacketTracer` \
            (also re-exported as `dsn_sim::PacketTracer`)"
)]
pub use dsn_telemetry::PacketTracer;

#[deprecated(
    since = "0.1.0",
    note = "moved to the dsn-telemetry crate; use `dsn_telemetry::TraceEvent` \
            (also re-exported as `dsn_sim::TraceEvent`)"
)]
pub use dsn_telemetry::TraceEvent;

#[deprecated(
    since = "0.1.0",
    note = "moved to the dsn-telemetry crate; use `dsn_telemetry::TraceRecord` \
            (also re-exported as `dsn_sim::TraceRecord`)"
)]
pub use dsn_telemetry::TraceRecord;
