//! Runtime fault injection with online reroute.
//!
//! A [`FaultPlan`] scripts link/switch down/up events at given cycles —
//! hand-written ([`FaultPlan::single_link`], [`FaultPlan::burst`],
//! [`FaultPlan::flap`]) or seeded-random ([`FaultPlan::random_links`],
//! [`FaultPlan::random_connected`]). The plan executes identically on the
//! dense and event engines as *phase 0* of a cycle, before credit returns:
//!
//! 1. the [`EdgeMask`] marks the affected channels dead;
//! 2. packets straddling a dying channel are dropped everywhere — buffers,
//!    wire, allocations — with their credits handed straight back (credit
//!    conservation is maintained continuously, so a later `LinkUp` revives
//!    the channel with no fixup), or *salvaged* in place when they have not
//!    yet sent a single flit and [`SalvagePolicy::Salvage`] is configured;
//! 3. routing is rebuilt on the survivor graph
//!    ([`crate::routing::SimRouting::rebuild`]): up*/down* recomputes its
//!    forest via `dsn-route`, source-routed schemes (DSN custom routing)
//!    fall back to a greedy ring detour;
//! 4. dropped packets may be re-sent by their source host after a timeout
//!    with exponential backoff ([`RetryPolicy`]).
//!
//! Every mutation goes through the shared helpers in `engine.rs`, so
//! [`crate::RunStats`] stay bit-identical between the two engines under any
//! fault schedule (`tests/fault_equivalence.rs`).

use crate::engine::{
    decode_alloc, ovc_owner_of, owner_pack, owner_unpack, OutRef, Simulator, ALLOC_NONE,
    NO_UPSTREAM, OVC_FREE, OWNER_NONE,
};
use dsn_core::fault::{is_connected_masked, EdgeMask};
use dsn_core::graph::Graph;
use dsn_core::{EdgeId, NodeId};
use dsn_telemetry::TraceEvent;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happens to an in-flight packet caught on a dying channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SalvagePolicy {
    /// Drop the whole packet everywhere (buffers, wire, allocations); the
    /// source host may re-send it under the [`RetryPolicy`].
    #[default]
    Drop,
    /// A packet that holds the dying channel but has not yet sent a single
    /// flit on it keeps its buffered flits and re-routes from where it
    /// sits; packets already mid-stream are dropped as under
    /// [`SalvagePolicy::Drop`].
    Salvage,
}

impl SalvagePolicy {
    /// Parse a CLI value (`drop` | `salvage`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "drop" => Some(SalvagePolicy::Drop),
            "salvage" => Some(SalvagePolicy::Salvage),
            _ => None,
        }
    }

    /// Stable display name (`drop` | `salvage`).
    pub fn name(&self) -> &'static str {
        match self {
            SalvagePolicy::Drop => "drop",
            SalvagePolicy::Salvage => "salvage",
        }
    }
}

/// Host-side reaction to a dropped packet: re-send after a timeout with
/// exponential backoff, up to a retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-sends per packet (0 = retries disabled).
    pub max_retries: u32,
    /// Cycles between a drop and the earliest re-send (clamped to >= 1).
    pub timeout_cycles: u64,
    /// Extra wait added per attempt: `backoff_cycles << attempt` (shift
    /// capped at 20).
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

impl RetryPolicy {
    /// No retries: dropped packets stay dropped.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            timeout_cycles: 0,
            backoff_cycles: 0,
        }
    }

    /// Retry up to `max_retries` times, waiting `timeout_cycles` plus
    /// `backoff_cycles << attempt` before each re-send.
    pub fn new(max_retries: u32, timeout_cycles: u64, backoff_cycles: u64) -> Self {
        RetryPolicy {
            max_retries,
            timeout_cycles,
            backoff_cycles,
        }
    }
}

/// One scripted fault action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The link itself fails (administratively down).
    LinkDown(EdgeId),
    /// The link is repaired (still dead while an endpoint switch is down).
    LinkUp(EdgeId),
    /// The switch fails: every incident link dies and every packet resident
    /// at the switch is dropped.
    SwitchDown(NodeId),
    /// The switch is repaired (admin-down incident links stay dead).
    SwitchUp(NodeId),
}

/// A [`FaultKind`] scheduled at a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the event takes effect (phase 0 of that cycle).
    pub cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A scripted fault schedule plus the policies governing its effects. Part
/// of [`crate::SimConfig`]; an empty plan (the default) makes the fault
/// machinery zero-cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The scheduled events; executed in `(cycle, list order)`.
    pub events: Vec<FaultEvent>,
    /// In-flight packet policy on channel death.
    pub salvage: SalvagePolicy,
    /// Host-side retry loop for dropped packets.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One link goes down at `cycle` and never recovers.
    pub fn single_link(edge: EdgeId, cycle: u64) -> Self {
        FaultPlan {
            events: vec![FaultEvent {
                cycle,
                kind: FaultKind::LinkDown(edge),
            }],
            ..FaultPlan::default()
        }
    }

    /// Several links go down at the same cycle (a correlated burst).
    pub fn burst(edges: &[EdgeId], cycle: u64) -> Self {
        FaultPlan {
            events: edges
                .iter()
                .map(|&e| FaultEvent {
                    cycle,
                    kind: FaultKind::LinkDown(e),
                })
                .collect(),
            ..FaultPlan::default()
        }
    }

    /// One link flaps: down at `first_down`, up `half_period` later, and so
    /// on for `flaps` down/up pairs.
    pub fn flap(edge: EdgeId, first_down: u64, half_period: u64, flaps: u32) -> Self {
        let mut events = Vec::with_capacity(2 * flaps as usize);
        for k in 0..flaps as u64 {
            events.push(FaultEvent {
                cycle: first_down + 2 * k * half_period,
                kind: FaultKind::LinkDown(edge),
            });
            events.push(FaultEvent {
                cycle: first_down + (2 * k + 1) * half_period,
                kind: FaultKind::LinkUp(edge),
            });
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// `count` seeded-random distinct links go down, one every `spacing`
    /// cycles starting at `first_cycle`. May disconnect the graph.
    pub fn random_links(
        g: &Graph,
        seed: u64,
        count: usize,
        first_cycle: u64,
        spacing: u64,
    ) -> Self {
        let mut state = seed;
        let mut dead = vec![false; g.edge_count()];
        let mut events = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while events.len() < count && attempts < 64 * count.max(1) && g.edge_count() > 0 {
            attempts += 1;
            let e = (splitmix64(&mut state) % g.edge_count() as u64) as usize;
            if dead[e] {
                continue;
            }
            dead[e] = true;
            events.push(FaultEvent {
                cycle: first_cycle + events.len() as u64 * spacing,
                kind: FaultKind::LinkDown(e),
            });
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// Like [`Self::random_links`] but every chosen link is rejected if
    /// cutting it (together with the earlier picks) would disconnect the
    /// survivor graph — the schedule is guaranteed connectivity-preserving.
    /// Fewer than `count` events result when the graph runs out of
    /// removable links.
    pub fn random_connected(
        g: &Graph,
        seed: u64,
        count: usize,
        first_cycle: u64,
        spacing: u64,
    ) -> Self {
        let mut state = seed;
        let mut mask = EdgeMask::fully_alive(g);
        let mut events = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while events.len() < count && attempts < 64 * count.max(1) && g.edge_count() > 0 {
            attempts += 1;
            let e = (splitmix64(&mut state) % g.edge_count() as u64) as usize;
            if !mask.edge_alive(e) {
                continue;
            }
            mask.set_edge_admin(g, e, false);
            if is_connected_masked(g, &mask) {
                events.push(FaultEvent {
                    cycle: first_cycle + events.len() as u64 * spacing,
                    kind: FaultKind::LinkDown(e),
                });
            } else {
                mask.set_edge_admin(g, e, true);
            }
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// Builder: set the salvage policy.
    pub fn with_salvage(mut self, salvage: SalvagePolicy) -> Self {
        self.salvage = salvage;
        self
    }

    /// Builder: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: append one more event.
    pub fn with_event(mut self, cycle: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { cycle, kind });
        self
    }

    /// Cycle of the earliest scheduled event (`None` for an empty plan).
    /// Packets created at or after this cycle feed the post-fault latency
    /// statistics.
    pub fn first_fault_cycle(&self) -> Option<u64> {
        self.events.iter().map(|e| e.cycle).min()
    }
}

/// SplitMix64: a tiny deterministic generator so seeded schedules need no
/// external RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One pending re-send, ordered for the retry min-heap:
/// `(due_cycle, fifo_seq, src_host, dest_host, attempt, tag)`. The
/// workload tag rides along so a retried flow/stage packet keeps its
/// identity (`(due, fifo_seq)` is unique, so the tag never decides order).
type RetryEntry = (u64, u64, u32, u32, u32, crate::engine::PacketTag);

/// A channel-death victim: `(uid, slab index, salvage position)` —
/// position is Some only for zero-sent owners (their seq-0 flit still
/// heads the buffer).
type Victim = (u32, u32, Option<(usize, usize)>);

/// Per-run fault state hanging off the simulator (`Simulator::fault`,
/// `None` when the plan is empty). Both engines drive it through
/// [`Simulator::process_faults`] with identical effects.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    /// Plan events sorted stably by cycle.
    events: Vec<FaultEvent>,
    /// Next unprocessed event.
    cursor: usize,
    /// Live view of the topology.
    pub(crate) mask: EdgeMask,
    salvage: SalvagePolicy,
    retry: RetryPolicy,
    /// Pending re-sends: min-heap on `(due_cycle, fifo_seq)` with payload
    /// `(src_host, dest_host, attempt)`.
    pub(crate) retries: BinaryHeap<Reverse<RetryEntry>>,
    retry_seq: u64,
    pub(crate) dropped_all: u64,
    pub(crate) dropped_measured: u64,
    pub(crate) salvaged: u64,
    pub(crate) retried: u64,
    pub(crate) abandoned: u64,
    // Reusable scratch for the drop/salvage paths below (an arena, so a
    // fault-churn steady state stops allocating once the buffers reach
    // their high-water marks). Each is `mem::take`n for the duration of
    // one helper call and returned cleared.
    /// Channel-death victim list ([`Simulator::kill_channel`]).
    victims: Vec<Victim>,
    /// Switch-death victim list ([`Simulator::purge_switch_residents`]).
    sw_victims: Vec<(u32, u32)>,
    /// Input units of a dead switch.
    units: Vec<usize>,
    /// Packets with flits on a dying wire.
    wire_pkts: Vec<u32>,
    /// `(channel, vc)` credits to refund for purged wire flits.
    wire_credits: Vec<(usize, u8)>,
}

impl FaultRuntime {
    pub(crate) fn new(g: &Graph, plan: &FaultPlan) -> Self {
        for ev in &plan.events {
            match ev.kind {
                FaultKind::LinkDown(e) | FaultKind::LinkUp(e) => {
                    assert!(e < g.edge_count(), "fault edge {e} out of range");
                }
                FaultKind::SwitchDown(v) | FaultKind::SwitchUp(v) => {
                    assert!(v < g.node_count(), "fault switch {v} out of range");
                }
            }
        }
        let mut events = plan.events.clone();
        events.sort_by_key(|e| e.cycle); // stable: same-cycle plan order kept
        FaultRuntime {
            events,
            cursor: 0,
            mask: EdgeMask::fully_alive(g),
            salvage: plan.salvage,
            retry: plan.retry,
            retries: BinaryHeap::new(),
            retry_seq: 0,
            dropped_all: 0,
            dropped_measured: 0,
            salvaged: 0,
            retried: 0,
            abandoned: 0,
            victims: Vec::new(),
            sw_victims: Vec::new(),
            units: Vec::new(),
            wire_pkts: Vec::new(),
            wire_credits: Vec::new(),
        }
    }

    /// Earliest pending re-send cycle (for the event engine's idle skip).
    pub(crate) fn next_retry_cycle(&self) -> Option<u64> {
        self.retries.peek().map(|&Reverse((t, ..))| t)
    }
}

// ---------------------------------------------------------------------
// Fault-side mutation helpers on the simulator. These are shared by both
// engines (called from `step_dense` and `event::step` at the same phase
// positions), which is what keeps RunStats bit-identical under faults.
// ---------------------------------------------------------------------

impl Simulator {
    /// Phase 0: apply every fault event due at or before `now`, then
    /// rebuild routing on the survivor graph once. The event engine may
    /// reach this late after an idle skip — catching up several events in
    /// one call is unobservable, because skips only happen on an empty
    /// network and the rebuilt routing depends only on the final mask.
    pub(crate) fn process_faults(&mut self, now: u64) {
        let due = match &self.fault {
            Some(f) => f.cursor < f.events.len() && f.events[f.cursor].cycle <= now,
            None => return,
        };
        if !due {
            return;
        }
        let g = self.graph.clone();
        loop {
            let ev = {
                let f = self.fault.as_mut().expect("fault runtime");
                if f.cursor >= f.events.len() || f.events[f.cursor].cycle > now {
                    break;
                }
                let ev = f.events[f.cursor];
                f.cursor += 1;
                ev
            };
            match ev.kind {
                FaultKind::LinkDown(e) => {
                    let died = self
                        .fault
                        .as_mut()
                        .expect("fault runtime")
                        .mask
                        .set_edge_admin(&g, e, false);
                    if died {
                        self.kill_edge(e, now);
                    }
                }
                FaultKind::LinkUp(e) => {
                    self.fault
                        .as_mut()
                        .expect("fault runtime")
                        .mask
                        .set_edge_admin(&g, e, true);
                }
                FaultKind::SwitchDown(v) => {
                    let dead = self
                        .fault
                        .as_mut()
                        .expect("fault runtime")
                        .mask
                        .set_node_up(&g, v, false);
                    for e in dead {
                        self.kill_edge(e, now);
                    }
                    self.purge_switch_residents(v, now);
                }
                FaultKind::SwitchUp(v) => {
                    self.fault
                        .as_mut()
                        .expect("fault runtime")
                        .mask
                        .set_node_up(&g, v, true);
                }
            }
        }
        self.rebuild_routing();
    }

    fn kill_edge(&mut self, e: EdgeId, now: u64) {
        self.kill_channel(2 * e, now);
        self.kill_channel(2 * e + 1, now);
    }

    /// A directed channel died: every packet holding one of its output VCs
    /// or with flits on its wire is a victim. Victims are handled in uid
    /// (creation) order so both engines see the same sequence.
    fn kill_channel(&mut self, ch: usize, now: u64) {
        let f = self.fault.as_mut().expect("fault runtime");
        let mut victims = std::mem::take(&mut f.victims);
        let mut wire_pkts = std::mem::take(&mut f.wire_pkts);
        let slot = self.ch_slot[ch] as usize;
        for w in 0..self.nvc {
            let owner = ovc_owner_of(self.ovc_state[slot * self.nvc + w]);
            if owner == OWNER_NONE {
                continue;
            }
            let (i, v) = owner_unpack(owner);
            let iv = i * self.nvc + v as usize;
            debug_assert_ne!(self.ivc[iv].alloc, ALLOC_NONE);
            let pkt = self.ivc[iv].alloc_pkt;
            let zero_sent = self
                .buf_front(iv)
                .is_some_and(|f| f.packet == pkt && f.seq == 0);
            victims.push((
                self.packets.get(pkt).uid,
                pkt,
                zero_sent.then_some((i, v as usize)),
            ));
        }
        self.wire_packets(ch, &mut wire_pkts);
        for &pkt in &wire_pkts {
            victims.push((self.packets.get(pkt).uid, pkt, None));
        }
        victims.sort_unstable_by_key(|&(uid, _, _)| uid);
        victims.dedup_by_key(|&mut (uid, _, _)| uid);
        let salvage = self.fault.as_ref().expect("fault runtime").salvage == SalvagePolicy::Salvage;
        for &(_, pkt, pos) in &victims {
            match pos {
                Some((i, v)) if salvage => self.salvage_packet(i, v, now),
                _ => self.fault_drop_packet(pkt, now),
            }
        }
        victims.clear();
        wire_pkts.clear();
        let f = self.fault.as_mut().expect("fault runtime");
        f.victims = victims;
        f.wire_pkts = wire_pkts;
    }

    /// Slab indices of packets with flits currently on channel `ch`,
    /// written into `out` (cleared first).
    fn wire_packets(&self, ch: usize, out: &mut Vec<u32>) {
        match &self.ev {
            Some(ev) => ev.wire_packets_on(ch, out),
            None => {
                out.clear();
                out.extend(self.links[ch].iter().map(|&(_, f, _)| f.packet));
            }
        }
    }

    /// A zero-sent victim keeps its flits and re-routes in place: release
    /// the dead allocation and re-arm the header so the (rebuilt) routing
    /// is consulted afresh on the survivor graph.
    fn salvage_packet(&mut self, i: usize, v: usize, now: u64) {
        let iv = i * self.nvc + v;
        let alloc = std::mem::replace(&mut self.ivc[iv].alloc, ALLOC_NONE);
        let Some(OutRef::Net { channel, vc }) = decode_alloc(alloc) else {
            panic!("salvage victim must hold a network allocation");
        };
        let slot = self.ch_slot[channel] as usize;
        let ov = slot * self.nvc + vc as usize;
        debug_assert_eq!(ovc_owner_of(self.ovc_state[ov]), owner_pack(i, v as u8));
        self.ovc_state[ov] |= OVC_FREE;
        self.chv[slot].owned &= !(1u64 << vc);
        self.chv[slot].ready &= !(1u64 << vc);
        self.arm_header(i, v, now);
        self.fault.as_mut().expect("fault runtime").salvaged += 1;
    }

    /// Drop one packet everywhere and account for it: counters, tracer,
    /// and the host retry schedule.
    fn fault_drop_packet(&mut self, pkt: u32, now: u64) {
        let (uid, src, dest, attempt, measured, tag) = {
            let p = self.packets.get(pkt);
            (p.uid, p.src_host, p.dest_host, p.attempt, p.measured, p.tag)
        };
        if let Some(tr) = &mut self.tracer {
            tr.record(now, uid, TraceEvent::Dropped);
        }
        self.telemetry.on_dropped(pkt, now);
        self.drop_packet_everywhere(pkt, now);
        let f = self.fault.as_mut().expect("fault runtime");
        f.dropped_all += 1;
        if measured {
            f.dropped_measured += 1;
        }
        if attempt < f.retry.max_retries {
            let backoff = f
                .retry
                .backoff_cycles
                .saturating_mul(1u64 << attempt.min(20));
            let due = now + f.retry.timeout_cycles.max(1) + backoff;
            f.retries
                .push(Reverse((due, f.retry_seq, src, dest, attempt + 1, tag)));
            f.retry_seq += 1;
        } else {
            f.abandoned += 1;
        }
    }

    /// The head packet of `(i, v)` has no usable route on the survivor
    /// graph: drop it (phase-4 outcome [`crate::engine::AllocOutcome::Unroutable`]).
    pub(crate) fn unroutable_drop(&mut self, i: usize, v: usize, now: u64) {
        let pkt = self
            .buf_front(i * self.nvc + v)
            .expect("unroutable head")
            .packet;
        self.fault_drop_packet(pkt, now);
    }

    /// Erase a packet from the whole network: purge its flits from every
    /// input-VC buffer and every wire, release its allocations, hand every
    /// purged flit's credit straight back upstream (keeping credit
    /// conservation exact at all times), re-arm any revealed next head, and
    /// retire the slab slot.
    pub(crate) fn drop_packet_everywhere(&mut self, pkt: u32, now: u64) {
        for i in 0..self.n_inputs {
            for v in 0..self.vc_count(i) {
                let iv = i * self.nvc + v;
                let had_alloc = self.ivc[iv].alloc != ALLOC_NONE && self.ivc[iv].alloc_pkt == pkt;
                let front_was = self.buf_front(iv).is_some_and(|f| f.packet == pkt);
                if !had_alloc && !front_was && !self.buf_contains_packet(iv, pkt) {
                    continue;
                }
                let removed = self.buf_retain_not_packet(iv, pkt);
                let cleared_alloc = if had_alloc {
                    decode_alloc(std::mem::replace(&mut self.ivc[iv].alloc, ALLOC_NONE))
                } else {
                    None
                };
                let reveal = had_alloc || front_was;
                if reveal {
                    self.ivc[iv].ready = u64::MAX;
                }
                self.buffered_flits -= removed as u64;
                if let Some(OutRef::Net { channel, vc }) = cleared_alloc {
                    let slot = self.ch_slot[channel] as usize;
                    let ov = slot * self.nvc + vc as usize;
                    debug_assert_eq!(ovc_owner_of(self.ovc_state[ov]), owner_pack(i, v as u8));
                    self.ovc_state[ov] |= OVC_FREE;
                    self.chv[slot].owned &= !(1u64 << vc);
                    self.chv[slot].ready &= !(1u64 << vc);
                }
                let up = self.input_upstream[i];
                if up != NO_UPSTREAM {
                    for _ in 0..removed {
                        self.apply_credit(up as usize, v as u8);
                    }
                }
                if reveal {
                    if let Some(head) = self.buf_front(iv) {
                        debug_assert_eq!(head.seq, 0, "packets stream whole, in order");
                        self.arm_header(i, v, now);
                    }
                }
            }
        }
        let mut wire =
            std::mem::take(&mut self.fault.as_mut().expect("fault runtime").wire_credits);
        match &mut self.ev {
            Some(ev) => ev.purge_link_flits(pkt, &mut wire),
            None => {
                wire.clear();
                for ch in 0..self.links.len() {
                    let mut any = false;
                    for &(_, f, vc) in &self.links[ch] {
                        if f.packet == pkt {
                            wire.push((ch, vc));
                            any = true;
                        }
                    }
                    if any {
                        self.links[ch].retain(|&(_, f, _)| f.packet != pkt);
                    }
                }
            }
        }
        for &(ch, vc) in &wire {
            self.apply_credit(ch, vc);
        }
        wire.clear();
        self.fault.as_mut().expect("fault runtime").wire_credits = wire;
        self.packets.retire(pkt);
    }

    /// A switch died: drop every packet resident at it — buffered in its
    /// network or injection inputs, or holding an ejection grant. (Packets
    /// streaming over its links were already killed via the incident
    /// edges.)
    fn purge_switch_residents(&mut self, sw: NodeId, now: u64) {
        let rt = self.fault.as_mut().expect("fault runtime");
        let mut units = std::mem::take(&mut rt.units);
        let mut victims = std::mem::take(&mut rt.sw_victims);
        units.clear();
        victims.clear();
        units.extend(
            self.graph
                .neighbors(sw)
                .map(|(u, e)| self.graph.channel_id(e, u)),
        );
        for h in 0..self.cfg.hosts_per_switch {
            units.push(self.injection_input(sw * self.cfg.hosts_per_switch + h));
        }
        for &i in &units {
            for v in 0..self.vc_count(i) {
                let iv = i * self.nvc + v;
                if self.ivc[iv].alloc != ALLOC_NONE {
                    let pkt = self.ivc[iv].alloc_pkt;
                    victims.push((self.packets.get(pkt).uid, pkt));
                }
                self.buf_for_each(iv, |f| {
                    victims.push((self.packets.get(f.packet).uid, f.packet));
                });
            }
        }
        victims.sort_unstable_by_key(|&(uid, _)| uid);
        victims.dedup_by_key(|&mut (uid, _)| uid);
        for &(_, pkt) in &victims {
            self.fault_drop_packet(pkt, now);
        }
        units.clear();
        victims.clear();
        let rt = self.fault.as_mut().expect("fault runtime");
        rt.units = units;
        rt.sw_victims = victims;
    }

    /// Phase 3 (after the batch, before regular host injections): re-send
    /// every dropped packet whose retry timer expired, in `(due, fifo)`
    /// order — identical on both engines.
    pub(crate) fn inject_retries(&mut self, now: u64) {
        loop {
            let (src, dest, attempt, tag) = {
                let Some(f) = self.fault.as_mut() else { return };
                match f.retries.peek() {
                    Some(&Reverse((due, _, src, dest, attempt, tag))) if due <= now => {
                        f.retries.pop();
                        f.retried += 1;
                        (src as usize, dest as usize, attempt, tag)
                    }
                    _ => return,
                }
            };
            self.enqueue_packet_tagged(now, src, dest, attempt, tag);
        }
    }

    /// Swap in routing rebuilt for the survivor graph and reset per-packet
    /// routing state of every live packet (slab order — identical between
    /// engines).
    fn rebuild_routing(&mut self) {
        let mask = self.fault.as_ref().expect("fault runtime").mask.clone();
        let rebuilt = match &self.routing_cache {
            Some(cache) => cache.rebuild(&self.graph, &self.routing, &mask),
            None => self.routing.rebuild(&self.graph, &mask),
        };
        let rebuilt = rebuilt.unwrap_or_else(|| {
            panic!(
                "routing scheme '{}' does not support online reroute under faults",
                self.routing.name()
            )
        });
        self.routing = rebuilt;
        self.refresh_flat();
        let routing = self.routing.clone();
        self.packets
            .for_each_live_mut(|p| routing.reset_state(&mut p.route));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::dsn::Dsn;

    #[test]
    fn flap_alternates_down_up() {
        let p = FaultPlan::flap(3, 100, 50, 2);
        let got: Vec<_> = p.events.iter().map(|e| (e.cycle, e.kind)).collect();
        assert_eq!(
            got,
            vec![
                (100, FaultKind::LinkDown(3)),
                (150, FaultKind::LinkUp(3)),
                (200, FaultKind::LinkDown(3)),
                (250, FaultKind::LinkUp(3)),
            ]
        );
    }

    #[test]
    fn burst_hits_every_edge_at_one_cycle() {
        let p = FaultPlan::burst(&[1, 4, 9], 77);
        assert_eq!(p.events.len(), 3);
        assert!(p.events.iter().all(|e| e.cycle == 77));
        assert_eq!(p.first_fault_cycle(), Some(77));
        assert!(FaultPlan::none().first_fault_cycle().is_none());
    }

    #[test]
    fn random_links_is_deterministic_and_distinct() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let a = FaultPlan::random_links(&g, 9, 6, 100, 10);
        let b = FaultPlan::random_links(&g, 9, 6, 100, 10);
        assert_eq!(a, b, "seeded schedule must be reproducible");
        let mut edges: Vec<_> = a
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::LinkDown(id) => id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(a.events.len(), 6);
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(edges.len(), 6, "edges must be distinct");
    }

    #[test]
    fn random_connected_preserves_connectivity() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let p = FaultPlan::random_connected(&g, 42, 8, 100, 10);
        assert_eq!(p.events.len(), 8);
        let mut mask = EdgeMask::fully_alive(&g);
        for ev in &p.events {
            let FaultKind::LinkDown(e) = ev.kind else {
                panic!("unexpected {:?}", ev.kind)
            };
            mask.set_edge_admin(&g, e, false);
            assert!(
                is_connected_masked(&g, &mask),
                "survivor disconnected after killing edge {e}"
            );
        }
    }

    #[test]
    fn retry_policy_disabled_by_default() {
        assert_eq!(FaultPlan::none().retry, RetryPolicy::disabled());
        assert_eq!(FaultPlan::none().salvage, SalvagePolicy::Drop);
        assert_eq!(
            SalvagePolicy::parse("salvage"),
            Some(SalvagePolicy::Salvage)
        );
        assert_eq!(SalvagePolicy::parse("bogus"), None);
    }
}
