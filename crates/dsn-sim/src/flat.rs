//! Flattened routing tables: each [`SimRouting`](crate::routing::SimRouting)
//! scheme that is a pure function of `(cur, dest, ud_phase)` is lowered
//! once into dense per-`(context, switch, dest)` candidate rows stored in a
//! single CSR-style `u32` arena, so the per-allocation-attempt
//! `candidates(...)` call and the per-hop `on_hop` become array lookups
//! instead of `Arc<dyn>` virtual calls with per-call `Vec` allocation.
//!
//! Rows are built by calling the scheme's **own** `candidates()` with a
//! synthetic [`RouteState`] per context, so candidate content and order are
//! identical to the dynamic path by construction; `tests/flat_equivalence.rs`
//! pins `RunStats` byte-equality on top.
//!
//! Schemes with path-state-dependent escape hops (the DSN-V sojourn cache
//! of [`MinimalAdaptiveDsn`](crate::routing::MinimalAdaptiveDsn)) tabulate
//! only their adaptive candidates and keep a small dynamic residue: the
//! engine consults `escape_candidates` only after every tabulated candidate
//! was blocked, which scans the same concatenated preference list the
//! dynamic path would.

use crate::routing::{Candidate, RouteState};
use dsn_route::updown::UdPhase;
use rayon::prelude::*;
use std::sync::Arc;

/// How the engine commits a hop granted from the flat table.
#[derive(Debug, Clone)]
pub(crate) enum HopRule {
    /// Up*/down* phase rule: VCs below `escape_vcs` follow the precomputed
    /// per-channel up/down direction; higher VCs reset the phase to `Up`.
    /// Covers `AdaptiveEscape` (`escape_vcs = 1`) and `UpDownRouting`
    /// (`escape_vcs = vcs`). Neither touches `path`/`idx`, so the phase is
    /// the whole hop effect.
    Phase {
        /// VCs `0..escape_vcs` are escape lanes subject to the phase rule.
        escape_vcs: u8,
        /// `up_move[ch]`: taking directed channel `ch` is an up move.
        up_move: Vec<bool>,
    },
    /// The hop effect depends on per-packet path state — always call the
    /// scheme's dynamic `on_hop`.
    Dyn,
}

/// A compiled candidate table. See the module docs.
pub struct FlatRouting {
    /// Switch count.
    n: usize,
    /// Row contexts: 1 (state-independent), 2 (up*/down* phase), or 4
    /// (DSN-V algorithmic phase: PRE-WORK / MAIN / FINISH± dateline).
    ctxs: usize,
    /// CSR row offsets, length `ctxs * n * n + 1`.
    offsets: Vec<u32>,
    /// Packed candidates: `(channel << 8) | vc`.
    arena: Vec<u32>,
    /// Hop-commit rule.
    hop: HopRule,
    /// The table covers only part of the preference list; the engine must
    /// fall back to `escape_candidates` when every tabulated candidate is
    /// blocked.
    dyn_escape: bool,
}

#[inline]
pub(crate) fn pack(ch: usize, vc: u8) -> u32 {
    debug_assert!(ch < (1 << 24), "channel id overflows packed candidate");
    ((ch as u32) << 8) | vc as u32
}

#[inline]
pub(crate) fn unpack(p: u32) -> Candidate {
    ((p >> 8) as usize, (p & 0xFF) as u8)
}

fn phase_of_ctx(ctx: usize) -> UdPhase {
    if ctx == 0 {
        UdPhase::Up
    } else {
        UdPhase::Down
    }
}

/// Packed [`dsn_route::deadlock::DsnvState`] bits for a 4-context row:
/// contexts 0/1/2 are the PRE-WORK/MAIN/FINISH phases, context 3 is
/// FINISH after the dateline (phase bits 2, crossed bit set).
fn alg_of_ctx(ctx: usize) -> u8 {
    if ctx == 3 {
        2 | 4
    } else {
        ctx as u8
    }
}

/// Inverse of [`alg_of_ctx`] over the states the DSN-V automaton can
/// actually reach (`crossed` implies FINISH).
#[inline]
fn ctx_of_alg(alg: u8) -> usize {
    if alg & 4 != 0 {
        3
    } else {
        (alg & 3) as usize
    }
}

impl FlatRouting {
    /// Compile a table by evaluating `row_fn(ctx, cur, dest, out)` for every
    /// `(context, cur, dest)` with `cur != dest`. Row construction fans out
    /// over `(ctx, cur)` blocks; assembly is deterministic regardless of
    /// worker count.
    pub(crate) fn compile(
        n: usize,
        ctxs: usize,
        hop: HopRule,
        dyn_escape: bool,
        row_fn: impl Fn(usize, usize, usize, &mut Vec<Candidate>) + Sync,
    ) -> Self {
        debug_assert!(ctxs == 1 || ctxs == 2 || ctxs == 4);
        // Per-(ctx, cur) blocks; rayon's collect preserves index order, so
        // the assembled table is identical for any worker count.
        let blocks: Vec<(Vec<u32>, Vec<u32>)> = (0..ctxs * n)
            .into_par_iter()
            .map(|b| {
                let (ctx, cur) = (b / n, b % n);
                let mut lens = Vec::with_capacity(n);
                let mut packed = Vec::new();
                let mut scratch = Vec::new();
                for dest in 0..n {
                    if dest == cur {
                        lens.push(0);
                        continue;
                    }
                    scratch.clear();
                    row_fn(ctx, cur, dest, &mut scratch);
                    lens.push(scratch.len() as u32);
                    packed.extend(scratch.iter().map(|&(ch, vc)| pack(ch, vc)));
                }
                (lens, packed)
            })
            .collect();
        let rows = ctxs * n * n;
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0u32);
        let mut arena = Vec::new();
        for (lens, packed) in blocks {
            for len in lens {
                let last = *offsets.last().unwrap();
                offsets.push(last + len);
            }
            arena.extend_from_slice(&packed);
        }
        debug_assert_eq!(offsets.len(), rows + 1);
        debug_assert_eq!(*offsets.last().unwrap() as usize, arena.len());
        FlatRouting {
            n,
            ctxs,
            offsets,
            arena,
            hop,
            dyn_escape,
        }
    }

    /// The synthetic per-context [`RouteState`] rows are built with. The
    /// same state serves both context families: phase schemes read only
    /// `ud_phase` (contexts 0/1), the DSN-V algorithmic scheme reads only
    /// `alg` (contexts 0–3 map to PRE-WORK / MAIN / FINISH /
    /// FINISH-crossed).
    pub(crate) fn synthetic_state(ctx: usize) -> RouteState {
        RouteState {
            ud_phase: phase_of_ctx(ctx.min(1)),
            path: None,
            idx: 0,
            alg: alg_of_ctx(ctx),
        }
    }

    /// Row context for a packet's current state.
    #[inline]
    pub(crate) fn ctx(&self, state: &RouteState) -> usize {
        match self.ctxs {
            2 => match state.ud_phase {
                UdPhase::Up => 0,
                UdPhase::Down => 1,
            },
            4 => ctx_of_alg(state.alg),
            _ => 0,
        }
    }

    /// Packed candidate row for `(ctx, cur, dest)`.
    #[inline]
    pub(crate) fn row(&self, ctx: usize, cur: usize, dest: usize) -> &[u32] {
        let r = (ctx * self.n + cur) * self.n + dest;
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        &self.arena[lo..hi]
    }

    /// Whether the engine must consult `escape_candidates` after the table.
    #[inline]
    pub(crate) fn needs_dyn_escape(&self) -> bool {
        self.dyn_escape
    }

    /// Hop commit from the table: `Some(phase)` when the packet's new
    /// up*/down* phase is determined by the rule (the only state the scheme
    /// would touch), `None` when the dynamic `on_hop` must run.
    #[inline]
    pub(crate) fn hop_phase(&self, channel: usize, vc: u8) -> Option<UdPhase> {
        match &self.hop {
            HopRule::Phase {
                escape_vcs,
                up_move,
            } => Some(if vc < *escape_vcs {
                if up_move[channel] {
                    UdPhase::Up
                } else {
                    UdPhase::Down
                }
            } else {
                UdPhase::Up
            }),
            HopRule::Dyn => None,
        }
    }

    /// Total candidates stored (diagnostics).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Resident bytes of the compiled table: the CSR offsets + packed
    /// candidate arena, plus the per-channel up-move bitmap when the hop
    /// rule carries one. This is the number the benchmarks compare against
    /// algorithmic (table-free) routing.
    pub fn table_bytes(&self) -> usize {
        let hop = match &self.hop {
            HopRule::Phase { up_move, .. } => up_move.len(),
            HopRule::Dyn => 0,
        };
        (self.offsets.len() + self.arena.len()) * std::mem::size_of::<u32>() + hop
    }
}

/// Compile helper shared by the phase-context schemes: two contexts
/// (Up / Down) rows, built from the scheme's own `candidates`.
pub(crate) fn compile_phase_table(
    n: usize,
    escape_vcs: u8,
    up_move: Vec<bool>,
    row_fn: impl Fn(usize, usize, usize, &mut Vec<Candidate>) + Sync,
) -> Arc<FlatRouting> {
    Arc::new(FlatRouting::compile(
        n,
        2,
        HopRule::Phase {
            escape_vcs,
            up_move,
        },
        false,
        row_fn,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for (ch, vc) in [(0usize, 0u8), (1, 3), (511, 7), (16_000_000, 255)] {
            assert_eq!(unpack(pack(ch, vc)), (ch, vc));
        }
    }

    #[test]
    fn compile_layout_matches_rows() {
        // 3 switches, 1 ctx, row (cur,dest) = [(cur*10+dest, 1)] for dest>cur
        // else empty — checks CSR indexing incl. the empty diagonal.
        let t = FlatRouting::compile(3, 1, HopRule::Dyn, true, |_, cur, dest, out| {
            if dest > cur {
                out.push((cur * 10 + dest, 1));
            }
        });
        for cur in 0..3 {
            for dest in 0..3 {
                let row = t.row(0, cur, dest);
                if dest > cur {
                    assert_eq!(row, &[pack(cur * 10 + dest, 1)], "{cur}->{dest}");
                } else {
                    assert!(row.is_empty(), "{cur}->{dest}");
                }
            }
        }
        assert!(t.needs_dyn_escape());
        assert_eq!(t.arena_len(), 3);
    }

    #[test]
    fn phase_rule_hop() {
        let t = FlatRouting::compile(
            2,
            2,
            HopRule::Phase {
                escape_vcs: 1,
                up_move: vec![true, false],
            },
            false,
            |_, _, _, _| {},
        );
        assert_eq!(t.hop_phase(0, 0), Some(UdPhase::Up));
        assert_eq!(t.hop_phase(1, 0), Some(UdPhase::Down));
        // Non-escape VC resets to Up regardless of channel direction.
        assert_eq!(t.hop_phase(1, 3), Some(UdPhase::Up));
        assert_eq!(
            t.ctx(&FlatRouting::synthetic_state(0)),
            0,
            "Up phase maps to ctx 0"
        );
        assert_eq!(t.ctx(&FlatRouting::synthetic_state(1)), 1);
    }
}
