//! Routing adapters that plug the `dsn-route` algorithms into the
//! simulator's switch pipeline.
//!
//! The paper's evaluation uses the topology-agnostic *adaptive* scheme of
//! Silla & Duato: fully adaptive minimal hops on the high VCs with
//! up*/down* *escape paths* on VC 0 (Duato's methodology). We also provide
//! pure up*/down* and deterministic source-routed adapters (DSN custom
//! routing with the DSN-V virtual-channel discipline, and dimension-order
//! routing for tori), so the simulator can compare custom vs agnostic
//! routing the way Section VII.B discusses.

use crate::flat::{compile_phase_table, HopRule};
use dsn_core::fault::EdgeMask;
use dsn_core::graph::{Graph, LinkKind};
use dsn_core::NodeId;
use dsn_route::updown::{UdPhase, UpDown};
use std::sync::{Arc, OnceLock};

pub use crate::flat::FlatRouting;

/// Per-packet routing state carried between hops.
#[derive(Debug, Clone)]
pub struct RouteState {
    /// Up*/down* phase while the packet travels on escape channels.
    pub ud_phase: UdPhase,
    /// Precomputed path for source-routed adapters: `(channel, vc)` hops.
    pub path: Option<Arc<[(usize, u8)]>>,
    /// Next hop index into `path`.
    pub idx: usize,
    /// Packed algorithmic-router state
    /// ([`dsn_route::deadlock::DsnvState::to_bits`]): the
    /// DSN-V phase (bits 0–1) plus the FINISH dateline flag (bit 2).
    /// Only [`DsnAlgorithmic`] reads/writes it; 0 elsewhere.
    pub alg: u8,
}

impl RouteState {
    fn fresh() -> Self {
        RouteState {
            ud_phase: UdPhase::Up,
            path: None,
            idx: 0,
            alg: 0,
        }
    }
}

/// A candidate output for the current hop: directed channel plus VC.
pub type Candidate = (usize, u8);

/// Routing logic used by the simulator. Implementations must be pure
/// given `(cur, dest, state)` so the engine can retry candidates across
/// cycles.
pub trait SimRouting: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Initial per-packet state.
    fn init(&self, src: NodeId, dest: NodeId) -> RouteState;

    /// Produce candidates in preference order for a packet at switch
    /// `cur` heading to switch `dest`. Never called with `cur == dest`
    /// (the engine ejects instead).
    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>);

    /// Commit a hop: update the packet state after the engine granted
    /// `(channel, vc)`.
    fn on_hop(&self, cur: NodeId, dest: NodeId, state: &mut RouteState, channel: usize, vc: u8);

    /// Rebuild this routing for the survivor graph described by `mask`
    /// (online reroute after a fault). Returns `None` when the scheme does
    /// not support reroute — the simulator panics on a fault then.
    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        let _ = (graph, mask);
        None
    }

    /// Reset one packet's in-flight state after a reroute, so stale
    /// assumptions (escape phase, cached paths into the old topology) do
    /// not leak into the new epoch. The default restarts the up*/down*
    /// phase; cached source routes are translated by the scheme itself.
    fn reset_state(&self, state: &mut RouteState) {
        state.ud_phase = UdPhase::Up;
    }

    /// Stable identity of this scheme *configuration* (name + parameters
    /// that change candidate tables), used as the
    /// [`RoutingCache`](crate::cache::RoutingCache) key component. Two
    /// instances with the same key on the same graph must produce identical
    /// candidates. Defaults to [`Self::name`].
    fn scheme_key(&self) -> String {
        self.name()
    }

    /// The flattened candidate table for this scheme, compiled lazily on
    /// first call and memoized per instance. `None` (the default) means the
    /// scheme cannot be tabulated per `(switch, dest, phase)` — the engine
    /// stays on the dynamic `candidates` path.
    fn compiled_flat(&self) -> Option<Arc<FlatRouting>> {
        None
    }

    /// Whether this scheme computes its next hop *algorithmically* in
    /// O(levels) time and O(n) memory — i.e. the dynamic path needs no
    /// per-(switch, dest) table at all. Under
    /// [`RoutingTables::Algorithmic`](crate::config::RoutingTables) (or
    /// `Flat` above the auto threshold) the engine skips flat compilation
    /// for such schemes.
    fn algorithmic(&self) -> bool {
        false
    }

    /// Resident bytes of auxiliary routing structures the *dynamic* path
    /// keeps per scheme instance (distance tables, per-node LUTs, …),
    /// excluding any compiled flat table. Benchmark accounting only.
    fn table_bytes(&self) -> usize {
        0
    }

    /// Dynamic escape residue for schemes whose flat table covers only the
    /// adaptive candidates (`FlatRouting::needs_dyn_escape`). Called by
    /// the engine only after every tabulated candidate was blocked; must
    /// emit exactly the candidates `candidates` would have appended after
    /// the adaptive ones.
    fn escape_candidates(
        &self,
        cur: NodeId,
        dest: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let _ = (cur, dest, state, out);
    }
}

/// Precomputed all-pairs hop distances (BFS), used for minimal-adaptive
/// candidate selection.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    n: usize,
    dist: Vec<u16>,
}

impl DistanceTable {
    /// Build by one BFS per source.
    pub fn new(g: &Graph) -> Self {
        Self::build(g, None)
    }

    /// Build over the survivor graph only (dead edges skipped); pairs
    /// disconnected by the faults keep distance `u16::MAX`.
    pub fn new_masked(g: &Graph, mask: &EdgeMask) -> Self {
        Self::build(g, Some(mask))
    }

    fn build(g: &Graph, mask: Option<&EdgeMask>) -> Self {
        let n = g.node_count();
        let mut dist = vec![u16::MAX; n * n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            let row = &mut dist[s * n..(s + 1) * n];
            row[s] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                let dv = row[v];
                for (u, e) in g.neighbors(v) {
                    if mask.is_some_and(|m| !m.edge_alive(e)) {
                        continue;
                    }
                    if row[u] == u16::MAX {
                        row[u] = dv + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        DistanceTable { n, dist }
    }

    /// Hop distance between two switches.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> u16 {
        self.dist[a * self.n + b]
    }
}

/// The paper's simulator routing: fully adaptive minimal on VCs `1..V`,
/// up*/down* escape on VC 0.
pub struct AdaptiveEscape {
    graph: Arc<Graph>,
    dist: DistanceTable,
    updown: UpDown,
    vcs: u8,
    /// Survivor mask when this instance is a post-fault rebuild.
    mask: Option<EdgeMask>,
    flat: OnceLock<Arc<FlatRouting>>,
}

impl AdaptiveEscape {
    /// Build for the given graph with `vcs >= 2` virtual channels
    /// (VC 0 is the escape layer).
    ///
    /// # Panics
    /// Panics if `vcs < 2`.
    pub fn new(graph: Arc<Graph>, vcs: u8) -> Self {
        assert!(vcs >= 2, "adaptive + escape needs at least 2 VCs");
        let dist = DistanceTable::new(&graph);
        let updown = UpDown::new(&graph, 0);
        AdaptiveEscape {
            graph,
            dist,
            updown,
            vcs,
            mask: None,
            flat: OnceLock::new(),
        }
    }

    /// Per-channel "taking this directed channel is an up move" table for
    /// the flat hop rule.
    fn up_move_table(&self) -> Vec<bool> {
        up_move_table(&self.graph, &self.updown)
    }

    /// The [`SimRouting::scheme_key`] an instance built with `vcs` virtual
    /// channels will report, computable without building the scheme. Lets
    /// benchmark drivers address a [`crate::RoutingCache`] entry up front.
    pub fn key_for(vcs: u8) -> String {
        format!("adaptive+ud-escape({vcs}vc)")
    }
}

/// Shared helper: `up_move[ch]` for every directed channel of `g` under
/// the given up*/down* forest (dead channels get a value too — harmless,
/// they never appear in a compiled row).
fn up_move_table(g: &Graph, updown: &UpDown) -> Vec<bool> {
    (0..2 * g.edge_count())
        .map(|ch| {
            let (from, _) = g.channel_endpoints(ch);
            updown.is_up_move(g, ch / 2, from)
        })
        .collect()
}

impl SimRouting for AdaptiveEscape {
    fn name(&self) -> String {
        AdaptiveEscape::key_for(self.vcs)
    }

    fn init(&self, _src: NodeId, _dest: NodeId) -> RouteState {
        RouteState::fresh()
    }

    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        // Adaptive minimal candidates on VCs 1..V, closest-first.
        let dcur = self.dist.get(cur, dest);
        for (u, e) in self.graph.neighbors(cur) {
            if self.mask.as_ref().is_some_and(|m| !m.edge_alive(e)) {
                continue;
            }
            if self.dist.get(u, dest) < dcur {
                let ch = self.graph.channel_id(e, cur);
                for vc in 1..self.vcs {
                    out.push((ch, vc));
                }
            }
        }
        // Escape on VC 0, honoring the packet's current up*/down* phase.
        for (e, _next_phase) in self
            .updown
            .next_hops(&self.graph, cur, state.ud_phase, dest)
        {
            out.push((self.graph.channel_id(e, cur), 0));
        }
    }

    fn on_hop(&self, cur: NodeId, _dest: NodeId, state: &mut RouteState, channel: usize, vc: u8) {
        if vc == 0 {
            // Stayed on (or entered) the escape layer: advance the phase.
            let edge = channel / 2;
            let up = self.updown.is_up_move(&self.graph, edge, cur);
            state.ud_phase = if up { UdPhase::Up } else { UdPhase::Down };
        } else {
            // Adaptive hop: next escape entry starts a fresh up*/down* walk.
            state.ud_phase = UdPhase::Up;
        }
    }

    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        Some(Arc::new(AdaptiveEscape {
            graph: graph.clone(),
            dist: DistanceTable::new_masked(graph, mask),
            updown: UpDown::new_masked(graph, self.updown.root(), mask),
            vcs: self.vcs,
            mask: Some(mask.clone()),
            flat: OnceLock::new(),
        }))
    }

    fn compiled_flat(&self) -> Option<Arc<FlatRouting>> {
        Some(
            self.flat
                .get_or_init(|| {
                    compile_phase_table(
                        self.graph.node_count(),
                        1,
                        self.up_move_table(),
                        |ctx, cur, dest, out| {
                            let state = FlatRouting::synthetic_state(ctx);
                            // A Down state that cannot reach `dest` never
                            // occurs in legal traffic; its row is never
                            // queried, so leave it empty instead of asking
                            // the strict-mode escape for hops it lacks.
                            if !self.updown.reachable_phased(cur, state.ud_phase, dest) {
                                return;
                            }
                            self.candidates(cur, dest, &state, out)
                        },
                    )
                })
                .clone(),
        )
    }
}

/// Pure up*/down* routing on every VC (the paper's non-adaptive
/// topology-agnostic baseline).
pub struct UpDownRouting {
    graph: Arc<Graph>,
    updown: UpDown,
    vcs: u8,
    flat: OnceLock<Arc<FlatRouting>>,
}

impl UpDownRouting {
    /// Build for the given graph.
    pub fn new(graph: Arc<Graph>, vcs: u8) -> Self {
        assert!(vcs >= 1);
        let updown = UpDown::new(&graph, 0);
        UpDownRouting {
            graph,
            updown,
            vcs,
            flat: OnceLock::new(),
        }
    }
}

impl SimRouting for UpDownRouting {
    fn name(&self) -> String {
        format!("up*/down*({}vc)", self.vcs)
    }

    fn init(&self, _src: NodeId, _dest: NodeId) -> RouteState {
        RouteState::fresh()
    }

    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        for (e, _next) in self
            .updown
            .next_hops(&self.graph, cur, state.ud_phase, dest)
        {
            let ch = self.graph.channel_id(e, cur);
            for vc in 0..self.vcs {
                out.push((ch, vc));
            }
        }
    }

    fn on_hop(&self, cur: NodeId, _dest: NodeId, state: &mut RouteState, channel: usize, _vc: u8) {
        let edge = channel / 2;
        let up = self.updown.is_up_move(&self.graph, edge, cur);
        state.ud_phase = if up { UdPhase::Up } else { UdPhase::Down };
    }

    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        Some(Arc::new(UpDownRouting {
            graph: graph.clone(),
            updown: UpDown::new_masked(graph, self.updown.root(), mask),
            vcs: self.vcs,
            flat: OnceLock::new(),
        }))
    }

    fn compiled_flat(&self) -> Option<Arc<FlatRouting>> {
        Some(
            self.flat
                .get_or_init(|| {
                    // Every VC is an escape lane: the phase rule applies to
                    // all hops, exactly like the dynamic `on_hop`.
                    compile_phase_table(
                        self.graph.node_count(),
                        self.vcs,
                        up_move_table(&self.graph, &self.updown),
                        |ctx, cur, dest, out| {
                            let state = FlatRouting::synthetic_state(ctx);
                            // Unreachable Down states never occur in legal
                            // traffic; leave their rows empty.
                            if !self.updown.reachable_phased(cur, state.ud_phase, dest) {
                                return;
                            }
                            self.candidates(cur, dest, &state, out)
                        },
                    )
                })
                .clone(),
        )
    }
}

/// The paper's *future work*, realized: deadlock-free **minimal-adaptive
/// custom routing** on DSN. Minimal hops (any neighbor closer to the
/// destination) ride VCs `4..8`; the escape layer is the DSN-V discipline
/// on VCs `0..4` — the packet can always fall back to the three-phase
/// custom route *from its current node* (Duato's methodology, with the
/// escape network's all-pairs CDG machine-checked acyclic by
/// `dsn_route::deadlock::dsnv_cdg`). Unlike the up*/down* escape this one
/// has no root hotspot, pairing adaptivity with DSN's balanced structure.
///
/// Needs 8 VCs (4 escape classes + 4 adaptive).
pub struct MinimalAdaptiveDsn {
    dsn: Arc<dsn_core::dsn::Dsn>,
    graph: Arc<Graph>,
    dist: DistanceTable,
    vcs: u8,
    flat: OnceLock<Arc<FlatRouting>>,
}

impl MinimalAdaptiveDsn {
    /// Build for a DSN instance; `vcs` must be at least 5 (4 escape classes
    /// plus at least one adaptive VC).
    ///
    /// # Panics
    /// Panics if `vcs < 5`.
    pub fn new(dsn: Arc<dsn_core::dsn::Dsn>, vcs: u8) -> Self {
        assert!(vcs >= 5, "minimal-adaptive DSN needs >= 5 VCs");
        let graph = Arc::new(dsn.graph().clone());
        let dist = DistanceTable::new(&graph);
        MinimalAdaptiveDsn {
            dsn,
            graph,
            dist,
            vcs,
            flat: OnceLock::new(),
        }
    }

    /// Adaptive minimal candidates on VCs `4..vcs` — the tabulable part of
    /// the preference list.
    fn adaptive_candidates(&self, cur: NodeId, dest: NodeId, out: &mut Vec<Candidate>) {
        let dcur = self.dist.get(cur, dest);
        for (u, e) in self.graph.neighbors(cur) {
            if self.dist.get(u, dest) < dcur {
                let ch = self.graph.channel_id(e, cur);
                for vc in 4..self.vcs {
                    out.push((ch, vc));
                }
            }
        }
    }
}

impl SimRouting for MinimalAdaptiveDsn {
    fn name(&self) -> String {
        format!("minimal-adaptive+dsnv-escape({}vc)", self.vcs)
    }

    fn init(&self, _src: NodeId, _dest: NodeId) -> RouteState {
        RouteState {
            ud_phase: dsn_route::updown::UdPhase::Up,
            path: None,
            idx: 0,
            alg: 0,
        }
    }

    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        self.adaptive_candidates(cur, dest, out);
        self.escape_candidates(cur, dest, state, out);
    }

    fn escape_candidates(
        &self,
        cur: NodeId,
        dest: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        // Escape: continue the cached per-sojourn custom route when one is
        // active at this node; otherwise the first hop of a fresh
        // three-phase route from here. Either way the hop belongs to some
        // complete (u, t) route, so the escape CDG stays within the
        // machine-checked all-pairs union of `dsnv_cdg`. A plain per-hop
        // restart would NOT work: PRE-WORK walks pred, and a fresh route
        // from the pred node can walk succ straight back (livelock); the
        // sojourn cache is what makes escape progress monotone.
        let cached = state.path.as_ref().and_then(|p| {
            p.get(state.idx)
                .filter(|&&(ch, _)| self.graph.channel_endpoints(ch).0 == cur)
        });
        match cached {
            Some(&hop) => out.push(hop),
            None => {
                // First hop only — O(1) per retry cycle; the full sojourn
                // route is materialized once the hop is granted (on_hop).
                if let Some(hop) = dsn_route::deadlock::dsnv_first_hop(&self.dsn, cur, dest) {
                    out.push(hop);
                }
            }
        }
    }

    fn on_hop(&self, cur: NodeId, dest: NodeId, state: &mut RouteState, ch: usize, vc: u8) {
        if vc >= 4 {
            // Adaptive hop: any escape sojourn ends.
            state.path = None;
            state.idx = 0;
            return;
        }
        // Escape hop: advance the cached sojourn, or start one from `cur`.
        let continues = state
            .path
            .as_ref()
            .and_then(|p| p.get(state.idx))
            .is_some_and(|&(c, v)| c == ch && v == vc);
        if continues {
            state.idx += 1;
        } else {
            let fresh: Arc<[(usize, u8)]> =
                dsn_route::deadlock::dsnv_route_channels(&self.dsn, cur, dest).into();
            debug_assert!(fresh.first().is_some_and(|&(c, v)| c == ch && v == vc));
            state.path = Some(fresh);
            state.idx = 1;
        }
    }

    fn compiled_flat(&self) -> Option<Arc<FlatRouting>> {
        Some(
            self.flat
                .get_or_init(|| {
                    // Only the adaptive candidates are a pure function of
                    // (cur, dest); the DSN-V escape depends on the packet's
                    // sojourn cache and stays dynamic (`escape_candidates`,
                    // consulted after the table blocks), as does `on_hop`.
                    Arc::new(FlatRouting::compile(
                        self.graph.node_count(),
                        1,
                        HopRule::Dyn,
                        true,
                        |_, cur, dest, out| self.adaptive_candidates(cur, dest, out),
                    ))
                })
                .clone(),
        )
    }
}

/// Deterministic source routing from a precomputed path provider — used for
/// the DSN custom routing (with the DSN-V VC discipline) and torus DOR.
///
/// The provider emits a *VC class* per hop; `lanes` physical VCs are
/// assigned to each class (`vc = class * lanes + lane`), and the router may
/// use any lane of the hop's class. Lane multiplication preserves the
/// DSN-V deadlock-freedom argument: the per-class acyclicity proofs
/// (level monotonicity for PRE-WORK/MAIN, the dateline for FINISH) do not
/// depend on which lane inside the class a packet holds, and inter-class
/// dependencies stay monotone.
/// A source-routing path provider: `(src, dest) -> [(channel, vc_class)]`.
/// Shared (`Arc`) so a post-fault rebuild can reuse the same provider.
pub type PathProvider = Arc<dyn Fn(NodeId, NodeId) -> Vec<(usize, u8)> + Send + Sync>;

/// Deterministic source routing driven by a [`PathProvider`]; see the
/// module docs for the lane/VC-class discipline.
pub struct SourceRouted {
    name: String,
    /// `provider(src, dest)` returns the `(channel, vc_class)` hop sequence.
    provider: PathProvider,
    lanes: u8,
}

impl SourceRouted {
    /// Wrap a path provider with a single lane per VC class.
    pub fn new(
        name: impl Into<String>,
        provider: impl Fn(NodeId, NodeId) -> Vec<(usize, u8)> + Send + Sync + 'static,
    ) -> Self {
        SourceRouted {
            name: name.into(),
            provider: Arc::new(provider),
            lanes: 1,
        }
    }

    /// Set the number of lanes per VC class (the simulator's `vcs` must be
    /// at least `max_class * lanes + lanes`).
    pub fn with_lanes(mut self, lanes: u8) -> Self {
        assert!(lanes >= 1);
        self.lanes = lanes;
        self
    }

    /// DSN custom routing with the DSN-V 4-class deadlock-free discipline.
    pub fn dsn_custom(dsn: Arc<dsn_core::dsn::Dsn>) -> Self {
        SourceRouted::new("dsn-custom(dsn-v)", move |s, t| {
            dsn_route::deadlock::dsnv_route_channels(&dsn, s, t)
        })
    }

    /// The *unsafe* single-VC basic custom routing — its CDG is cyclic
    /// (Section V.A's motivation), so under load the simulator exhibits a
    /// genuine routing deadlock. Provided to demonstrate, in vivo, what the
    /// static CDG analysis predicts; never use for real measurements.
    pub fn dsn_basic_single_vc(dsn: Arc<dsn_core::dsn::Dsn>) -> Self {
        SourceRouted::new("dsn-basic(1vc,UNSAFE)", move |s, t| {
            dsn_route::deadlock::basic_route_channels(&dsn, s, t)
        })
    }

    /// Dimension-order routing on a torus with dateline VCs.
    pub fn torus_dor(torus: Arc<dsn_core::torus::Torus>) -> Self {
        SourceRouted::new("torus-dor", move |s, t| {
            let g = torus.graph();
            let mut prev = s;
            dsn_route::dor::dor_route(&torus, s, t)
                .into_iter()
                .map(|h| {
                    let ch = g.channel_id(h.edge, prev);
                    prev = h.node;
                    (ch, h.vc)
                })
                .collect()
        })
    }
}

impl SimRouting for SourceRouted {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn init(&self, src: NodeId, dest: NodeId) -> RouteState {
        let path: Arc<[(usize, u8)]> = (self.provider)(src, dest).into();
        RouteState {
            ud_phase: UdPhase::Up,
            path: Some(path),
            idx: 0,
            alg: 0,
        }
    }

    fn candidates(
        &self,
        _cur: NodeId,
        _dest: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let path = state
            .path
            .as_ref()
            .expect("source-routed packet has a path");
        let (ch, class) = path[state.idx];
        for lane in 0..self.lanes {
            out.push((ch, class * self.lanes + lane));
        }
    }

    fn on_hop(
        &self,
        _cur: NodeId,
        _dest: NodeId,
        state: &mut RouteState,
        _channel: usize,
        _vc: u8,
    ) {
        state.idx += 1;
    }

    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        Some(Arc::new(DetourSourceRouted {
            name: format!("{}+detour", self.name),
            base_key: self.scheme_key(),
            provider: self.provider.clone(),
            lanes: self.lanes,
            graph: graph.clone(),
            dist: DistanceTable::new_masked(graph, mask),
            mask: mask.clone(),
        }))
    }

    fn scheme_key(&self) -> String {
        // Lanes change the emitted VCs, so they are part of the identity.
        format!("{}[lanes={}]", self.name, self.lanes)
    }
}

/// Post-fault form of [`SourceRouted`]: packets follow their planned path
/// while its next channel is alive; when the plan hits a dead channel the
/// packet switches permanently to a greedy masked-distance descent that
/// prefers ring links (the "ring detour" — DSN's ring is the always-present
/// fallback substrate). New packets still get full planned paths and only
/// detour where the plan is broken.
///
/// The detour abandons the source-route VC discipline, so deadlock freedom
/// is no longer statically guaranteed across epochs; the simulator's stall
/// watchdog covers this (and the differential tests keep both engines in
/// bit-identical agreement either way).
struct DetourSourceRouted {
    name: String,
    /// The pre-fault scheme's key, kept stable across epochs so the
    /// per-(scheme, mask) rebuild cache hits on catch-up rebuild chains.
    base_key: String,
    provider: PathProvider,
    lanes: u8,
    graph: Arc<Graph>,
    dist: DistanceTable,
    mask: EdgeMask,
}

impl SimRouting for DetourSourceRouted {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn init(&self, src: NodeId, dest: NodeId) -> RouteState {
        let path: Arc<[(usize, u8)]> = (self.provider)(src, dest).into();
        RouteState {
            ud_phase: UdPhase::Up,
            path: Some(path),
            idx: 0,
            alg: 0,
        }
    }

    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        // On plan and the next planned channel is alive: stay on plan.
        if let Some(&(ch, class)) = state.path.as_ref().and_then(|p| p.get(state.idx)) {
            if self.graph.channel_endpoints(ch).0 == cur && self.mask.channel_alive(ch) {
                for lane in 0..self.lanes {
                    out.push((ch, class * self.lanes + lane));
                }
                return;
            }
        }
        // Detour: greedy descent on survivor-graph distance, ring links
        // first. Empty output (unreachable destination) makes the engine
        // drop the packet as unroutable.
        let dcur = self.dist.get(cur, dest);
        if dcur == u16::MAX {
            return;
        }
        for ring_pass in [true, false] {
            for (u, e) in self.graph.neighbors(cur) {
                if !self.mask.edge_alive(e) {
                    continue;
                }
                if (self.graph.edge(e).kind == LinkKind::Ring) != ring_pass {
                    continue;
                }
                if self.dist.get(u, dest) < dcur {
                    let ch = self.graph.channel_id(e, cur);
                    for lane in 0..self.lanes {
                        out.push((ch, lane));
                    }
                }
            }
        }
    }

    fn on_hop(&self, _cur: NodeId, _dest: NodeId, state: &mut RouteState, channel: usize, _vc: u8) {
        let on_plan = state
            .path
            .as_ref()
            .and_then(|p| p.get(state.idx))
            .is_some_and(|&(ch, _)| ch == channel);
        if on_plan {
            state.idx += 1;
        } else {
            // Left the plan: the remaining planned hops start at the wrong
            // switch, so the packet detours greedily for the rest of its
            // life.
            state.path = None;
        }
    }

    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        Some(Arc::new(DetourSourceRouted {
            name: self.name.clone(),
            base_key: self.base_key.clone(),
            provider: self.provider.clone(),
            lanes: self.lanes,
            graph: graph.clone(),
            dist: DistanceTable::new_masked(graph, mask),
            mask: mask.clone(),
        }))
    }

    fn scheme_key(&self) -> String {
        self.base_key.clone()
    }
}

/// Table-free DSN-V routing: the next hop is computed *algorithmically*
/// from switch ids and the DSN level structure by the incremental
/// three-phase automaton ([`dsn_route::deadlock::dsnv_step`]), in
/// O(levels) time per hop with O(n) memory — three per-node channel LUTs
/// instead of the O(n²) per-(context, switch, dest) CSR arena or the
/// per-packet materialized paths of [`SourceRouted::dsn_custom`].
///
/// Emits candidates bit-identical to `SourceRouted::dsn_custom` (same
/// `(channel, vc_class * lanes + lane)` sequence, pinned by
/// `tests/algorithmic_equivalence.rs`), carries the automaton state in
/// [`RouteState::alg`] (3 bits), and can still lower itself into a
/// 4-context [`FlatRouting`] table — its own tabulated twin for the
/// flat-vs-algorithmic equivalence gate and the `routing_table_bytes`
/// comparison. Post-fault rebuilds fall back to the same ring-detour
/// scheme as source routing (in-flight packets, which carry no path,
/// detour greedily from their current switch).
pub struct DsnAlgorithmic {
    dsn: Arc<dsn_core::dsn::Dsn>,
    graph: Arc<Graph>,
    /// Channel of the clockwise ring link at each node.
    succ_ch: Vec<u32>,
    /// Channel of the counter-clockwise ring link at each node.
    pred_ch: Vec<u32>,
    /// Channel of the owned shortcut at each node (`u32::MAX` when the
    /// node owns none).
    short_ch: Vec<u32>,
    lanes: u8,
    flat: OnceLock<Arc<FlatRouting>>,
}

impl DsnAlgorithmic {
    /// Build the per-node channel LUTs for `dsn`'s own graph, one lane per
    /// VC class (the DSN-V discipline uses classes 0–3, so the simulator
    /// needs `vcs >= 4 * lanes`).
    pub fn new(dsn: Arc<dsn_core::dsn::Dsn>) -> Self {
        let graph = Arc::new(dsn.graph().clone());
        let n = dsn.n();
        let find = |u: NodeId, v: NodeId, want_shortcut: bool| -> Option<u32> {
            // Same resolution order as `dsn-route`'s edge_for_step: first
            // matching-kind edge, then (shortcut only) any edge — the
            // dedup fallback for shortcuts that coincide with ring links.
            let kind_match = graph
                .neighbors(u)
                .find(|&(w, e)| w == v && (graph.edge(e).kind == LinkKind::Ring) != want_shortcut)
                .map(|(_, e)| graph.channel_id(e, u) as u32);
            kind_match.or_else(|| {
                want_shortcut
                    .then(|| {
                        graph
                            .neighbors(u)
                            .find(|&(w, _)| w == v)
                            .map(|(_, e)| graph.channel_id(e, u) as u32)
                    })
                    .flatten()
            })
        };
        let mut succ_ch = Vec::with_capacity(n);
        let mut pred_ch = Vec::with_capacity(n);
        let mut short_ch = Vec::with_capacity(n);
        for u in 0..n {
            succ_ch.push(find(u, dsn.succ(u), false).expect("ring succ link"));
            pred_ch.push(find(u, dsn.pred(u), false).expect("ring pred link"));
            short_ch.push(match dsn.shortcut(u) {
                Some(t) => find(u, t, true).expect("owned shortcut link"),
                None => u32::MAX,
            });
        }
        DsnAlgorithmic {
            dsn,
            graph,
            succ_ch,
            pred_ch,
            short_ch,
            lanes: 1,
            flat: OnceLock::new(),
        }
    }

    /// Set the number of lanes per VC class, mirroring
    /// [`SourceRouted::with_lanes`].
    pub fn with_lanes(mut self, lanes: u8) -> Self {
        assert!(lanes >= 1);
        self.lanes = lanes;
        self
    }

    /// The single next hop for a packet at `cur` with packed automaton
    /// state `alg`.
    #[inline]
    fn next_hop(&self, cur: NodeId, dest: NodeId, alg: u8) -> dsn_route::deadlock::DsnvHop {
        dsn_route::deadlock::dsnv_step(
            &self.dsn,
            cur,
            dest,
            dsn_route::deadlock::DsnvState::from_bits(alg),
        )
        .expect("never called with cur == dest")
    }
}

impl SimRouting for DsnAlgorithmic {
    fn name(&self) -> String {
        "dsn-algorithmic(dsn-v)".to_string()
    }

    fn init(&self, _src: NodeId, _dest: NodeId) -> RouteState {
        // alg = 0 is the PRE-WORK start state of the automaton.
        RouteState::fresh()
    }

    fn candidates(&self, cur: NodeId, dest: NodeId, state: &RouteState, out: &mut Vec<Candidate>) {
        let hop = self.next_hop(cur, dest, state.alg);
        let ch = match hop.step {
            dsn_route::RouteStep::Succ => self.succ_ch[cur],
            dsn_route::RouteStep::Pred => self.pred_ch[cur],
            dsn_route::RouteStep::Shortcut => self.short_ch[cur],
        };
        debug_assert_ne!(ch, u32::MAX, "shortcut step at a node without one");
        for lane in 0..self.lanes {
            out.push((ch as usize, hop.vc * self.lanes + lane));
        }
    }

    fn on_hop(&self, cur: NodeId, dest: NodeId, state: &mut RouteState, _channel: usize, _vc: u8) {
        state.alg = self.next_hop(cur, dest, state.alg).state.to_bits();
    }

    fn rebuild(&self, graph: &Arc<Graph>, mask: &EdgeMask) -> Option<Arc<dyn SimRouting>> {
        // Graceful fallback: same ring-detour discipline as source routing.
        // New packets get full DSN-V planned paths (materialized once per
        // packet); packets already in flight carry no path and detour
        // greedily on survivor-graph distance from wherever they are.
        let dsn = self.dsn.clone();
        Some(Arc::new(DetourSourceRouted {
            name: format!("{}+detour", self.name()),
            base_key: self.scheme_key(),
            provider: Arc::new(move |s, t| dsn_route::deadlock::dsnv_route_channels(&dsn, s, t)),
            lanes: self.lanes,
            graph: graph.clone(),
            dist: DistanceTable::new_masked(graph, mask),
            mask: mask.clone(),
        }))
    }

    fn reset_state(&self, state: &mut RouteState) {
        state.ud_phase = UdPhase::Up;
        // Restart the automaton: the new epoch's scheme re-plans from the
        // packet's current switch.
        state.alg = 0;
    }

    fn scheme_key(&self) -> String {
        format!("{}[lanes={}]", self.name(), self.lanes)
    }

    fn compiled_flat(&self) -> Option<Arc<FlatRouting>> {
        Some(
            self.flat
                .get_or_init(|| {
                    Arc::new(FlatRouting::compile(
                        self.graph.node_count(),
                        4,
                        HopRule::Dyn,
                        false,
                        |ctx, cur, dest, out| {
                            self.candidates(cur, dest, &FlatRouting::synthetic_state(ctx), out);
                        },
                    ))
                })
                .clone(),
        )
    }

    fn algorithmic(&self) -> bool {
        true
    }

    fn table_bytes(&self) -> usize {
        (self.succ_ch.len() + self.pred_ch.len() + self.short_ch.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsn_core::dsn::Dsn;
    use dsn_core::torus::Torus;

    #[test]
    fn distance_table_matches_bfs() {
        let g = Dsn::new(64, 5).unwrap().into_graph();
        let dt = DistanceTable::new(&g);
        assert_eq!(dt.get(0, 0), 0);
        // symmetric
        for (a, b) in [(0usize, 10usize), (5, 60), (33, 2)] {
            assert_eq!(dt.get(a, b), dt.get(b, a));
            assert!(dt.get(a, b) > 0);
        }
    }

    #[test]
    fn adaptive_candidates_make_progress() {
        let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
        let r = AdaptiveEscape::new(g.clone(), 4);
        let mut out = Vec::new();
        for (cur, dest) in [(0usize, 32usize), (10, 11), (63, 0)] {
            out.clear();
            let st = r.init(cur, dest);
            r.candidates(cur, dest, &st, &mut out);
            assert!(!out.is_empty(), "{cur}->{dest}");
            // escape candidate (vc 0) must be present
            assert!(out.iter().any(|&(_, vc)| vc == 0));
            // adaptive candidates only on vcs 1..4
            for &(ch, vc) in &out {
                assert!(vc < 4);
                let (from, _) = g.channel_endpoints(ch);
                assert_eq!(from, cur);
            }
        }
    }

    #[test]
    fn adaptive_walk_terminates() {
        // Greedily follow the first candidate; minimal-adaptive plus escape
        // must reach the destination.
        let g = Arc::new(Dsn::new(100, 6).unwrap().into_graph());
        let r = AdaptiveEscape::new(g.clone(), 4);
        let mut out = Vec::new();
        for (s, t) in [(0usize, 50usize), (99, 3), (42, 41)] {
            let mut cur = s;
            let mut st = r.init(s, t);
            let mut hops = 0;
            while cur != t {
                out.clear();
                r.candidates(cur, t, &st, &mut out);
                let (ch, vc) = out[0];
                r.on_hop(cur, t, &mut st, ch, vc);
                cur = g.channel_endpoints(ch).1;
                hops += 1;
                assert!(hops < 200, "no progress {s}->{t}");
            }
        }
    }

    #[test]
    fn updown_only_walk_terminates() {
        let g = Arc::new(Dsn::new(64, 5).unwrap().into_graph());
        let r = UpDownRouting::new(g.clone(), 2);
        let mut out = Vec::new();
        for (s, t) in [(5usize, 60usize), (63, 0)] {
            let mut cur = s;
            let mut st = r.init(s, t);
            let mut hops = 0;
            while cur != t {
                out.clear();
                r.candidates(cur, t, &st, &mut out);
                let (ch, vc) = out[0];
                r.on_hop(cur, t, &mut st, ch, vc);
                cur = g.channel_endpoints(ch).1;
                hops += 1;
                assert!(hops < 100);
            }
        }
    }

    #[test]
    fn minimal_adaptive_dsn_walk_terminates() {
        let dsn = Arc::new(Dsn::new(100, 6).unwrap());
        let g = Arc::new(dsn.graph().clone());
        let r = MinimalAdaptiveDsn::new(dsn, 8);
        let mut out = Vec::new();
        for (s, t) in [(0usize, 50usize), (99, 1), (13, 14)] {
            let mut cur = s;
            let mut st = r.init(s, t);
            let mut hops = 0;
            while cur != t {
                out.clear();
                r.candidates(cur, t, &st, &mut out);
                assert!(!out.is_empty(), "{cur}->{t}");
                // escape candidate always present and on a class VC < 4
                assert!(out.iter().any(|&(_, vc)| vc < 4));
                let (ch, vc) = out[0]; // greedy: first adaptive candidate
                r.on_hop(cur, t, &mut st, ch, vc);
                cur = g.channel_endpoints(ch).1;
                hops += 1;
                assert!(hops < 200, "{s}->{t} livelock");
            }
        }
    }

    #[test]
    fn minimal_adaptive_escape_only_walk_terminates() {
        // Following ONLY the escape candidate must also reach (it is the
        // custom route, recomputed per hop — restart semantics).
        let dsn = Arc::new(Dsn::new(126, 6).unwrap());
        let g = Arc::new(dsn.graph().clone());
        let r = MinimalAdaptiveDsn::new(dsn.clone(), 8);
        let bound = 3 * dsn.p() as usize + dsn.r() + 16;
        let mut out = Vec::new();
        for (s, t) in [(0usize, 70usize), (125, 3)] {
            let mut cur = s;
            let mut st = r.init(s, t);
            let mut hops = 0;
            while cur != t {
                out.clear();
                r.candidates(cur, t, &st, &mut out);
                let &(ch, vc) = out.iter().find(|&&(_, vc)| vc < 4).expect("escape");
                r.on_hop(cur, t, &mut st, ch, vc);
                cur = g.channel_endpoints(ch).1;
                hops += 1;
                assert!(hops <= bound, "{s}->{t}: escape walk exceeded {bound}");
            }
        }
    }

    #[test]
    fn source_routed_dsn_follows_path() {
        let dsn = Arc::new(Dsn::new(64, 5).unwrap());
        let g = dsn.graph().clone();
        let r = SourceRouted::dsn_custom(dsn);
        let mut st = r.init(3, 40);
        let path = st.path.clone().unwrap();
        let mut cur = 3;
        let mut out = Vec::new();
        for _ in 0..path.len() {
            out.clear();
            r.candidates(cur, 40, &st, &mut out);
            assert_eq!(out.len(), 1);
            let (ch, vc) = out[0];
            r.on_hop(cur, 40, &mut st, ch, vc);
            cur = g.channel_endpoints(ch).1;
        }
        assert_eq!(cur, 40);
    }

    #[test]
    fn source_routed_dor_reaches_dest() {
        let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
        let g = torus.graph().clone();
        let r = SourceRouted::torus_dor(torus);
        for (s, t) in [(0usize, 15usize), (7, 8)] {
            let mut st = r.init(s, t);
            let path = st.path.clone().unwrap();
            let mut cur = s;
            let mut out = Vec::new();
            for _ in 0..path.len() {
                out.clear();
                r.candidates(cur, t, &st, &mut out);
                let (ch, vc) = out[0];
                r.on_hop(cur, t, &mut st, ch, vc);
                cur = g.channel_endpoints(ch).1;
            }
            assert_eq!(cur, t);
        }
    }
}
