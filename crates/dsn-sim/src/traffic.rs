//! Synthetic traffic patterns (Section VII.A of the paper, following Dally
//! & Towles): *uniform random*, *bit reversal*, and *neighboring* (90% of
//! packets to 2-D-array neighbors, 10% uniform), plus the usual extras
//! (transpose, hotspot, fixed permutation) for wider experiments.

use rand::rngs::SmallRng;
use rand::Rng;

/// Destination-selection pattern over `hosts` endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// Uniform random over all other hosts.
    Uniform,
    /// `dest = bit_reverse(src)` over `ceil(log2 hosts)` bits; self-sends
    /// fall back to uniform.
    BitReversal,
    /// With probability `local`, send to one of the four neighbors of the
    /// source in a 2-D array layout of all hosts; otherwise uniform
    /// (paper: `local = 0.9`).
    Neighboring {
        /// Fraction of packets sent to array neighbors.
        local: f64,
    },
    /// Matrix transpose: on a `side x side` host array, `(r, c) -> (c, r)`.
    Transpose,
    /// A fraction of traffic targets one hot host, rest uniform.
    Hotspot {
        /// The hot destination.
        hot: usize,
        /// Fraction of packets aimed at it.
        fraction: f64,
    },
    /// Fixed random permutation (seeded elsewhere): `dest = perm[src]`.
    Permutation(Vec<usize>),
    /// Tornado: `dest = (src + ceil(hosts/2) - 1) mod hosts` — the classic
    /// adversarial pattern for rings and tori (Dally & Towles).
    Tornado,
    /// Perfect shuffle: `dest = rotate_left_1(src)` over `log2(hosts)`
    /// bits; requires a power-of-two host count (falls back to uniform
    /// otherwise or on self-sends).
    Shuffle,
    /// Zipf-like hot-host mix: destination host `d` is drawn with
    /// probability proportional to `(d + 1)^-skew`, so low-numbered hosts
    /// are hot (host 0 hottest) — the skewed destination popularity of
    /// datacenter object stores. Build with [`TrafficPattern::zipf`];
    /// self-sends fall back to uniform.
    Zipf {
        /// Normalized cumulative distribution over host ids (last entry
        /// is 1.0). Precomputed so a pick costs one draw + binary search.
        cdf: Vec<f64>,
    },
}

impl TrafficPattern {
    /// The paper's neighboring pattern (90% local).
    pub fn neighboring_paper() -> Self {
        TrafficPattern::Neighboring { local: 0.9 }
    }

    /// Build a [`TrafficPattern::Zipf`] over `hosts` endpoints with the
    /// given skew exponent (`0.0` = uniform popularity, `~1.0` = classic
    /// Zipf, larger = hotter head).
    ///
    /// # Panics
    /// Panics if `hosts < 2` or `skew` is not finite and non-negative.
    pub fn zipf(hosts: usize, skew: f64) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        assert!(
            skew.is_finite() && skew >= 0.0,
            "skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(hosts);
        let mut acc = 0.0f64;
        for d in 0..hosts {
            acc += ((d + 1) as f64).powf(-skew);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().expect("hosts >= 2") = 1.0;
        TrafficPattern::Zipf { cdf }
    }

    /// Pick a destination host for a packet from `src`, never equal to
    /// `src`.
    ///
    /// # Panics
    /// Panics if `hosts < 2` or `src >= hosts`.
    pub fn pick(&self, src: usize, hosts: usize, rng: &mut SmallRng) -> usize {
        assert!(hosts >= 2, "need at least two hosts");
        assert!(src < hosts, "src out of range");
        let dest = match self {
            TrafficPattern::Uniform => uniform_other(src, hosts, rng),
            TrafficPattern::BitReversal => {
                let bits = usize::BITS - (hosts - 1).leading_zeros();
                let mut d = src.reverse_bits() >> (usize::BITS - bits);
                if d >= hosts || d == src {
                    d = uniform_other(src, hosts, rng);
                }
                d
            }
            TrafficPattern::Neighboring { local } => {
                if rng.gen_bool(local.clamp(0.0, 1.0)) {
                    array_neighbor(src, hosts, rng)
                } else {
                    uniform_other(src, hosts, rng)
                }
            }
            TrafficPattern::Transpose => {
                let side = (hosts as f64).sqrt() as usize;
                if side * side == hosts {
                    let (r, c) = (src / side, src % side);
                    let d = c * side + r;
                    if d == src {
                        uniform_other(src, hosts, rng)
                    } else {
                        d
                    }
                } else {
                    uniform_other(src, hosts, rng)
                }
            }
            TrafficPattern::Hotspot { hot, fraction } => {
                if *hot != src && rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    *hot
                } else {
                    uniform_other(src, hosts, rng)
                }
            }
            TrafficPattern::Permutation(perm) => {
                let d = perm[src];
                if d == src || d >= hosts {
                    uniform_other(src, hosts, rng)
                } else {
                    d
                }
            }
            TrafficPattern::Tornado => {
                let d = (src + hosts.div_ceil(2) - 1) % hosts;
                if d == src {
                    uniform_other(src, hosts, rng)
                } else {
                    d
                }
            }
            TrafficPattern::Shuffle => {
                if hosts.is_power_of_two() {
                    let bits = hosts.trailing_zeros();
                    let top = (src >> (bits - 1)) & 1;
                    let d = ((src << 1) | top) & (hosts - 1);
                    if d == src {
                        uniform_other(src, hosts, rng)
                    } else {
                        d
                    }
                } else {
                    uniform_other(src, hosts, rng)
                }
            }
            TrafficPattern::Zipf { cdf } => {
                // One uniform draw inverted through the CDF; a stale
                // pattern (built for a different host count) or a
                // self-send falls back to uniform.
                let r = rng.gen_f64();
                let d = cdf.partition_point(|&c| c <= r);
                if d >= hosts || d == src {
                    uniform_other(src, hosts, rng)
                } else {
                    d
                }
            }
        };
        debug_assert_ne!(dest, src);
        debug_assert!(dest < hosts);
        dest
    }

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::BitReversal => "bit-reversal",
            TrafficPattern::Neighboring { .. } => "neighboring",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation(_) => "permutation",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Zipf { .. } => "zipf",
        }
    }
}

fn uniform_other(src: usize, hosts: usize, rng: &mut SmallRng) -> usize {
    let d = rng.gen_range(0..hosts - 1);
    if d >= src {
        d + 1
    } else {
        d
    }
}

/// A random 2-D-array neighbor of `src` on the most-square grid of all
/// hosts (the paper's "neighboring nodes in 2-D array layout").
fn array_neighbor(src: usize, hosts: usize, rng: &mut SmallRng) -> usize {
    // most-square factorization
    let mut rows = (hosts as f64).sqrt() as usize;
    while rows > 1 && !hosts.is_multiple_of(rows) {
        rows -= 1;
    }
    if rows <= 1 {
        return uniform_other(src, hosts, rng);
    }
    let cols = hosts / rows;
    let (r, c) = (src / cols, src % cols);
    let mut candidates = [0usize; 4];
    let mut k = 0;
    if r > 0 {
        candidates[k] = (r - 1) * cols + c;
        k += 1;
    }
    if r + 1 < rows {
        candidates[k] = (r + 1) * cols + c;
        k += 1;
    }
    if c > 0 {
        candidates[k] = r * cols + (c - 1);
        k += 1;
    }
    if c + 1 < cols {
        candidates[k] = r * cols + (c + 1);
        k += 1;
    }
    if k == 0 {
        uniform_other(src, hosts, rng)
    } else {
        candidates[rng.gen_range(0..k)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn uniform_covers_and_avoids_self() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let d = TrafficPattern::Uniform.pick(3, 8, &mut r);
            assert_ne!(d, 3);
            seen[d] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn bit_reversal_exact() {
        let mut r = rng();
        // 256 hosts = 8 bits: src 0b00000001 -> 0b10000000 = 128.
        assert_eq!(TrafficPattern::BitReversal.pick(1, 256, &mut r), 128);
        assert_eq!(TrafficPattern::BitReversal.pick(128, 256, &mut r), 1);
        // palindromic src (0) falls back to uniform, never self
        let d = TrafficPattern::BitReversal.pick(0, 256, &mut r);
        assert_ne!(d, 0);
    }

    #[test]
    fn neighboring_is_mostly_local() {
        let mut r = rng();
        let pat = TrafficPattern::neighboring_paper();
        let hosts = 256; // 16x16 array
        let src = 17 * 16 / 16 * 16 + 5; // interior-ish
        let src = src.min(hosts - 1);
        let mut local = 0;
        let n = 2000;
        for _ in 0..n {
            let d = pat.pick(src, hosts, &mut r);
            let (r1, c1) = (src / 16, src % 16);
            let (r2, c2) = (d / 16, d % 16);
            if r1.abs_diff(r2) + c1.abs_diff(c2) == 1 {
                local += 1;
            }
        }
        let frac = local as f64 / n as f64;
        assert!(frac > 0.85, "local fraction {frac}");
    }

    #[test]
    fn transpose_exact() {
        let mut r = rng();
        // 16 hosts = 4x4: (1,2)=6 -> (2,1)=9
        assert_eq!(TrafficPattern::Transpose.pick(6, 16, &mut r), 9);
        // diagonal falls back
        assert_ne!(TrafficPattern::Transpose.pick(5, 16, &mut r), 5);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut r = rng();
        let pat = TrafficPattern::Hotspot {
            hot: 7,
            fraction: 0.5,
        };
        let mut hits = 0;
        for _ in 0..2000 {
            if pat.pick(0, 64, &mut r) == 7 {
                hits += 1;
            }
        }
        let frac = hits as f64 / 2000.0;
        assert!((0.4..0.6).contains(&frac), "hotspot fraction {frac}");
    }

    #[test]
    fn permutation_followed() {
        let mut r = rng();
        let perm: Vec<usize> = (0..8).map(|i| (i + 3) % 8).collect();
        let pat = TrafficPattern::Permutation(perm);
        assert_eq!(pat.pick(0, 8, &mut r), 3);
        assert_eq!(pat.pick(6, 8, &mut r), 1);
    }

    #[test]
    fn tornado_is_half_rotation() {
        let mut r = rng();
        // hosts = 16: dest = src + 7 mod 16
        assert_eq!(TrafficPattern::Tornado.pick(0, 16, &mut r), 7);
        assert_eq!(TrafficPattern::Tornado.pick(10, 16, &mut r), 1);
    }

    #[test]
    fn shuffle_rotates_bits() {
        let mut r = rng();
        // hosts = 8 (3 bits): 0b011 -> 0b110
        assert_eq!(TrafficPattern::Shuffle.pick(0b011, 8, &mut r), 0b110);
        // 0b100 -> 0b001
        assert_eq!(TrafficPattern::Shuffle.pick(0b100, 8, &mut r), 0b001);
        // fixed points (0, 7) fall back to uniform, never self
        assert_ne!(TrafficPattern::Shuffle.pick(0, 8, &mut r), 0);
        assert_ne!(TrafficPattern::Shuffle.pick(7, 8, &mut r), 7);
    }

    #[test]
    fn names_stable() {
        assert_eq!(TrafficPattern::Uniform.name(), "uniform");
        assert_eq!(TrafficPattern::neighboring_paper().name(), "neighboring");
        assert_eq!(TrafficPattern::zipf(8, 1.2).name(), "zipf");
    }

    #[test]
    fn zipf_head_is_hot_and_ranked() {
        let mut r = rng();
        let pat = TrafficPattern::zipf(64, 1.2);
        let mut counts = [0usize; 64];
        let n = 20_000;
        for _ in 0..n {
            counts[pat.pick(63, 64, &mut r)] += 1;
        }
        // host 0 strictly hottest, and the head dominates the tail
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[8]);
        let head: usize = counts[..8].iter().sum();
        assert!(
            head * 2 > n,
            "head of 8/64 hosts drew only {head} of {n} picks"
        );
        // never self, covers a decent slice of the tail
        assert_eq!(counts[63], 0);
    }

    #[test]
    fn zipf_skew_zero_is_near_uniform() {
        let mut r = rng();
        let pat = TrafficPattern::zipf(16, 0.0);
        let mut counts = [0usize; 16];
        for _ in 0..16_000 {
            counts[pat.pick(0, 16, &mut r)] += 1;
        }
        assert_eq!(counts[0], 0, "self-sends must fall back elsewhere");
        let (min, max) = (
            counts[1..].iter().min().unwrap(),
            counts[1..].iter().max().unwrap(),
        );
        assert!(
            max < &(min * 2),
            "skew 0 should be near-uniform: {counts:?}"
        );
    }

    #[test]
    fn zipf_deterministic_given_rng() {
        let pat = TrafficPattern::zipf(32, 1.0);
        let mut a = SmallRng::seed_from_u64(77);
        let mut b = SmallRng::seed_from_u64(77);
        let xs: Vec<usize> = (0..100).map(|_| pat.pick(5, 32, &mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| pat.pick(5, 32, &mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn zipf_rejects_tiny() {
        TrafficPattern::zipf(1, 1.0);
    }
}
