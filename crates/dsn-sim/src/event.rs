//! Event-driven scheduling core for the [`crate::engine::Simulator`].
//!
//! The dense reference scans every input VC, output channel and link queue
//! each cycle; this core touches only the units with pending work, while
//! producing **bit-identical** [`crate::RunStats`]:
//!
//! * a *timing wheel* holds cycle-stamped events — credit returns, link
//!   arrivals, and header-delay expiries — whose delays are all bounded by
//!   a small constant, so a power-of-two slot ring indexed by
//!   `cycle & mask` replaces the per-channel `VecDeque` front-polling;
//! * *active sets* track the input VCs eligible for allocation, the
//!   channels with at least one owned output VC, and the VCs holding an
//!   ejection grant; each phase iterates its set in sorted index order,
//!   which is exactly the order of the dense scan restricted to units
//!   whose state could change, so round-robin pointers advance identically;
//! * a *calendar heap* of `(cycle, host)` pairs pops injections in the
//!   same (cycle, host-ascending) order the dense per-cycle host scan
//!   produces, at O(log hosts) per injection instead of O(hosts) per cycle;
//! * when no event, injection or active unit exists the clock jumps
//!   straight to the next injection — safe because a live packet always
//!   keeps at least one set or wheel slot nonempty, and an idle network
//!   has zero stall by definition.
//!
//! Telemetry hooks (`dsn-telemetry`) live exclusively in the shared
//! mutation helpers of `engine.rs`, never in this scheduling loop: both
//! cores fire the same hook calls at the same cycles, so the exported
//! telemetry — like `RunStats` — is bit-identical between them
//! (`tests/telemetry_equivalence.rs`). Intra-cycle hook order may differ
//! (e.g. wheel-slot vs channel-scan order for link arrivals), which is
//! harmless because every telemetry accumulator is commutative within a
//! cycle and at most one flit per (channel, VC) moves per cycle.

use crate::engine::{alloc_is_eject, AllocOutcome, Flit, Simulator, ALLOC_NONE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One wheel slot, split by event kind so each per-cycle phase drains only
/// its own events — credits land before link arrivals before route
/// expiries (the dense phase order) without dispatching over a mixed list
/// three times. Within a kind, push order is preserved, which is all the
/// phase passes ever relied on.
#[derive(Debug, Default)]
struct Slot {
    /// Credits arriving back at output VC `(ch, vc)`.
    credits: Vec<(u32, u8)>,
    /// Flits arriving at the downstream input of `ch` on `vc`.
    links: Vec<(u32, u8, Flit)>,
    /// Input VCs whose header delay expired: eligible for allocation.
    routes: Vec<u32>,
}

impl Slot {
    fn len(&self) -> usize {
        self.credits.len() + self.links.len() + self.routes.len()
    }

    fn clear(&mut self) {
        self.credits.clear();
        self.links.clear();
        self.routes.clear();
    }
}

/// Timing wheel: a power-of-two ring of slots indexed by `cycle & mask`.
/// All scheduled delays are bounded by the wheel size, so no event ever
/// wraps onto a pending slot.
#[derive(Debug)]
struct Wheel {
    slots: Vec<Slot>,
    mask: u64,
    /// Total events currently scheduled (for the idle-skip check).
    pending: usize,
    /// Recycled slots (avoids reallocating the vectors every cycle).
    pool: Vec<Slot>,
}

impl Wheel {
    fn new(max_delay: u64) -> Self {
        let size = (max_delay + 1).next_power_of_two().max(2);
        Wheel {
            slots: (0..size).map(|_| Slot::default()).collect(),
            mask: size - 1,
            pending: 0,
            pool: Vec::new(),
        }
    }

    #[inline]
    fn slot_mut(&mut self, t: u64) -> &mut Slot {
        self.pending += 1;
        &mut self.slots[(t & self.mask) as usize]
    }

    /// Take all events due at `now` (the slot is emptied; recycle it back
    /// with [`Self::recycle`]).
    fn take_slot(&mut self, now: u64) -> Slot {
        let fresh = self.pool.pop().unwrap_or_default();
        let slot = std::mem::replace(&mut self.slots[(now & self.mask) as usize], fresh);
        self.pending -= slot.len();
        slot
    }

    fn recycle(&mut self, mut s: Slot) {
        s.clear();
        self.pool.push(s);
    }
}

/// A set of active unit indices iterated in sorted order once per phase.
/// Stored as a bitmap over the (small, fixed) unit domain: membership ops
/// are single-word bit twiddles, the live count keeps the emptiness check
/// O(1) for the idle skip, and a snapshot walks the words with
/// `trailing_zeros`, yielding ascending order for free — no per-cycle
/// sort/dedup pass.
#[derive(Debug)]
struct ActiveSet {
    words: Vec<u64>,
    live: usize,
}

impl ActiveSet {
    fn new(domain: usize) -> Self {
        ActiveSet {
            words: vec![0; domain.div_ceil(64)],
            live: 0,
        }
    }

    #[inline]
    fn insert(&mut self, id: u32) {
        let (w, bit) = ((id >> 6) as usize, 1u64 << (id & 63));
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.live += 1;
        }
    }

    #[inline]
    fn remove(&mut self, id: u32) {
        let (w, bit) = ((id >> 6) as usize, 1u64 << (id & 63));
        if self.words[w] & bit != 0 {
            self.words[w] &= !bit;
            self.live -= 1;
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Copy the live members, sorted ascending, into `out` (cleared first).
    fn snapshot_sorted(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.live == 0 {
            return;
        }
        for (wi, &word) in self.words.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                out.push(((wi as u32) << 6) | m.trailing_zeros());
                m &= m - 1;
            }
        }
    }
}

/// Event-engine state hanging off the simulator (`Simulator::ev`). The
/// shared mutation helpers in `engine.rs` feed the wheel and the route
/// events; the step loop below maintains the three active sets.
#[derive(Debug)]
pub(crate) struct EventState {
    wheel: Wheel,
    /// Input VCs whose head packet is armed, expired and unallocated.
    alloc_pending: ActiveSet,
    /// Channels with at least one owned output VC.
    out_active: ActiveSet,
    /// Input VCs holding an ejection grant.
    eject_active: ActiveSet,
    /// `(next_injection_cycle, host)` calendar, min-ordered.
    inj_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Scratch for per-phase snapshots.
    scratch: Vec<u32>,
    /// VC stride for encoding `(input, vc)` pairs as a single index.
    nvc: u32,
}

impl EventState {
    #[inline]
    fn iv(&self, i: usize, v: usize) -> u32 {
        i as u32 * self.nvc + v as u32
    }

    #[inline]
    fn iv_decode(&self, iv: u32) -> (usize, usize) {
        ((iv / self.nvc) as usize, (iv % self.nvc) as usize)
    }

    pub(crate) fn schedule_route(&mut self, t: u64, i: usize, v: usize) {
        let iv = self.iv(i, v);
        self.wheel.slot_mut(t).routes.push(iv);
    }

    pub(crate) fn schedule_link(&mut self, t: u64, ch: usize, flit: Flit, vc: u8) {
        self.wheel.slot_mut(t).links.push((ch as u32, vc, flit));
    }

    pub(crate) fn schedule_credit(&mut self, t: u64, ch: usize, vc: u8) {
        self.wheel.slot_mut(t).credits.push((ch as u32, vc));
    }

    pub(crate) fn schedule_injection(&mut self, t: u64, host: usize) {
        self.inj_heap.push(Reverse((t, host as u32)));
    }

    /// Earliest scheduled injection cycle, if any (sharded driver's global
    /// idle fast-forward).
    pub(crate) fn next_injection_cycle(&self) -> Option<u64> {
        self.inj_heap.peek().map(|&Reverse((t, _))| t)
    }

    /// No scheduled event and no active unit: nothing can happen on this
    /// shard before its next injection or a cross-shard arrival.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.wheel.pending == 0
            && self.alloc_pending.is_empty()
            && self.out_active.is_empty()
            && self.eject_active.is_empty()
    }

    /// Packets with a flit currently in flight on channel `ch` (scans the
    /// whole wheel; fault-path only, so the cost is fine).
    pub(crate) fn wire_packets_on(&self, ch: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for slot in &self.wheel.slots {
            for &(c, _, flit) in &slot.links {
                if c as usize == ch {
                    out.push(flit.packet);
                }
            }
        }
        out
    }

    /// Remove every in-flight link event carrying a flit of `pkt`; returns
    /// the `(channel, vc)` of each removed flit so the caller can refund
    /// its credit. Fault-path only.
    pub(crate) fn purge_link_flits(&mut self, pkt: u32) -> Vec<(usize, u8)> {
        let mut out = Vec::new();
        for slot in &mut self.wheel.slots {
            let before = slot.links.len();
            slot.links.retain(|&(ch, vc, flit)| {
                if flit.packet == pkt {
                    out.push((ch as usize, vc));
                    false
                } else {
                    true
                }
            });
            self.wheel.pending -= before - slot.links.len();
        }
        out
    }
}

/// Install the event state on a freshly constructed simulator (no flits in
/// flight yet): empty wheel and sets, plus the injection calendar.
pub(crate) fn prepare(sim: &mut Simulator) {
    debug_assert!(sim.ev.is_none() && sim.now == 0);
    let nvc = sim.nvc as u32;
    let iv_domain = sim.n_inputs * nvc as usize;
    // Largest delay ever pushed: a revealed head arms at `now + 1` and
    // expires `max(header_delay, 1)` later.
    let max_delay = sim
        .cfg
        .link_delay
        .max(sim.cfg.credit_delay)
        .max(sim.cfg.header_delay + 1)
        .max(2);
    let mut ev = Box::new(EventState {
        wheel: Wheel::new(max_delay),
        alloc_pending: ActiveSet::new(iv_domain),
        out_active: ActiveSet::new(sim.links.len()),
        eject_active: ActiveSet::new(iv_domain),
        inj_heap: BinaryHeap::new(),
        scratch: Vec::new(),
        nvc,
    });
    for h in 0..sim.hosts() {
        // A shard only injects from the hosts it owns; the other hosts'
        // RNG streams exist (identical seeding) but are never drawn from.
        if let Some(sc) = &sim.shard {
            if !sc.local_host[h] {
                continue;
            }
        }
        let t = sim.injector.next_cycle(h);
        if t != crate::inject::NEVER {
            ev.inj_heap.push(Reverse((t, h as u32)));
        }
    }
    sim.ev = Some(ev);
}

/// Advance the event engine by one cycle (possibly skipping idle cycles at
/// the end). Mirrors the dense phase order exactly: credits, link arrivals,
/// injection, allocation, traversal, ejection, watchdog.
pub(crate) fn step(sim: &mut Simulator, total: u64) {
    let now = sim.now;

    // Phase 0: faults due at or before this cycle (the idle skip may have
    // jumped over fault cycles — safe, because it only fires on an empty
    // network and the routing rebuild is a pure function of the final mask).
    sim.process_faults(now);

    // Phases 1+2 (+ route expiries): drain this cycle's wheel slot in
    // three passes so credits land before arrivals, before eligibility —
    // the dense phase order. At most one credit and one arrival exist per
    // (channel, VC) per cycle, so ordering within a pass is immaterial.
    let slot = sim.ev.as_mut().expect("event state").wheel.take_slot(now);
    for &(ch, vc) in &slot.credits {
        sim.apply_credit(ch as usize, vc);
    }
    for &(ch, vc, flit) in &slot.links {
        sim.buf_push(ch as usize, vc as usize, flit, now);
    }
    for &iv in &slot.routes {
        // The wheel's iv ids index the simulator's SoA arrays directly
        // (same `input * nvc + vc` stride).
        let unit = iv as usize;
        // Without faults a route expiry always finds the armed head
        // still waiting: allocation cannot have happened before the
        // timer ran out, and re-arming implies the previous packet
        // already left. A fault purge can orphan an expiry; a stale
        // event can never collide with a fresh arm's ready cycle
        // (old ready = T + hd with T < now < now + hd = new ready),
        // so `ivc_ready == now` is a precise validity test.
        let valid = sim.ivc_ready[unit] == now
            && sim.ivc_alloc[unit] == ALLOC_NONE
            && sim.ivc_buf[unit].front().is_some_and(|f| f.seq == 0);
        debug_assert!(
            valid || sim.fault.is_some(),
            "stale route expiry without faults"
        );
        if valid {
            sim.ev
                .as_mut()
                .expect("event state")
                .alloc_pending
                .insert(iv);
        }
    }
    sim.ev.as_mut().expect("event state").wheel.recycle(slot);

    // Phase 3: injection — pop the calendar in (cycle, host) order, which
    // matches the dense ascending-host scan for this cycle.
    if now == 0 && !sim.pending_batch.is_empty() {
        let batch = std::mem::take(&mut sim.pending_batch);
        for (src, dest) in batch {
            sim.enqueue_packet(now, src, dest);
        }
    }
    sim.inject_retries(now);
    loop {
        let host = {
            let es = sim.ev.as_mut().expect("event state");
            match es.inj_heap.peek() {
                Some(&Reverse((t, h))) if t == now => {
                    es.inj_heap.pop();
                    h as usize
                }
                _ => break,
            }
        };
        // inject_host re-schedules the host's next injection via self.ev.
        sim.inject_host(host, now);
    }

    // Phase 4: allocation over the eligible input VCs in (input, vc)
    // order — the dense scan order restricted to eligible units.
    let mut scratch = {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = std::mem::take(&mut es.scratch);
        es.alloc_pending.snapshot_sorted(&mut s);
        s
    };
    for &iv in &scratch {
        let (i, v) = sim.ev.as_ref().expect("event state").iv_decode(iv);
        // Re-check eligibility fresh: an earlier iteration's unroutable
        // drop may have purged this entry's head or re-armed it.
        let slot = iv as usize;
        let eligible = sim.ivc_alloc[slot] == ALLOC_NONE
            && sim.ivc_ready[slot] <= now
            && sim.ivc_buf[slot].front().is_some_and(|f| f.seq == 0);
        if !eligible {
            debug_assert!(sim.fault.is_some(), "stale alloc entry without faults");
            sim.ev
                .as_mut()
                .expect("event state")
                .alloc_pending
                .remove(iv);
            continue;
        }
        match sim.try_allocate_vc(i, v, now) {
            AllocOutcome::Blocked => {}
            AllocOutcome::Eject => {
                let es = sim.ev.as_mut().expect("event state");
                es.alloc_pending.remove(iv);
                es.eject_active.insert(iv);
            }
            AllocOutcome::Net(ch) => {
                let es = sim.ev.as_mut().expect("event state");
                es.alloc_pending.remove(iv);
                es.out_active.insert(ch as u32);
            }
            AllocOutcome::Unroutable => {
                sim.unroutable_drop(i, v, now);
                sim.ev
                    .as_mut()
                    .expect("event state")
                    .alloc_pending
                    .remove(iv);
            }
        }
    }

    // Phase 5a: switch allocation + sends over channels with owners, in
    // channel order (ownerless channels are no-ops in the dense scan).
    {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = scratch;
        es.out_active.snapshot_sorted(&mut s);
        scratch = s;
    }
    for &ch in &scratch {
        sim.grant_channel(ch as usize, now);
        // Deactivate whenever no owner remains — not only after a tail
        // send, since a fault drop can strip ownership mid-stream.
        if sim.ch_owned[ch as usize] == 0 {
            sim.ev.as_mut().expect("event state").out_active.remove(ch);
        }
    }

    // Phase 5b: ejection over VCs holding an eject grant, in (input, vc)
    // order — matching the dense whole-input scan restricted to grants.
    {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = scratch;
        es.eject_active.snapshot_sorted(&mut s);
        scratch = s;
    }
    for &iv in &scratch {
        let (i, v) = sim.ev.as_ref().expect("event state").iv_decode(iv);
        // A fault drop may have stripped the grant since the snapshot.
        if !alloc_is_eject(sim.ivc_alloc[iv as usize]) {
            sim.ev
                .as_mut()
                .expect("event state")
                .eject_active
                .remove(iv);
            continue;
        }
        if sim.try_eject_vc(i, v, now) {
            sim.ev
                .as_mut()
                .expect("event state")
                .eject_active
                .remove(iv);
        }
    }
    sim.ev.as_mut().expect("event state").scratch = scratch;

    sim.clear_used();
    sim.watchdog(now);
    sim.now = now + 1;

    // Idle skip: with no scheduled events and no active unit, nothing can
    // happen before the next injection. A live packet always keeps a set
    // or wheel slot nonempty (its flits are buffered → allocated/armed/
    // pending, or on a link → wheel), so skipping implies zero packets in
    // flight and the stall watchdog is vacuously idle across the gap.
    let es = sim.ev.as_ref().expect("event state");
    if es.wheel.pending == 0
        && es.alloc_pending.is_empty()
        && es.out_active.is_empty()
        && es.eject_active.is_empty()
    {
        debug_assert_eq!(sim.packets.live(), 0);
        debug_assert_eq!(sim.current_stall, 0);
        let next_inj = es.inj_heap.peek().map_or(u64::MAX, |&Reverse((t, _))| t);
        let next_retry = sim
            .fault
            .as_ref()
            .and_then(|f| f.next_retry_cycle())
            .unwrap_or(u64::MAX);
        sim.now = sim.now.max(next_inj.min(next_retry).min(total));
    }
}
