//! Event-driven scheduling core for the [`crate::engine::Simulator`].
//!
//! The dense reference scans every input VC, output channel and link queue
//! each cycle; this core touches only the units with pending work, while
//! producing **bit-identical** [`crate::RunStats`]:
//!
//! * a *timing wheel* holds cycle-stamped events — credit returns, link
//!   arrivals, and header-delay expiries — whose delays are all bounded by
//!   a small constant, so a power-of-two slot ring indexed by
//!   `cycle & mask` replaces the per-channel `VecDeque` front-polling;
//! * *active sets* track the input VCs eligible for allocation, the
//!   channels with at least one owned output VC, and the VCs holding an
//!   ejection grant; each phase iterates its set in sorted index order,
//!   which is exactly the order of the dense scan restricted to units
//!   whose state could change, so round-robin pointers advance identically;
//! * a *calendar heap* of `(cycle, host)` pairs pops injections in the
//!   same (cycle, host-ascending) order the dense per-cycle host scan
//!   produces, at O(log hosts) per injection instead of O(hosts) per cycle;
//! * when no event, injection or active unit exists the clock jumps
//!   straight to the next injection — safe because a live packet always
//!   keeps at least one set or wheel slot nonempty, and an idle network
//!   has zero stall by definition.
//!
//! Telemetry hooks (`dsn-telemetry`) live exclusively in the shared
//! mutation helpers of `engine.rs`, never in this scheduling loop: both
//! cores fire the same hook calls at the same cycles, so the exported
//! telemetry — like `RunStats` — is bit-identical between them
//! (`tests/telemetry_equivalence.rs`). Intra-cycle hook order may differ
//! (e.g. wheel-slot vs channel-scan order for link arrivals), which is
//! harmless because every telemetry accumulator is commutative within a
//! cycle and at most one flit per (channel, VC) moves per cycle.

use crate::engine::{alloc_is_eject, AllocOutcome, Flit, Simulator, ALLOC_NONE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One wheel slot, split by event kind so each per-cycle phase drains only
/// its own events — credits land before link arrivals before route
/// expiries (the dense phase order) without dispatching over a mixed list
/// three times. Within a kind, push order is preserved, which is all the
/// phase passes ever relied on.
#[derive(Debug, Default)]
struct Slot {
    /// Credits arriving back at output VC `(ch, vc)`.
    credits: Vec<(u32, u8)>,
    /// Flits arriving at the downstream input of `ch` on `vc`.
    links: Vec<(u32, u8, Flit)>,
    /// Input VCs whose header delay expired: eligible for allocation.
    routes: Vec<u32>,
}

impl Slot {
    fn len(&self) -> usize {
        self.credits.len() + self.links.len() + self.routes.len()
    }

    fn clear(&mut self) {
        self.credits.clear();
        self.links.clear();
        self.routes.clear();
    }

    fn is_empty(&self) -> bool {
        self.credits.is_empty() && self.links.is_empty() && self.routes.is_empty()
    }
}

/// Timing wheel: a power-of-two ring of slots indexed by `cycle & mask`.
/// All scheduled delays are bounded by the wheel size, so no event ever
/// wraps onto a pending slot.
#[derive(Debug)]
struct Wheel {
    slots: Vec<Slot>,
    mask: u64,
    /// Total events currently scheduled (for the idle-skip check).
    pending: usize,
    /// Recycled slots (avoids reallocating the vectors every cycle).
    pool: Vec<Slot>,
}

impl Wheel {
    fn new(max_delay: u64) -> Self {
        let size = (max_delay + 1).next_power_of_two().max(2);
        Wheel {
            slots: (0..size).map(|_| Slot::default()).collect(),
            mask: size - 1,
            pending: 0,
            pool: Vec::new(),
        }
    }

    #[inline]
    fn slot_mut(&mut self, t: u64) -> &mut Slot {
        self.pending += 1;
        &mut self.slots[(t & self.mask) as usize]
    }

    /// Take all events due at `now` (the slot is emptied; recycle it back
    /// with [`Self::recycle`]).
    fn take_slot(&mut self, now: u64) -> Slot {
        let fresh = self.pool.pop().unwrap_or_default();
        let slot = std::mem::replace(&mut self.slots[(now & self.mask) as usize], fresh);
        self.pending -= slot.len();
        slot
    }

    fn recycle(&mut self, mut s: Slot) {
        s.clear();
        self.pool.push(s);
    }

    /// Earliest cycle `>= now` holding a scheduled event (`None` when the
    /// wheel is empty). Every pending event lies within one wheel
    /// revolution of `now`, so a single pass over the slots suffices.
    fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        (now..=now + self.mask).find(|&t| !self.slots[(t & self.mask) as usize].is_empty())
    }
}

/// A set of active unit indices iterated in sorted order once per phase.
/// Stored as a bitmap over the (small, fixed) unit domain: membership ops
/// are single-word bit twiddles, the live count keeps the emptiness check
/// O(1) for the idle skip, and a snapshot walks the words with
/// `trailing_zeros`, yielding ascending order for free — no per-cycle
/// sort/dedup pass.
#[derive(Debug)]
struct ActiveSet {
    words: Vec<u64>,
    live: usize,
}

impl ActiveSet {
    fn new(domain: usize) -> Self {
        ActiveSet {
            words: vec![0; domain.div_ceil(64)],
            live: 0,
        }
    }

    #[inline]
    fn insert(&mut self, id: u32) {
        let (w, bit) = ((id >> 6) as usize, 1u64 << (id & 63));
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.live += 1;
        }
    }

    #[inline]
    fn remove(&mut self, id: u32) {
        let (w, bit) = ((id >> 6) as usize, 1u64 << (id & 63));
        if self.words[w] & bit != 0 {
            self.words[w] &= !bit;
            self.live -= 1;
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Copy the live members, sorted ascending, into `out` (cleared first).
    fn snapshot_sorted(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.live == 0 {
            return;
        }
        for (wi, &word) in self.words.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                out.push(((wi as u32) << 6) | m.trailing_zeros());
                m &= m - 1;
            }
        }
    }
}

/// Event-engine state hanging off the simulator (`Simulator::ev`). The
/// shared mutation helpers in `engine.rs` feed the wheel and the route
/// events; the step loop below maintains the three active sets.
#[derive(Debug)]
pub(crate) struct EventState {
    wheel: Wheel,
    /// Input VCs whose head packet is armed, expired and unallocated.
    alloc_pending: ActiveSet,
    /// Channels with at least one owned output VC.
    out_active: ActiveSet,
    /// Input VCs holding an ejection grant.
    eject_active: ActiveSet,
    /// `(next_injection_cycle, host)` calendar, min-ordered.
    inj_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Scratch for per-phase snapshots.
    scratch: Vec<u32>,
    /// Bitmap (same word layout as `alloc_pending`) of input VCs whose
    /// route expiry landed *this cycle*: they get their first allocation
    /// attempt unconditionally under the wake-up skip. Cleared after each
    /// allocation phase.
    fresh: Vec<u64>,
    /// Allocation wake-up skip enabled: a pending head that is neither
    /// fresh nor at a switch marked dirty (`Simulator::node_dirty`) is
    /// guaranteed to block again, so the phase never attempts it. Sound
    /// only when blocked attempts are pure no-ops: disabled under fault
    /// plans (instant credit refunds, mask changes and routing rebuilds
    /// alter candidate sets without credit transitions) and under
    /// telemetry (a skipped attempt would owe its `on_alloc_blocked`
    /// hook).
    wake_skip: bool,
    /// VC stride for encoding `(input, vc)` pairs as a single index.
    nvc: u32,
}

impl EventState {
    #[inline]
    fn iv(&self, i: usize, v: usize) -> u32 {
        i as u32 * self.nvc + v as u32
    }

    #[inline]
    fn iv_decode(&self, iv: u32) -> (usize, usize) {
        ((iv / self.nvc) as usize, (iv % self.nvc) as usize)
    }

    pub(crate) fn schedule_route(&mut self, t: u64, i: usize, v: usize) {
        let iv = self.iv(i, v);
        self.wheel.slot_mut(t).routes.push(iv);
    }

    pub(crate) fn schedule_link(&mut self, t: u64, ch: usize, flit: Flit, vc: u8) {
        self.wheel.slot_mut(t).links.push((ch as u32, vc, flit));
    }

    pub(crate) fn schedule_credit(&mut self, t: u64, ch: usize, vc: u8) {
        self.wheel.slot_mut(t).credits.push((ch as u32, vc));
    }

    pub(crate) fn schedule_injection(&mut self, t: u64, host: usize) {
        self.inj_heap.push(Reverse((t, host as u32)));
    }

    /// Earliest scheduled injection cycle, if any (sharded driver's global
    /// idle fast-forward).
    pub(crate) fn next_injection_cycle(&self) -> Option<u64> {
        self.inj_heap.peek().map(|&Reverse((t, _))| t)
    }

    /// Conservative lower bound on the next cycle this shard can schedule
    /// or consume an event absent cross-shard arrivals: `now` while any
    /// unit is active, otherwise the earlier of the wheel's next event and
    /// the next scheduled injection (`u64::MAX` when the shard is silent
    /// for good). The sharded driver's horizon-proven window extension
    /// rests on no shard acting — in particular, emitting a cut-crossing
    /// flit or credit — before this cycle.
    pub(crate) fn activity_horizon(&self, now: u64) -> u64 {
        if !self.alloc_pending.is_empty()
            || !self.out_active.is_empty()
            || !self.eject_active.is_empty()
        {
            return now;
        }
        self.wheel
            .next_event_cycle(now)
            .unwrap_or(u64::MAX)
            .min(self.next_injection_cycle().unwrap_or(u64::MAX))
    }

    /// Pre-reserve the wheel for a saturated steady state: every delay is
    /// fixed per event kind, so each slot vector holds events from exactly
    /// one source cycle and hard per-cycle bounds cap it for good — one
    /// link flit per channel, one credit per channel or ejection port, one
    /// route expiry per input VC. Called once at the warmup→measure
    /// boundary (`Simulator::presize_steady_state`).
    pub(crate) fn presize_steady_state(
        &mut self,
        channels: usize,
        iv_domain: usize,
        eject_ports: usize,
    ) {
        fn reserve_to<T>(v: &mut Vec<T>, want: usize) {
            if v.capacity() < want {
                v.reserve(want - v.len());
            }
        }
        let pool_want = self.wheel.slots.len();
        if self.wheel.pool.capacity() < pool_want {
            self.wheel.pool.reserve(pool_want - self.wheel.pool.len());
        }
        for slot in self
            .wheel
            .slots
            .iter_mut()
            .chain(self.wheel.pool.iter_mut())
        {
            reserve_to(&mut slot.credits, channels + eject_ports);
            reserve_to(&mut slot.links, channels);
            reserve_to(&mut slot.routes, iv_domain);
        }
    }

    /// Packets with a flit currently in flight on channel `ch`, appended to
    /// `out` (cleared first; the caller owns the reusable buffer). Scans
    /// the whole wheel; fault-path only, so the cost is fine.
    pub(crate) fn wire_packets_on(&self, ch: usize, out: &mut Vec<u32>) {
        out.clear();
        for slot in &self.wheel.slots {
            for &(c, _, flit) in &slot.links {
                if c as usize == ch {
                    out.push(flit.packet);
                }
            }
        }
    }

    /// Remove every in-flight link event carrying a flit of `pkt`, writing
    /// the `(channel, vc)` of each removed flit into `out` (cleared first)
    /// so the caller can refund its credit. Fault-path only.
    pub(crate) fn purge_link_flits(&mut self, pkt: u32, out: &mut Vec<(usize, u8)>) {
        out.clear();
        for slot in &mut self.wheel.slots {
            let before = slot.links.len();
            slot.links.retain(|&(ch, vc, flit)| {
                if flit.packet == pkt {
                    out.push((ch as usize, vc));
                    false
                } else {
                    true
                }
            });
            self.wheel.pending -= before - slot.links.len();
        }
    }
}

/// Install the event state on a freshly constructed simulator (no flits in
/// flight yet): empty wheel and sets, plus the injection calendar.
pub(crate) fn prepare(sim: &mut Simulator) {
    debug_assert!(sim.ev.is_none() && sim.now == 0);
    let nvc = sim.nvc as u32;
    let iv_domain = sim.n_inputs * nvc as usize;
    // Largest delay ever pushed: a revealed head arms at `now + 1` and
    // expires `max(header_delay, 1)` later.
    let max_delay = sim
        .cfg
        .link_delay
        .max(sim.cfg.credit_delay)
        .max(sim.cfg.header_delay + 1)
        .max(2);
    let mut ev = Box::new(EventState {
        wheel: Wheel::new(max_delay),
        alloc_pending: ActiveSet::new(iv_domain),
        out_active: ActiveSet::new(sim.links.len()),
        eject_active: ActiveSet::new(iv_domain),
        inj_heap: BinaryHeap::with_capacity(sim.hosts()),
        scratch: Vec::with_capacity(iv_domain),
        fresh: vec![0; iv_domain.div_ceil(64)],
        wake_skip: sim.fault.is_none() && !sim.telemetry.enabled(),
        nvc,
    });
    for h in 0..sim.hosts() {
        // A shard only injects from the hosts it owns; the other hosts'
        // RNG streams exist (identical seeding) but are never drawn from.
        if let Some(sc) = &sim.shard {
            if !sc.local_host[h] {
                continue;
            }
        }
        let t = sim.source_next_cycle(h);
        if t != crate::inject::NEVER {
            ev.inj_heap.push(Reverse((t, h as u32)));
        }
    }
    sim.ev = Some(ev);
}

/// Advance the event engine by one cycle (possibly skipping idle cycles at
/// the end). Mirrors the dense phase order exactly: credits, link arrivals,
/// injection, allocation, traversal, ejection, watchdog.
pub(crate) fn step(sim: &mut Simulator, total: u64) {
    let now = sim.now;
    let mut stamp = sim.phase_stamp();

    // Phase 0: faults due at or before this cycle (the idle skip may have
    // jumped over fault cycles — safe, because it only fires on an empty
    // network and the routing rebuild is a pure function of the final mask).
    sim.process_faults(now);

    // Phases 1+2 (+ route expiries): drain this cycle's wheel slot in
    // three batched passes so credits land before arrivals, before
    // eligibility — the dense phase order. At most one credit and one
    // arrival exist per (channel, VC) per cycle, so ordering within a
    // pass is immaterial. The credit/link loops live in `engine.rs`
    // ([`Simulator::drain_credits`] / [`Simulator::drain_links`]) so the
    // per-event helpers inline against hoisted field loads.
    let slot = sim.ev.as_mut().expect("event state").wheel.take_slot(now);
    sim.drain_credits(&slot.credits);
    sim.drain_links(&slot.links, now);
    for &iv in &slot.routes {
        // The wheel's iv ids index the simulator's SoA arrays directly
        // (same `input * nvc + vc` stride).
        let unit = iv as usize;
        // Without faults a route expiry always finds the armed head
        // still waiting: allocation cannot have happened before the
        // timer ran out, and re-arming implies the previous packet
        // already left. A fault purge can orphan an expiry; a stale
        // event can never collide with a fresh arm's ready cycle
        // (old ready = T + hd with T < now < now + hd = new ready),
        // so `ivc.ready == now` is a precise validity test.
        let valid = sim.ivc[unit].ready == now
            && sim.ivc[unit].alloc == ALLOC_NONE
            && sim.buf_front(unit).is_some_and(|f| f.seq == 0);
        debug_assert!(
            valid || sim.fault.is_some(),
            "stale route expiry without faults"
        );
        if valid {
            let es = sim.ev.as_mut().expect("event state");
            es.alloc_pending.insert(iv);
            // First attempt is unconditional under the wake-up skip.
            es.fresh[(iv >> 6) as usize] |= 1u64 << (iv & 63);
        }
    }
    sim.ev.as_mut().expect("event state").wheel.recycle(slot);
    sim.phase_mark(&mut stamp, crate::timing::Phase::Wheel);

    // Phase 3: injection — pop the calendar in (cycle, host) order, which
    // matches the dense ascending-host scan for this cycle.
    if now == 0 && !sim.pending_batch.is_empty() {
        let batch = std::mem::take(&mut sim.pending_batch);
        for (src, dest) in batch {
            sim.enqueue_packet(now, src, dest);
        }
    }
    sim.drain_staged_ready(now);
    sim.inject_retries(now);
    loop {
        let host = {
            let es = sim.ev.as_mut().expect("event state");
            match es.inj_heap.peek() {
                Some(&Reverse((t, h))) if t == now => {
                    es.inj_heap.pop();
                    h as usize
                }
                _ => break,
            }
        };
        // fire_host re-schedules the host's next injection via self.ev.
        sim.fire_host(host, now);
    }
    sim.phase_mark(&mut stamp, crate::timing::Phase::Inject);

    // Phase 4: allocation over the eligible input VCs in (input, vc)
    // order — the dense scan order restricted to eligible units.
    if sim.ev.as_ref().expect("event state").wake_skip {
        step_alloc_wake_skip(sim, now);
    } else {
        step_alloc_full(sim, now);
    }
    sim.phase_mark(&mut stamp, crate::timing::Phase::Route);

    // Phase 5a: switch allocation + sends over channels with owners, in
    // channel order (ownerless channels are no-ops in the dense scan).
    let mut scratch = {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = std::mem::take(&mut es.scratch);
        es.out_active.snapshot_sorted(&mut s);
        s
    };
    for &ch in &scratch {
        sim.grant_channel(ch as usize, now);
        // Deactivate whenever no owner remains — not only after a tail
        // send, since a fault drop can strip ownership mid-stream.
        if sim.chv[sim.ch_slot[ch as usize] as usize].owned == 0 {
            sim.ev.as_mut().expect("event state").out_active.remove(ch);
        }
    }
    sim.phase_mark(&mut stamp, crate::timing::Phase::Arbitrate);

    // Phase 5b: ejection over VCs holding an eject grant, in (input, vc)
    // order — matching the dense whole-input scan restricted to grants.
    {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = scratch;
        es.eject_active.snapshot_sorted(&mut s);
        scratch = s;
    }
    for &iv in &scratch {
        let (i, v) = sim.ev.as_ref().expect("event state").iv_decode(iv);
        // A fault drop may have stripped the grant since the snapshot.
        if !alloc_is_eject(sim.ivc[iv as usize].alloc) {
            sim.ev
                .as_mut()
                .expect("event state")
                .eject_active
                .remove(iv);
            continue;
        }
        if sim.try_eject_vc(i, v, now) {
            sim.ev
                .as_mut()
                .expect("event state")
                .eject_active
                .remove(iv);
        }
    }
    sim.ev.as_mut().expect("event state").scratch = scratch;

    sim.clear_used();
    sim.watchdog(now);
    sim.phase_mark(&mut stamp, crate::timing::Phase::Eject);
    if let Some(t) = &mut sim.phase_timers {
        t.cycles += 1;
    }
    sim.now = now + 1;

    // Idle skip: with no scheduled events and no active unit, nothing can
    // happen before the next injection (the bound `total` is the caller's
    // stepping target, so the jump never overshoots it). A live packet always keeps a set
    // or wheel slot nonempty (its flits are buffered → allocated/armed/
    // pending, or on a link → wheel), so skipping implies zero packets in
    // flight and the stall watchdog is vacuously idle across the gap.
    let es = sim.ev.as_ref().expect("event state");
    if es.wheel.pending == 0
        && es.alloc_pending.is_empty()
        && es.out_active.is_empty()
        && es.eject_active.is_empty()
        && sim.staged_ready.is_empty()
        // A just-completed closed batch empties everything above; without
        // this guard the skip would fast-forward `now` to the horizon
        // before the caller's batch_done() check, making the telemetry
        // `final_cycle` diverge from the dense engine's.
        && !sim.batch_done()
    {
        debug_assert_eq!(sim.packets.live(), 0);
        debug_assert_eq!(sim.current_stall, 0);
        let next_inj = es.inj_heap.peek().map_or(u64::MAX, |&Reverse((t, _))| t);
        let next_retry = sim
            .fault
            .as_ref()
            .and_then(|f| f.next_retry_cycle())
            .unwrap_or(u64::MAX);
        sim.now = sim.now.max(next_inj.min(next_retry).min(total));
    }
}

/// Phase 4, reference form: attempt every pending head. Used under fault
/// plans and telemetry, where the wake-up filter is unsound (see
/// [`EventState::wake_skip`]).
fn step_alloc_full(sim: &mut Simulator, now: u64) {
    let scratch = {
        let es = sim.ev.as_mut().expect("event state");
        let mut s = std::mem::take(&mut es.scratch);
        es.alloc_pending.snapshot_sorted(&mut s);
        s
    };
    for &iv in &scratch {
        let (i, v) = sim.ev.as_ref().expect("event state").iv_decode(iv);
        // Re-check eligibility fresh: an earlier iteration's unroutable
        // drop may have purged this entry's head or re-armed it.
        let slot = iv as usize;
        let eligible = sim.ivc[slot].alloc == ALLOC_NONE
            && sim.ivc[slot].ready <= now
            && sim.buf_front(slot).is_some_and(|f| f.seq == 0);
        if !eligible {
            debug_assert!(sim.fault.is_some(), "stale alloc entry without faults");
            sim.ev
                .as_mut()
                .expect("event state")
                .alloc_pending
                .remove(iv);
            continue;
        }
        match sim.try_allocate_vc(i, v, now) {
            AllocOutcome::Blocked => {}
            AllocOutcome::Eject => {
                let es = sim.ev.as_mut().expect("event state");
                es.alloc_pending.remove(iv);
                es.eject_active.insert(iv);
            }
            AllocOutcome::Net(ch) => {
                let es = sim.ev.as_mut().expect("event state");
                es.alloc_pending.remove(iv);
                es.out_active.insert(ch as u32);
            }
            AllocOutcome::Unroutable => {
                sim.unroutable_drop(i, v, now);
                sim.ev
                    .as_mut()
                    .expect("event state")
                    .alloc_pending
                    .remove(iv);
            }
        }
    }
    sim.ev.as_mut().expect("event state").scratch = scratch;
}

/// Phase 4 under the wake-up skip (fault-free, telemetry off): a blocked
/// allocation attempt is a pure no-op — it records nothing and mutates
/// nothing, and a blocked head's candidate set is fixed while it sits at
/// one switch (routing is pure in `(cur, dest, RouteState)`, and
/// `RouteState` only changes on a hop). The only transitions that can turn
/// an attempt from Blocked into a grant are an output VC becoming
/// grantable at the head's switch — a free VC's credit count crossing the
/// allocation threshold ([`Simulator::apply_credit`]) or an owner
/// releasing with enough credits banked ([`Simulator::grant_channel`]) —
/// both of which mark [`Simulator::node_dirty`]. So the walk attempts only
/// heads that are fresh (first attempt this cycle) or at a dirty switch;
/// every skipped head would have re-blocked without side effects, and the
/// attempted subset runs in the same ascending-iv order the full walk
/// would visit it in, so results are bit-identical (the dense core and
/// `tests/sim_equivalence.rs` enforce this).
fn step_alloc_wake_skip(sim: &mut Simulator, now: u64) {
    let nvc = sim.nvc;
    let nwords = {
        let es = sim.ev.as_ref().expect("event state");
        es.alloc_pending.words.len()
    };
    for wi in 0..nwords {
        let (mut m, fresh) = {
            let es = sim.ev.as_ref().expect("event state");
            (es.alloc_pending.words[wi], es.fresh[wi])
        };
        while m != 0 {
            let bit = m & m.wrapping_neg();
            let iv = ((wi as u32) << 6) | m.trailing_zeros();
            m &= m - 1;
            if fresh & bit == 0 {
                let node = sim.iv_node[iv as usize] as usize;
                if sim.node_dirty[node >> 6] & (1u64 << (node & 63)) == 0 {
                    continue;
                }
            }
            let unit = iv as usize;
            debug_assert!(
                sim.ivc[unit].alloc == ALLOC_NONE
                    && sim.ivc[unit].ready <= now
                    && sim.buf_front(unit).is_some_and(|f| f.seq == 0),
                "stale alloc entry without faults"
            );
            match sim.try_allocate_vc(unit / nvc, unit % nvc, now) {
                AllocOutcome::Blocked => {}
                AllocOutcome::Eject => {
                    let es = sim.ev.as_mut().expect("event state");
                    es.alloc_pending.remove(iv);
                    es.eject_active.insert(iv);
                }
                AllocOutcome::Net(ch) => {
                    let es = sim.ev.as_mut().expect("event state");
                    es.alloc_pending.remove(iv);
                    es.out_active.insert(ch as u32);
                }
                AllocOutcome::Unroutable => unreachable!("unroutable without faults"),
            }
        }
    }
    // Consume the wake signals: every surviving pending head re-blocks
    // until the next grantable transition marks its switch again.
    sim.ev.as_mut().expect("event state").fresh.fill(0);
    sim.node_dirty.fill(0);
}
