//! Measurement collection: packet latency and accepted throughput over the
//! measurement window, reported in both cycles and the paper's units
//! (nanoseconds, Gbit/s/host).

use crate::config::SimConfig;
use std::collections::HashMap;

/// Number of log2 flow-size classes the FCT aggregates are sliced into.
pub(crate) const FLOW_CLASSES: usize = 8;

/// Log2 flow-size class of a `total`-packet flow: class 0 holds 1-packet
/// flows, class 1 holds 2–3, class 2 holds 4–7, …, class 7 holds >= 128.
pub(crate) fn flow_class(total: u32) -> usize {
    (31 - total.max(1).leading_zeros()).min(FLOW_CLASSES as u32 - 1) as usize
}

/// Collects events during a run.
#[derive(Debug, Clone)]
pub struct StatsCollector {
    window_start: u64,
    window_end: u64,
    offered_packets_window: u64,
    accepted_flits_window: u64,
    measured_created: u64,
    measured_delivered: u64,
    latency_sum_cycles: u64,
    latency_max_cycles: u64,
    latency_min_cycles: u64,
    /// Latency histogram in 16-cycle bins (for percentile estimation).
    latency_hist: Vec<u64>,
    delivered_total: u64,
    /// First cycle of the fault plan (None = fault-free run); measured
    /// packets created at or after it feed the post-fault aggregates.
    post_fault_from: Option<u64>,
    pf_delivered: u64,
    pf_latency_sum: u64,
    pf_hist: Vec<u64>,
    /// Per-flow delivered-packet counts for flows still in flight. A
    /// flow's packets all deliver at its destination host, so in a sharded
    /// run each flow lives in exactly one shard's table (the merge is a
    /// disjoint union).
    flow_progress: HashMap<u64, u32>,
    flows_started: u64,
    flows_started_all: u64,
    flows_completed: u64,
    flows_completed_all: u64,
    flow_packets_delivered: u64,
    fct_sum_cycles: u64,
    fct_max_cycles: u64,
    /// FCT histogram in 16-cycle bins, measured flows only.
    fct_hist: Vec<u64>,
    class_flows: [u64; FLOW_CLASSES],
    class_fct_sum: [u64; FLOW_CLASSES],
    class_hist: [Vec<u64>; FLOW_CLASSES],
}

const BIN: u64 = 16;

impl StatsCollector {
    /// New collector with the config's measurement window.
    pub fn new(cfg: &SimConfig) -> Self {
        // Latency cannot exceed the run length, so pre-sizing the
        // histograms to `total_cycles / BIN` makes every `on_delivered`
        // call allocation-free (the zero-alloc steady-state invariant).
        let hist_cap = (cfg.total_cycles() / BIN) as usize + 2;
        StatsCollector {
            window_start: cfg.warmup_cycles,
            window_end: cfg.warmup_cycles + cfg.measure_cycles,
            offered_packets_window: 0,
            accepted_flits_window: 0,
            measured_created: 0,
            measured_delivered: 0,
            latency_sum_cycles: 0,
            latency_max_cycles: 0,
            latency_min_cycles: u64::MAX,
            latency_hist: Vec::with_capacity(hist_cap),
            delivered_total: 0,
            post_fault_from: cfg.fault_plan.first_fault_cycle(),
            pf_delivered: 0,
            pf_latency_sum: 0,
            pf_hist: Vec::with_capacity(hist_cap),
            flow_progress: HashMap::new(),
            flows_started: 0,
            flows_started_all: 0,
            flows_completed: 0,
            flows_completed_all: 0,
            flow_packets_delivered: 0,
            fct_sum_cycles: 0,
            fct_max_cycles: 0,
            fct_hist: Vec::new(),
            class_flows: [0; FLOW_CLASSES],
            class_fct_sum: [0; FLOW_CLASSES],
            class_hist: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// A flow emitted its first packet. `measured` means the flow *start*
    /// fell inside the measurement window; the whole flow is measured or
    /// not — a flow is never split across the window edge.
    pub(crate) fn on_flow_started(&mut self, measured: bool) {
        self.flows_started_all += 1;
        if measured {
            self.flows_started += 1;
        }
    }

    /// A packet of flow `id` (of `total` packets, started at `start`) was
    /// delivered at `now`. Returns `Some(fct)` exactly when this delivery
    /// completed the flow *and* the flow is measured — the caller uses
    /// that to gate the telemetry hook, keeping telemetry and stats in
    /// lockstep across engines.
    pub(crate) fn on_flow_packet(
        &mut self,
        id: u64,
        total: u32,
        start: u64,
        now: u64,
        measured: bool,
    ) -> Option<u64> {
        self.flow_packets_delivered += 1;
        let done = {
            let got = self.flow_progress.entry(id).or_insert(0);
            *got += 1;
            *got >= total
        };
        if !done {
            return None;
        }
        self.flow_progress.remove(&id);
        self.flows_completed_all += 1;
        if !measured {
            return None;
        }
        self.flows_completed += 1;
        let fct = now - start;
        self.fct_sum_cycles += fct;
        self.fct_max_cycles = self.fct_max_cycles.max(fct);
        let bin = (fct / BIN) as usize;
        bump(&mut self.fct_hist, bin);
        let c = flow_class(total);
        self.class_flows[c] += 1;
        self.class_fct_sum[c] += fct;
        bump(&mut self.class_hist[c], bin);
        Some(fct)
    }

    /// A packet was offered (generated) at `now`.
    pub fn on_offered(&mut self, now: u64, _flits: usize) {
        if now >= self.window_start && now < self.window_end {
            self.offered_packets_window += 1;
            self.measured_created += 1;
        }
    }

    /// A packet's tail flit was delivered at `now`.
    pub fn on_delivered(&mut self, now: u64, created: u64, measured: bool, flits: usize) {
        self.delivered_total += 1;
        if now >= self.window_start && now < self.window_end {
            self.accepted_flits_window += flits as u64;
        }
        if measured {
            self.measured_delivered += 1;
            let lat = now - created;
            self.latency_sum_cycles += lat;
            self.latency_max_cycles = self.latency_max_cycles.max(lat);
            self.latency_min_cycles = self.latency_min_cycles.min(lat);
            let bin = (lat / BIN) as usize;
            if self.latency_hist.len() <= bin {
                self.latency_hist.resize(bin + 1, 0);
            }
            self.latency_hist[bin] += 1;
            if self.post_fault_from.is_some_and(|f| created >= f) {
                self.pf_delivered += 1;
                self.pf_latency_sum += lat;
                if self.pf_hist.len() <= bin {
                    self.pf_hist.resize(bin + 1, 0);
                }
                self.pf_hist[bin] += 1;
            }
        }
    }

    /// Fold another collector (from a shard running the same config) into
    /// this one. Every field is an integer count, sum, extremum or
    /// histogram, so the merge is exact and order-independent — the float
    /// math all happens once, in [`Self::finish`]. This is what makes the
    /// sharded engine's `RunStats` bit-identical to the single-thread run.
    pub(crate) fn merge(&mut self, other: StatsCollector) {
        debug_assert_eq!(self.window_start, other.window_start);
        debug_assert_eq!(self.window_end, other.window_end);
        debug_assert_eq!(self.post_fault_from, other.post_fault_from);
        self.offered_packets_window += other.offered_packets_window;
        self.accepted_flits_window += other.accepted_flits_window;
        self.measured_created += other.measured_created;
        self.measured_delivered += other.measured_delivered;
        self.latency_sum_cycles += other.latency_sum_cycles;
        self.latency_max_cycles = self.latency_max_cycles.max(other.latency_max_cycles);
        self.latency_min_cycles = self.latency_min_cycles.min(other.latency_min_cycles);
        merge_hist(&mut self.latency_hist, &other.latency_hist);
        self.delivered_total += other.delivered_total;
        self.pf_delivered += other.pf_delivered;
        self.pf_latency_sum += other.pf_latency_sum;
        merge_hist(&mut self.pf_hist, &other.pf_hist);
        for (id, got) in other.flow_progress {
            // Shards partition flows by destination host, so in-flight
            // entries never collide; summing keeps the merge exact even
            // if a caller ever splits a single flow's stream.
            *self.flow_progress.entry(id).or_insert(0) += got;
        }
        self.flows_started += other.flows_started;
        self.flows_started_all += other.flows_started_all;
        self.flows_completed += other.flows_completed;
        self.flows_completed_all += other.flows_completed_all;
        self.flow_packets_delivered += other.flow_packets_delivered;
        self.fct_sum_cycles += other.fct_sum_cycles;
        self.fct_max_cycles = self.fct_max_cycles.max(other.fct_max_cycles);
        merge_hist(&mut self.fct_hist, &other.fct_hist);
        for c in 0..FLOW_CLASSES {
            self.class_flows[c] += other.class_flows[c];
            self.class_fct_sum[c] += other.class_fct_sum[c];
            merge_hist(&mut self.class_hist[c], &other.class_hist[c]);
        }
    }

    /// Finalize into a [`RunStats`].
    pub fn finish(self, cfg: &SimConfig, hosts: usize, total_packets: usize) -> RunStats {
        let window = (self.window_end - self.window_start) as f64;
        let avg_latency_cycles = if self.measured_delivered > 0 {
            self.latency_sum_cycles as f64 / self.measured_delivered as f64
        } else {
            0.0
        };
        let accepted_fpc = self.accepted_flits_window as f64 / window / hosts as f64;
        let offered_fpc =
            self.offered_packets_window as f64 * cfg.packet_flits as f64 / window / hosts as f64;
        let p99 = percentile(&self.latency_hist, self.measured_delivered, 0.99);
        let pf_avg = if self.pf_delivered > 0 {
            self.pf_latency_sum as f64 / self.pf_delivered as f64
        } else {
            0.0
        };
        let pf_p99 = percentile(&self.pf_hist, self.pf_delivered, 0.99);
        let fct_avg = if self.flows_completed > 0 {
            self.fct_sum_cycles as f64 / self.flows_completed as f64
        } else {
            0.0
        };
        let fct_classes = (0..FLOW_CLASSES)
            .filter(|&c| self.class_flows[c] > 0)
            .map(|c| FlowClassStats {
                min_packets: 1u32 << c,
                flows: self.class_flows[c],
                fct_avg_cycles: self.class_fct_sum[c] as f64 / self.class_flows[c] as f64,
                fct_p99_cycles: percentile(&self.class_hist[c], self.class_flows[c], 0.99),
            })
            .collect();
        RunStats {
            delivered_packets: self.measured_delivered,
            created_packets: self.measured_created,
            total_packets_all_time: total_packets as u64,
            avg_latency_cycles,
            avg_latency_ns: avg_latency_cycles * cfg.cycle_ns,
            p99_latency_cycles: p99,
            max_latency_cycles: if self.measured_delivered > 0 {
                self.latency_max_cycles
            } else {
                0
            },
            min_latency_cycles: if self.measured_delivered > 0 {
                self.latency_min_cycles
            } else {
                0
            },
            accepted_flits_per_cycle_per_host: accepted_fpc,
            offered_flits_per_cycle_per_host: offered_fpc,
            accepted_gbps_per_host: accepted_fpc * cfg.flit_bits as f64 / cfg.cycle_ns,
            offered_gbps_per_host: offered_fpc * cfg.flit_bits as f64 / cfg.cycle_ns,
            mean_channel_utilization: 0.0,
            max_channel_utilization: 0.0,
            peak_in_flight_packets: 0,
            peak_buffered_flits: 0,
            longest_stall_cycles: 0,
            deadlock_suspected: false,
            completion_cycle: None,
            dropped_packets: 0,
            dropped_packets_all_time: 0,
            salvaged_packets: 0,
            retried_packets: 0,
            abandoned_packets: 0,
            post_fault_delivered: self.pf_delivered,
            post_fault_avg_latency_cycles: pf_avg,
            post_fault_p99_latency_cycles: pf_p99,
            flows_started: self.flows_started,
            flows_completed: self.flows_completed,
            flows_started_all_time: self.flows_started_all,
            flows_completed_all_time: self.flows_completed_all,
            flow_packets_delivered: self.flow_packets_delivered,
            fct_avg_cycles: fct_avg,
            fct_p50_cycles: percentile(&self.fct_hist, self.flows_completed, 0.50),
            fct_p99_cycles: percentile(&self.fct_hist, self.flows_completed, 0.99),
            fct_p999_cycles: percentile(&self.fct_hist, self.flows_completed, 0.999),
            fct_max_cycles: self.fct_max_cycles,
            fct_classes,
        }
    }
}

fn bump(hist: &mut Vec<u64>, bin: usize) {
    if hist.len() <= bin {
        hist.resize(bin + 1, 0);
    }
    hist[bin] += 1;
}

fn merge_hist(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (dst, &src) in into.iter_mut().zip(from) {
        *dst += src;
    }
}

fn percentile(hist: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for (bin, &c) in hist.iter().enumerate() {
        seen += c;
        if seen >= target {
            return (bin as u64 + 1) * BIN;
        }
    }
    hist.len() as u64 * BIN
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Packets created in the measurement window and delivered by run end.
    pub delivered_packets: u64,
    /// Packets created in the measurement window.
    pub created_packets: u64,
    /// Every packet ever created in the run.
    pub total_packets_all_time: u64,
    /// Mean end-to-end latency (cycles) of measured packets.
    pub avg_latency_cycles: f64,
    /// Mean end-to-end latency in nanoseconds — the paper's y-axis.
    pub avg_latency_ns: f64,
    /// Approximate 99th-percentile latency (cycles).
    pub p99_latency_cycles: u64,
    /// Maximum measured latency (cycles).
    pub max_latency_cycles: u64,
    /// Minimum measured latency (cycles).
    pub min_latency_cycles: u64,
    /// Accepted throughput, flits per cycle per host.
    pub accepted_flits_per_cycle_per_host: f64,
    /// Offered load, flits per cycle per host.
    pub offered_flits_per_cycle_per_host: f64,
    /// Accepted throughput in Gbit/s/host — the paper's x-axis.
    pub accepted_gbps_per_host: f64,
    /// Offered load in Gbit/s/host.
    pub offered_gbps_per_host: f64,
    /// Mean per-channel link utilization during the window (flits per
    /// cycle per directed channel; 1.0 = fully busy). Filled by the engine.
    pub mean_channel_utilization: f64,
    /// Utilization of the busiest directed channel (the hotspot).
    pub max_channel_utilization: f64,
    /// Peak number of packets simultaneously in flight (created but not
    /// yet delivered) over the whole run. With the recycling packet slab
    /// this — not the total packet count — bounds the engine's memory, so
    /// arbitrarily long runs stay bounded. Filled by the engine.
    pub peak_in_flight_packets: u64,
    /// Peak number of flits simultaneously resident in input-VC buffers
    /// (injection queues included). Filled by the engine.
    pub peak_buffered_flits: u64,
    /// Longest stretch of cycles with packets in flight but zero flit
    /// movement anywhere in the network. Filled by the engine.
    pub longest_stall_cycles: u64,
    /// True when the stall watchdog fired: undelivered packets plus a
    /// whole-network stall far beyond any legitimate pipeline wait —
    /// the dynamic signature of a routing deadlock.
    pub deadlock_suspected: bool,
    /// For closed (batch) workloads: the cycle of the last delivery, i.e.
    /// the makespan of the batch. `None` when the batch did not finish (or
    /// the workload was open-loop). Under faults, fault-dropped packets
    /// count as resolved (the batch completes when everything is delivered
    /// or definitively dropped and no retry is pending).
    pub completion_cycle: Option<u64>,
    /// Packets dropped by faults whose *creation* fell inside the
    /// measurement window. Filled by the engine.
    pub dropped_packets: u64,
    /// All packets dropped by faults over the whole run.
    pub dropped_packets_all_time: u64,
    /// Head packets rescued from a dying channel by re-arming at their
    /// current switch instead of being dropped ([`crate::SalvagePolicy`]).
    pub salvaged_packets: u64,
    /// Retransmissions injected by source hosts after fault drops.
    pub retried_packets: u64,
    /// Dropped packets whose retry budget was exhausted (lost for good).
    pub abandoned_packets: u64,
    /// Measured packets created at or after the first fault cycle and
    /// delivered — the post-fault population.
    pub post_fault_delivered: u64,
    /// Mean latency (cycles) of the post-fault population (0.0 when none).
    pub post_fault_avg_latency_cycles: f64,
    /// Approximate 99th-percentile latency (cycles) of the post-fault
    /// population.
    pub post_fault_p99_latency_cycles: u64,
    /// Flows whose first packet was emitted inside the measurement window.
    /// Zero for non-flow workloads.
    pub flows_started: u64,
    /// Measured flows whose last packet was delivered before run end.
    pub flows_completed: u64,
    /// Every flow ever started in the run (warmup and drain included).
    pub flows_started_all_time: u64,
    /// Every flow ever completed in the run.
    pub flows_completed_all_time: u64,
    /// Every flow-tagged packet delivered over the whole run — the
    /// accounting oracle: fault-free, at completion this equals the sum of
    /// per-flow packet counts injected.
    pub flow_packets_delivered: u64,
    /// Mean flow-completion time (cycles) over measured completed flows.
    pub fct_avg_cycles: f64,
    /// Approximate median FCT (cycles).
    pub fct_p50_cycles: u64,
    /// Approximate 99th-percentile FCT (cycles).
    pub fct_p99_cycles: u64,
    /// Approximate 99.9th-percentile FCT (cycles).
    pub fct_p999_cycles: u64,
    /// Maximum FCT (cycles) over measured completed flows.
    pub fct_max_cycles: u64,
    /// FCT aggregates sliced by log2 flow-size class (empty classes
    /// omitted; empty for non-flow workloads).
    pub fct_classes: Vec<FlowClassStats>,
}

/// Per flow-size-class FCT aggregates (log2 packet-count buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowClassStats {
    /// Smallest flow size (in packets) belonging to this class:
    /// 1, 2, 4, …, 128 (the last class is open-ended).
    pub min_packets: u32,
    /// Measured completed flows in the class.
    pub flows: u64,
    /// Mean flow-completion time (cycles) within the class.
    pub fct_avg_cycles: f64,
    /// Approximate 99th-percentile FCT (cycles) within the class.
    pub fct_p99_cycles: u64,
}

impl RunStats {
    /// Fraction of measured packets that were delivered before the run
    /// ended; below ~1.0 indicates saturation (or too little drain time).
    pub fn delivery_ratio(&self) -> f64 {
        if self.created_packets == 0 {
            1.0
        } else {
            self.delivered_packets as f64 / self.created_packets as f64
        }
    }

    /// Heuristic saturation flag: a run is saturated when it fails to
    /// deliver most measured packets or accepted lags offered by > 10%.
    pub fn saturated(&self) -> bool {
        self.delivery_ratio() < 0.9
            || (self.offered_flits_per_cycle_per_host > 0.0
                && self.accepted_flits_per_cycle_per_host
                    < 0.9 * self.offered_flits_per_cycle_per_host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::test_small()
    }

    #[test]
    fn latency_accounting() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        let t0 = c.warmup_cycles + 10;
        s.on_offered(t0, c.packet_flits);
        s.on_delivered(t0 + 50, t0, true, c.packet_flits);
        let r = s.finish(&c, 8, 1);
        assert_eq!(r.delivered_packets, 1);
        assert_eq!(r.created_packets, 1);
        assert!((r.avg_latency_cycles - 50.0).abs() < 1e-12);
        assert_eq!(r.max_latency_cycles, 50);
        assert_eq!(r.min_latency_cycles, 50);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_window_packets_not_measured() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        s.on_offered(0, c.packet_flits); // warmup
        s.on_delivered(5, 0, false, c.packet_flits);
        let r = s.finish(&c, 8, 1);
        assert_eq!(r.delivered_packets, 0);
        assert_eq!(r.created_packets, 0);
    }

    #[test]
    fn accepted_counts_window_deliveries() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        // delivered inside window though created during warmup
        s.on_delivered(c.warmup_cycles + 1, 0, false, c.packet_flits);
        let r = s.finish(&c, 1, 1);
        assert!(r.accepted_flits_per_cycle_per_host > 0.0);
    }

    #[test]
    fn saturation_flag() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        for i in 0..100 {
            s.on_offered(c.warmup_cycles + i, c.packet_flits);
        }
        // only half delivered
        for i in 0..50u64 {
            s.on_delivered(
                c.warmup_cycles + i + 30,
                c.warmup_cycles + i,
                true,
                c.packet_flits,
            );
        }
        let r = s.finish(&c, 8, 100);
        assert!(r.saturated());
        assert!((r.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_sane() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        for i in 0..100u64 {
            let t0 = c.warmup_cycles + i;
            s.on_offered(t0, c.packet_flits);
            s.on_delivered(t0 + i, t0, true, c.packet_flits); // latencies 0..99
        }
        let r = s.finish(&c, 8, 100);
        assert!(r.p99_latency_cycles >= 96, "p99 {}", r.p99_latency_cycles);
        assert!((r.avg_latency_cycles - 49.5).abs() < 1e-9);
    }

    #[test]
    fn flow_class_buckets() {
        assert_eq!(flow_class(1), 0);
        assert_eq!(flow_class(2), 1);
        assert_eq!(flow_class(3), 1);
        assert_eq!(flow_class(4), 2);
        assert_eq!(flow_class(7), 2);
        assert_eq!(flow_class(127), 6);
        assert_eq!(flow_class(128), 7);
        assert_eq!(flow_class(u32::MAX), 7);
        assert_eq!(flow_class(0), 0); // degenerate, clamped
    }

    #[test]
    fn flow_completion_accounting() {
        let c = cfg();
        let mut s = StatsCollector::new(&c);
        let t0 = c.warmup_cycles + 1;
        // Flow 7: 3 packets, measured. FCT spans first emit to last delivery.
        s.on_flow_started(true);
        assert_eq!(s.on_flow_packet(7, 3, t0, t0 + 10, true), None);
        assert_eq!(s.on_flow_packet(7, 3, t0, t0 + 14, true), None);
        assert_eq!(s.on_flow_packet(7, 3, t0, t0 + 40, true), Some(40));
        // Flow 8: single packet, unmeasured (warmup) — counted all-time only.
        s.on_flow_started(false);
        assert_eq!(s.on_flow_packet(8, 1, 0, 9, false), None);
        let r = s.finish(&c, 8, 4);
        assert_eq!(r.flows_started, 1);
        assert_eq!(r.flows_completed, 1);
        assert_eq!(r.flows_started_all_time, 2);
        assert_eq!(r.flows_completed_all_time, 2);
        assert_eq!(r.flow_packets_delivered, 4);
        assert!((r.fct_avg_cycles - 40.0).abs() < 1e-12);
        assert_eq!(r.fct_max_cycles, 40);
        assert_eq!(r.fct_classes.len(), 1);
        assert_eq!(r.fct_classes[0].min_packets, 2);
        assert_eq!(r.fct_classes[0].flows, 1);
    }

    #[test]
    fn flow_merge_is_bit_identical_to_whole() {
        // Flows partitioned across shards (by destination) must merge to
        // the same aggregates as a single collector seeing everything.
        let c = cfg();
        let mut whole = StatsCollector::new(&c);
        let mut a = StatsCollector::new(&c);
        let mut b = StatsCollector::new(&c);
        for i in 0..40u64 {
            let start = c.warmup_cycles + i;
            let total = (i % 5 + 1) as u32;
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            let measured = i % 7 != 0;
            whole.on_flow_started(measured);
            part.on_flow_started(measured);
            for k in 0..total as u64 {
                let at = start + 3 * (k + 1) + i;
                whole.on_flow_packet(i, total, start, at, measured);
                part.on_flow_packet(i, total, start, at, measured);
            }
        }
        a.merge(b);
        let merged = a.finish(&c, 8, 120);
        let direct = whole.finish(&c, 8, 120);
        assert_eq!(format!("{merged:?}"), format!("{direct:?}"));
        assert_eq!(
            merged.fct_avg_cycles.to_bits(),
            direct.fct_avg_cycles.to_bits()
        );
        assert_eq!(merged.fct_p99_cycles, direct.fct_p99_cycles);
    }

    #[test]
    fn merge_of_split_streams_is_bit_identical_to_whole() {
        // The sharded engine's contract: feeding a stream of events into
        // one collector, or splitting it across shards and merging, must
        // produce the same RunStats down to the float bit patterns.
        let c = cfg();
        let mut whole = StatsCollector::new(&c);
        let mut a = StatsCollector::new(&c);
        let mut b = StatsCollector::new(&c);
        for i in 0..97u64 {
            let t0 = c.warmup_cycles + i;
            let part = if i % 3 == 0 { &mut a } else { &mut b };
            whole.on_offered(t0, c.packet_flits);
            part.on_offered(t0, c.packet_flits);
            // Uneven latencies spread deliveries over several histogram
            // bins; every third packet is unmeasured (warmup-style).
            let measured = i % 5 != 0;
            whole.on_delivered(t0 + 7 * i, t0, measured, c.packet_flits);
            part.on_delivered(t0 + 7 * i, t0, measured, c.packet_flits);
        }
        // Merge in shard order, as the coordinator does.
        a.merge(b);
        let merged = a.finish(&c, 8, 97);
        let direct = whole.finish(&c, 8, 97);
        assert_eq!(format!("{merged:?}"), format!("{direct:?}"));
        assert_eq!(
            merged.avg_latency_cycles.to_bits(),
            direct.avg_latency_cycles.to_bits()
        );
        assert_eq!(
            merged.accepted_gbps_per_host.to_bits(),
            direct.accepted_gbps_per_host.to_bits()
        );
        assert_eq!(merged.p99_latency_cycles, direct.p99_latency_cycles);
    }
}
