//! Open-loop injection sampling: independent per-host RNG streams with
//! geometric-skip (inverse-CDF) gap sampling.
//!
//! The Figure 10 workload is a Bernoulli process per host: inject with
//! probability *r* each cycle. Drawing one `gen_bool(r)` per host per cycle
//! costs O(hosts) RNG draws per cycle even when almost nothing is injected.
//! The gap between consecutive injections of one host is geometric,
//! `P(gap = k) = r (1 - r)^(k-1)` for `k >= 1`, so sampling the *gap*
//! directly by inverting the geometric CDF — `gap = 1 + floor(ln(1-u) /
//! ln(1-r))` — produces a statistically identical process at O(1) draws per
//! injection.
//!
//! Each host owns its own `SmallRng` stream (seeded by mixing the run seed
//! with the host index), so the traffic a host emits does not depend on how
//! other hosts are iterated. Both simulator engines consume the streams
//! through this type in the same order, which is what makes their traffic —
//! and therefore their [`crate::RunStats`] — bit-identical.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Sentinel for "this host never injects" (rate 0).
pub(crate) const NEVER: u64 = u64::MAX;

/// Per-host injection schedule for an open-loop workload.
#[derive(Debug, Clone)]
pub(crate) struct Injector {
    rate: f64,
    /// Next injection cycle per host; [`NEVER`] when the rate is zero.
    next: Vec<u64>,
    /// One RNG stream per host: destination picks and gap draws.
    rngs: Vec<SmallRng>,
}

impl Injector {
    /// Build for `hosts` endpoints injecting at `rate` packets per cycle
    /// per host (clamped to `[0, 1]`). The first injection cycle of each
    /// host is `gap - 1`, so cycle 0 fires with probability `rate`.
    pub fn new(seed: u64, hosts: usize, rate: f64) -> Self {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut next = Vec::with_capacity(hosts);
        let mut rngs = Vec::with_capacity(hosts);
        for h in 0..hosts {
            let mut rng = SmallRng::seed_from_u64(mix(seed, h as u64));
            next.push(match gap(&mut rng, rate) {
                Some(g) => g - 1,
                None => NEVER,
            });
            rngs.push(rng);
        }
        Injector { rate, next, rngs }
    }

    /// Offered load in packets per cycle per host (clamped to `[0, 1]`).
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The cycle of this host's next injection ([`NEVER`] = no more).
    #[inline]
    pub fn next_cycle(&self, host: usize) -> u64 {
        self.next[host]
    }

    /// The host's RNG stream (for destination picks at injection time).
    #[inline]
    pub fn rng_mut(&mut self, host: usize) -> &mut SmallRng {
        &mut self.rngs[host]
    }

    /// Record that `host` injected at `now` and draw its next gap.
    #[inline]
    pub fn advance(&mut self, host: usize, now: u64) {
        debug_assert_eq!(self.next[host], now);
        self.next[host] = match gap(&mut self.rngs[host], self.rate) {
            Some(g) => now.saturating_add(g),
            None => NEVER,
        };
    }
}

/// SplitMix64 finalizer over the run seed and host index, so per-host
/// streams are decorrelated even for adjacent seeds/hosts. Shared with
/// the flow layer (`crate::flow`), which salts the seed so its streams
/// never collide with the injector's.
pub(crate) fn mix(seed: u64, host: u64) -> u64 {
    let mut z = seed ^ host.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One geometric gap (`>= 1` cycles) at injection probability `rate`;
/// `None` when the rate is zero (never inject). Shared with the flow
/// layer's arrival processes (`crate::flow`).
pub(crate) fn gap(rng: &mut SmallRng, rate: f64) -> Option<u64> {
    if rate <= 0.0 {
        return None;
    }
    if rate >= 1.0 {
        return Some(1);
    }
    let u: f64 = rng.gen_f64(); // [0, 1)
                                // Inverse CDF of Geometric(rate) on {1, 2, ...}. `1 - u > 0`, and the
                                // float->int cast saturates, so extreme draws stay well-defined.
    Some(1 + ((1.0 - u).ln() / (1.0 - rate).ln()).floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_matches_bernoulli_rate() {
        // Mean of Geometric(p) is 1/p; long-run injection frequency must
        // track the Bernoulli rate.
        let mut rng = SmallRng::seed_from_u64(7);
        for &p in &[0.01f64, 0.1, 0.5] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| gap(&mut rng, p).unwrap()).sum();
            let mean = total as f64 / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "p={p}: mean gap {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn gap_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(gap(&mut rng, 0.0), None);
        assert_eq!(gap(&mut rng, 1.0), Some(1));
        assert_eq!(gap(&mut rng, 2.0), Some(1));
        for _ in 0..1000 {
            assert!(gap(&mut rng, 0.3).unwrap() >= 1);
        }
    }

    #[test]
    fn injector_deterministic_and_monotone() {
        let mut a = Injector::new(42, 8, 0.05);
        let mut b = Injector::new(42, 8, 0.05);
        for h in 0..8 {
            assert_eq!(a.next_cycle(h), b.next_cycle(h));
            let mut t = a.next_cycle(h);
            for _ in 0..50 {
                a.advance(h, t);
                b.advance(h, t);
                assert_eq!(a.next_cycle(h), b.next_cycle(h));
                assert!(a.next_cycle(h) > t, "gaps are at least one cycle");
                t = a.next_cycle(h);
            }
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let inj = Injector::new(9, 4, 0.0);
        for h in 0..4 {
            assert_eq!(inj.next_cycle(h), NEVER);
        }
    }

    #[test]
    fn host_streams_differ() {
        let inj = Injector::new(11, 64, 0.1);
        let first: Vec<u64> = (0..64).map(|h| inj.next_cycle(h)).collect();
        // Not all hosts fire on the same cycle (streams decorrelated).
        assert!(first.iter().any(|&t| t != first[0]));
    }

    #[test]
    fn cycle_zero_fires_at_rate() {
        // P(first injection at cycle 0) must equal the rate.
        let inj = Injector::new(1234, 20_000, 0.25);
        let zeros = (0..20_000).filter(|&h| inj.next_cycle(h) == 0).count();
        let frac = zeros as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "cycle-0 fraction {frac}");
    }
}
