//! Simulator configuration, defaulting to the paper's Section VII.A
//! parameters.
//!
//! The paper's setup: virtual cut-through switching; >100 ns per-hop header
//! latency (routing + VC allocation + switch allocation + crossbar); 20 ns
//! flit injection + link delay; 4 virtual channels; 64 switches with 4
//! compute nodes each; 33-flit packets (1 header flit); 256-bit flits;
//! 96 Gbps links. One simulator cycle is one flit serialization time:
//! `256 bit / 96 Gbps ≈ 2.67 ns`.

/// Which scheduling core drives the cycle loop. Both cores implement the
/// same router semantics and are bit-identical in their [`crate::RunStats`]
/// output (enforced by `tests/sim_equivalence.rs`); they differ only in
/// how much work an idle cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Reference implementation: scan every input VC, output channel and
    /// link queue every cycle. O(network size) per cycle regardless of
    /// load; kept as the equivalence oracle for the event core.
    Dense,
    /// Event-driven core: active lists for allocation/arbitration, a
    /// timing wheel for credit returns / link arrivals / header-delay
    /// expiries, and calendar-scheduled geometric-skip injection.
    /// O(work actually happening) per cycle.
    #[default]
    Event,
    /// Sharded parallel driver over the event core: switches are
    /// partitioned across [`SimConfig::workers`] rayon workers, each shard
    /// advancing under a conservative bounded-lag window derived from the
    /// cross-shard link delay, with flit arrivals and credit returns
    /// exchanged through per-shard mailboxes at window boundaries (see
    /// `crate::shard`). Bit-identical to `Event` for any worker count.
    Sharded,
}

impl EngineKind {
    /// Parse a CLI value (`dense` | `event` | `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dense" => Some(EngineKind::Dense),
            "event" => Some(EngineKind::Event),
            "sharded" => Some(EngineKind::Sharded),
            _ => None,
        }
    }

    /// Stable display name (`dense` | `event` | `sharded`).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Dense => "dense",
            EngineKind::Event => "event",
            EngineKind::Sharded => "sharded",
        }
    }
}

/// Whether the engine draws routing candidates from precompiled flat
/// tables ([`crate::routing::FlatRouting`]) or calls the `Arc<dyn
/// SimRouting>` virtual interface on every allocation attempt. Both paths
/// are bit-identical in their [`crate::RunStats`] output (enforced by
/// `tests/flat_equivalence.rs`); schemes that cannot be tabulated
/// (source-routed paths) silently stay on the dynamic path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingTables {
    /// Compile per-`(switch, dest)` candidate rows into one CSR arena at
    /// simulator construction and serve allocation attempts from it.
    #[default]
    Flat,
    /// Call `SimRouting::candidates` / `on_hop` dynamically every time.
    /// Kept as the equivalence oracle for the flat tables.
    Dyn,
    /// Table-free: schemes that can compute their next hop algorithmically
    /// (`SimRouting::algorithmic`) skip table compilation entirely and run
    /// on the dynamic path with O(n) memory; everything else falls back to
    /// `Flat`. `Flat` itself auto-degrades to this above
    /// [`crate::engine::ALGORITHMIC_AUTO_THRESHOLD`] switches.
    Algorithmic,
}

impl RoutingTables {
    /// Parse a CLI value (`flat` | `dyn` | `algorithmic`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "flat" => Some(RoutingTables::Flat),
            "dyn" => Some(RoutingTables::Dyn),
            "algorithmic" => Some(RoutingTables::Algorithmic),
            _ => None,
        }
    }

    /// Stable display name (`flat` | `dyn` | `algorithmic`).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingTables::Flat => "flat",
            RoutingTables::Dyn => "dyn",
            RoutingTables::Algorithmic => "algorithmic",
        }
    }
}

/// Switching mode of the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Switching {
    /// Virtual cut-through (the paper's mode): a packet advances only when
    /// the downstream VC can buffer it entirely, so a blocked packet never
    /// straddles multiple routers.
    #[default]
    VirtualCutThrough,
    /// Wormhole: a packet advances as soon as one flit of space exists
    /// downstream; blocked packets hold buffers along their whole path,
    /// which lowers the buffer requirement but couples channels more
    /// tightly (earlier saturation, same deadlock theory).
    Wormhole,
}

use crate::fault::FaultPlan;
use dsn_telemetry::TelemetryConfig;

/// Simulation parameters. All latencies are in cycles; [`SimConfig::cycle_ns`]
/// converts to wall-clock nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Scheduling core (default: the event-driven engine; the dense scan
    /// is kept as a bit-identical reference).
    pub engine: EngineKind,
    /// Candidate source for the allocation hot path (default: flat
    /// precompiled tables; the dynamic trait-call path is kept as a
    /// bit-identical reference).
    pub routing_tables: RoutingTables,
    /// Shard count for [`EngineKind::Sharded`]: `0` (the default) means one
    /// shard per rayon worker thread, any other value fixes the partition
    /// (clamped to the switch count). Results are bit-identical to the
    /// single-thread event engine for *every* worker count, so this only
    /// trades parallelism against per-window synchronization overhead.
    /// Ignored by the other engines.
    pub workers: usize,
    /// Switching mode (paper: virtual cut-through).
    pub switching: Switching,
    /// Virtual channels per physical channel (paper: 4).
    pub vcs: u8,
    /// Input buffer capacity per VC, in flits. Virtual cut-through requires
    /// at least one full packet (paper's switching mode).
    pub buffer_flits: usize,
    /// Packet size in flits, header included (paper: 33).
    pub packet_flits: usize,
    /// Per-hop header processing latency in cycles: routing, VC allocation,
    /// switch allocation, crossbar (paper: >100 ns -> 38 cycles).
    pub header_delay: u64,
    /// Link + injection delay in cycles (paper: 20 ns -> 8 cycles).
    pub link_delay: u64,
    /// Credit return delay in cycles (modeled equal to the link delay).
    pub credit_delay: u64,
    /// Compute nodes (hosts) attached to each switch (paper: 4).
    pub hosts_per_switch: usize,
    /// Flit width in bits (paper: 256).
    pub flit_bits: u64,
    /// Wall-clock nanoseconds per cycle (flit serialization time at the
    /// effective link bandwidth; paper: 256 bit / 96 Gbps ≈ 2.67 ns).
    pub cycle_ns: f64,
    /// Warm-up cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Measurement window in cycles (after warm-up).
    pub measure_cycles: u64,
    /// Extra drain time after the measurement window before the run stops.
    pub drain_cycles: u64,
    /// Scripted runtime fault schedule (links/switches going down and up
    /// mid-run). Empty = no faults, zero overhead.
    pub fault_plan: FaultPlan,
    /// Telemetry recording (window length + traffic phases). `None` (the
    /// default) compiles every hook down to a no-op variant check — zero
    /// measurable overhead; `RunStats` are bit-identical either way.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            engine: EngineKind::default(),
            routing_tables: RoutingTables::default(),
            workers: 0,
            switching: Switching::VirtualCutThrough,
            vcs: 4,
            buffer_flits: 40,
            packet_flits: 33,
            header_delay: 38,
            link_delay: 8,
            credit_delay: 8,
            hosts_per_switch: 4,
            flit_bits: 256,
            cycle_ns: 256.0 / 96.0, // ≈ 2.667 ns
            warmup_cycles: 20_000,
            measure_cycles: 60_000,
            drain_cycles: 60_000,
            fault_plan: FaultPlan::none(),
            telemetry: None,
        }
    }
}

impl SimConfig {
    /// A shrunken configuration for fast unit tests (small packets, short
    /// windows); keeps the same structural features (4 VCs, VCT).
    pub fn test_small() -> Self {
        SimConfig {
            engine: EngineKind::default(),
            routing_tables: RoutingTables::default(),
            workers: 0,
            switching: Switching::VirtualCutThrough,
            vcs: 2,
            buffer_flits: 8,
            packet_flits: 4,
            header_delay: 3,
            link_delay: 1,
            credit_delay: 1,
            hosts_per_switch: 1,
            flit_bits: 256,
            cycle_ns: 1.0,
            warmup_cycles: 200,
            measure_cycles: 2_000,
            drain_cycles: 4_000,
            fault_plan: FaultPlan::none(),
            telemetry: None,
        }
    }

    /// A telemetry configuration whose phases follow this config's
    /// warmup / measure / drain boundaries (coincident boundaries are
    /// merged, keeping the later name).
    pub fn standard_telemetry(&self, window: u64) -> TelemetryConfig {
        let mut phases: Vec<(u64, String)> = Vec::new();
        for (start, name) in [
            (0, "warmup"),
            (self.warmup_cycles, "measure"),
            (self.warmup_cycles + self.measure_cycles, "drain"),
        ] {
            if phases.last().is_some_and(|&(s, _)| s == start) {
                phases.pop();
            }
            phases.push((start, name.to_string()));
        }
        TelemetryConfig { window, phases }
    }

    /// Offered load conversion: packets per cycle per host that correspond
    /// to the given offered bandwidth in Gbit/s/host
    /// (1 Gbit/s = 1 bit/ns).
    pub fn packets_per_cycle_for_gbps(&self, gbps: f64) -> f64 {
        let bits_per_cycle = gbps * self.cycle_ns;
        bits_per_cycle / (self.packet_flits as f64 * self.flit_bits as f64)
    }

    /// Inverse of [`Self::packets_per_cycle_for_gbps`].
    pub fn gbps_for_packets_per_cycle(&self, pkts_per_cycle: f64) -> f64 {
        pkts_per_cycle * self.packet_flits as f64 * self.flit_bits as f64 / self.cycle_ns
    }

    /// Total run length in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles + self.drain_cycles
    }

    /// Basic sanity validation.
    ///
    /// # Panics
    /// Panics when parameters are inconsistent (zero VCs, buffer smaller
    /// than a packet under VCT, zero-size packets).
    pub fn validate(&self) {
        assert!(self.vcs >= 1, "need at least one VC");
        assert!(self.packet_flits >= 1, "packets need at least one flit");
        if self.switching == Switching::VirtualCutThrough {
            assert!(
                self.buffer_flits >= self.packet_flits,
                "virtual cut-through needs one full packet of buffering per VC"
            );
        } else {
            assert!(
                self.buffer_flits >= 2,
                "wormhole needs at least 2 flits of buffering"
            );
        }
        assert!(self.hosts_per_switch >= 1, "need at least one host");
        assert!(self.cycle_ns > 0.0, "cycle time must be positive");
        if let Some(tc) = &self.telemetry {
            tc.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.packet_flits, 33);
        assert_eq!(c.hosts_per_switch, 4);
        assert_eq!(c.flit_bits, 256);
        // header latency > 100 ns
        assert!(c.header_delay as f64 * c.cycle_ns > 100.0);
        // link latency ~ 20 ns
        let link_ns = c.link_delay as f64 * c.cycle_ns;
        assert!((19.0..24.0).contains(&link_ns), "link {link_ns} ns");
    }

    #[test]
    fn load_conversion_roundtrip() {
        let c = SimConfig::default();
        for gbps in [1.0, 4.0, 12.0] {
            let p = c.packets_per_cycle_for_gbps(gbps);
            let back = c.gbps_for_packets_per_cycle(p);
            assert!((back - gbps).abs() < 1e-9, "{gbps} -> {p} -> {back}");
        }
    }

    #[test]
    fn full_injection_rate_is_one_flit_per_cycle() {
        // 96 Gbps offered = 1 flit per cycle = 1/33 packets per cycle.
        let c = SimConfig::default();
        let p = c.packets_per_cycle_for_gbps(96.0);
        assert!((p - 1.0 / 33.0).abs() < 1e-9, "{p}");
    }

    #[test]
    #[should_panic(expected = "virtual cut-through")]
    fn small_buffer_rejected() {
        let c = SimConfig {
            buffer_flits: 10,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    fn engine_kind_parses() {
        assert_eq!(EngineKind::parse("dense"), Some(EngineKind::Dense));
        assert_eq!(EngineKind::parse("event"), Some(EngineKind::Event));
        assert_eq!(EngineKind::parse("sharded"), Some(EngineKind::Sharded));
        assert_eq!(EngineKind::parse("both"), None);
        assert_eq!(EngineKind::default(), EngineKind::Event);
        assert_eq!(EngineKind::Dense.name(), "dense");
        assert_eq!(EngineKind::Event.name(), "event");
        assert_eq!(EngineKind::Sharded.name(), "sharded");
    }

    #[test]
    fn routing_tables_parses() {
        assert_eq!(RoutingTables::parse("flat"), Some(RoutingTables::Flat));
        assert_eq!(RoutingTables::parse("dyn"), Some(RoutingTables::Dyn));
        assert_eq!(
            RoutingTables::parse("algorithmic"),
            Some(RoutingTables::Algorithmic)
        );
        assert_eq!(RoutingTables::parse("virtual"), None);
        assert_eq!(RoutingTables::default(), RoutingTables::Flat);
        assert_eq!(RoutingTables::Flat.name(), "flat");
        assert_eq!(RoutingTables::Dyn.name(), "dyn");
        assert_eq!(RoutingTables::Algorithmic.name(), "algorithmic");
    }

    #[test]
    fn wormhole_allows_small_buffers() {
        let c = SimConfig {
            switching: Switching::Wormhole,
            buffer_flits: 4,
            ..SimConfig::default()
        };
        c.validate();
    }
}
