//! Cycle-driven flit-level simulation engine.
//!
//! Models input-queued switches with virtual-channel flow control and
//! virtual cut-through switching, per Section VII.A of the paper:
//!
//! * each directed physical channel has `V` virtual channels with
//!   credit-based flow control;
//! * a packet's header spends `header_delay` cycles per hop on routing,
//!   VC allocation, switch allocation and crossbar traversal; body flits
//!   then stream at one flit per cycle (cut-through);
//! * VC allocation grants an output VC only when the downstream buffer has
//!   room for the whole packet (virtual cut-through) and holds it until the
//!   tail flit leaves;
//! * link traversal (including injection overhead) takes `link_delay`
//!   cycles; credits return with `credit_delay`;
//! * each switch serializes at most one flit per output channel per cycle
//!   and one flit per input port per cycle, with round-robin arbitration.
//!
//! Two scheduling cores drive this model ([`crate::config::EngineKind`]):
//! the *dense* reference scans every input VC, output channel and link
//! queue each cycle, while the *event* core (in `crate::event`) only
//! touches units with pending work. Both cores share the state and the
//! mutation helpers in this module, so a cycle's observable effects — and
//! therefore [`RunStats`] — are bit-identical between them (enforced by
//! `tests/sim_equivalence.rs`).

use crate::config::SimConfig;
use crate::inject::{Injector, NEVER};
use crate::routing::{RouteState, SimRouting};
use crate::stats::{RunStats, StatsCollector};
use crate::traffic::TrafficPattern;
use crate::workload::Workload;
use dsn_core::graph::Graph;
use dsn_telemetry::{
    ChannelDesc, PacketTracer, Telemetry, TelemetryConfig, TelemetryReport, TelemetryTopo,
    TraceEvent,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// A flit in flight: packet slab index plus sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Flit {
    /// Index into the [`PacketSlab`] (recycled; see [`Packet::uid`] for
    /// the stable creation-order identity).
    pub packet: u32,
    pub seq: u16,
}

#[derive(Debug, Clone)]
pub(crate) struct Packet {
    /// Stable creation-order id (what the tracer reports); slab indices
    /// are recycled and so unfit for identity.
    pub uid: u32,
    pub src_host: u32,
    pub dest_host: u32,
    pub dest_sw: u32,
    pub created: u64,
    pub route: RouteState,
    pub measured: bool,
    /// How many times this packet has been re-sent after fault drops.
    pub attempt: u32,
}

/// Packet storage with free-list recycling: delivered packets are retired
/// and their slots reused, so memory is bounded by the *peak in-flight*
/// packet count rather than the all-time total.
#[derive(Debug, Default)]
pub(crate) struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: u64,
    /// High-water mark of simultaneously live packets.
    pub peak_live: u64,
    /// All-time number of packets created.
    pub total_created: u64,
}

impl PacketSlab {
    /// Store a packet; returns its slab index. Both engines create and
    /// retire packets in the same order, so indices match between them.
    pub fn alloc(&mut self, p: Packet) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert!(self.slots[id as usize].is_none());
        self.slots[id as usize] = Some(p);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.total_created += 1;
        id
    }

    /// Store a copy of a packet migrating in from another shard: like
    /// [`Self::alloc`] but without touching `total_created` or `peak_live`
    /// — the packet was created (and counted) by its source shard, and
    /// global peaks are reconstructed by the sharded driver's replay.
    pub fn import(&mut self, p: Packet) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        debug_assert!(self.slots[id as usize].is_none());
        self.slots[id as usize] = Some(p);
        self.live += 1;
        id
    }

    /// Retire a delivered packet, releasing its slot for reuse.
    pub fn retire(&mut self, id: u32) {
        let gone = self.slots[id as usize].take();
        debug_assert!(gone.is_some(), "double retire of slot {id}");
        self.free.push(id);
        self.live -= 1;
    }

    pub fn get(&self, id: u32) -> &Packet {
        self.slots[id as usize].as_ref().expect("live packet")
    }

    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        self.slots[id as usize].as_mut().expect("live packet")
    }

    /// Packets currently in flight (created but not delivered).
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Visit every live packet in slab-index order (identical between the
    /// engines, since both create and retire in the same order).
    pub fn for_each_live_mut(&mut self, mut f: impl FnMut(&mut Packet)) {
        for p in self.slots.iter_mut().flatten() {
            f(p);
        }
    }
}

/// Where an allocated packet is headed (decoded view of a packed
/// [`ALLOC_NONE`]-style id; see [`decode_alloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutRef {
    /// Network channel + VC.
    Net { channel: usize, vc: u8 },
    /// Ejection port (host-local index at the destination switch).
    Eject { port: usize },
}

// ----------------------------------------------------------------------
// Packed per-input-VC / per-output-VC ids. All per-VC state lives in
// parallel flat arrays indexed by `iv = input * nvc + vc` and
// `ov = channel * nvc + vc` (the same ids the event core schedules on), so
// the allocation/arbitration hot loops are array scans with no pointer
// chasing. `with_workload` asserts the network is small enough that the
// packed encodings below cannot collide with their sentinels.
// ----------------------------------------------------------------------

/// `input_upstream` sentinel: injection input, no upstream channel.
pub(crate) const NO_UPSTREAM: u32 = u32::MAX;
/// `ivc_alloc` sentinel: no allocation held.
pub(crate) const ALLOC_NONE: u32 = u32::MAX;
/// `ivc_alloc` flag bit: ejection grant (low bits = host-local port).
pub(crate) const ALLOC_EJECT_BIT: u32 = 1 << 31;
/// `ovc_owner` sentinel: output VC unowned.
pub(crate) const OWNER_NONE: u32 = u32::MAX;

/// Pack a network allocation: `(channel << 8) | vc`.
#[inline]
pub(crate) fn alloc_net(ch: usize, vc: u8) -> u32 {
    ((ch as u32) << 8) | vc as u32
}

/// Pack an ejection grant.
#[inline]
pub(crate) fn alloc_eject(port: usize) -> u32 {
    ALLOC_EJECT_BIT | port as u32
}

/// Is this packed allocation an ejection grant? (`ALLOC_NONE` has the
/// eject bit set too, so the sentinel must be excluded first.)
#[inline]
pub(crate) fn alloc_is_eject(a: u32) -> bool {
    a != ALLOC_NONE && a & ALLOC_EJECT_BIT != 0
}

/// Decode a packed allocation id.
#[inline]
pub(crate) fn decode_alloc(a: u32) -> Option<OutRef> {
    if a == ALLOC_NONE {
        None
    } else if a & ALLOC_EJECT_BIT != 0 {
        Some(OutRef::Eject {
            port: (a & !ALLOC_EJECT_BIT) as usize,
        })
    } else {
        Some(OutRef::Net {
            channel: (a >> 8) as usize,
            vc: (a & 0xFF) as u8,
        })
    }
}

/// Pack an output-VC owner: `(input << 8) | vc`.
#[inline]
pub(crate) fn owner_pack(i: usize, v: u8) -> u32 {
    ((i as u32) << 8) | v as u32
}

/// Inverse of [`owner_pack`].
#[inline]
pub(crate) fn owner_unpack(o: u32) -> (usize, u8) {
    ((o >> 8) as usize, (o & 0xFF) as u8)
}

/// What [`Simulator::try_allocate_vc`] decided for one head packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocOutcome {
    /// No output VC currently grantable; retry next cycle.
    Blocked,
    /// Granted the ejection port (destination reached).
    Eject,
    /// Granted a VC on this directed channel.
    Net(usize),
    /// Faulted run only: no structurally usable candidate exists on the
    /// survivor graph (dead/unreachable) — the engine drops the packet.
    Unroutable,
}

/// The simulator: a topology + routing + traffic + configuration, run for a
/// fixed horizon.
pub struct Simulator {
    pub(crate) graph: Arc<Graph>,
    pub(crate) cfg: SimConfig,
    pub(crate) routing: Arc<dyn SimRouting>,

    /// Destination pattern for open workloads (None for closed batches).
    pub(crate) pattern: Option<TrafficPattern>,
    /// Per-host injection schedule + RNG streams (rate 0 for batches).
    pub(crate) injector: Injector,
    /// Closed-batch packets awaiting cycle-0 enqueue (drained once).
    pub(crate) pending_batch: Vec<(usize, usize)>,
    /// Total size of the closed batch (None for open workloads).
    pub(crate) closed_total: Option<u64>,

    pub(crate) packets: PacketSlab,

    /// VC stride of the per-VC arrays below: `cfg.vcs.max(1)`. Injection
    /// inputs use only slot 0 of their stride (their extra slots stay
    /// empty), so `iv = input * nvc + vc` is one uniform id space shared
    /// with the event core's scheduling keys.
    pub(crate) nvc: usize,
    /// Input unit count: `channels + hosts` (channel inputs first).
    pub(crate) n_inputs: usize,
    /// Per-input switch the unit belongs to.
    pub(crate) input_node: Vec<u32>,
    /// Per-input upstream directed channel ([`NO_UPSTREAM`] for injection).
    pub(crate) input_upstream: Vec<u32>,
    /// Per-`iv` input buffer.
    pub(crate) ivc_buf: Vec<VecDeque<Flit>>,
    /// Per-`iv` first cycle the head may attempt allocation (header
    /// processing complete); `u64::MAX` = no head armed.
    pub(crate) ivc_ready: Vec<u64>,
    /// Per-`iv` packed allocation ([`ALLOC_NONE`] = none held).
    pub(crate) ivc_alloc: Vec<u32>,
    /// Per-`iv` slab index of the allocated packet — only meaningful while
    /// `ivc_alloc` is held. Identifies the owner even when the buffer is
    /// transiently empty mid-stream (needed by the fault purge).
    pub(crate) ivc_alloc_pkt: Vec<u32>,
    /// Per-`ov` downstream credit count.
    pub(crate) ovc_credits: Vec<u32>,
    /// Per-`ov` packed owner `(input, vc)` ([`OWNER_NONE`] = free).
    pub(crate) ovc_owner: Vec<u32>,
    /// Per-channel round-robin pointer for switch allocation.
    pub(crate) out_rr: Vec<u32>,
    /// Per-channel bitmask of output VCs that can send a flit *right now*:
    /// bit `v` is set iff `ovc_owner[ch*nvc+v]` is held, the VC has at
    /// least one credit, and the owner's input buffer is nonempty. Kept
    /// exact by every owner/credit/buffer transition so [`Self::grant_channel`]
    /// is a single load for the (at saturation, overwhelmingly common)
    /// credit-starved channels instead of a per-VC gate scan.
    pub(crate) ch_ready: Vec<u64>,
    /// Per-channel bitmask of *owned* output VCs (superset of `ch_ready`):
    /// the event engine's channel-deactivation test in O(1) instead of an
    /// owner-slice scan.
    pub(crate) ch_owned: Vec<u64>,

    /// Compiled flat candidate tables (None = dynamic trait-call path,
    /// either by `cfg.routing_tables` or because the scheme is not
    /// tabulable).
    pub(crate) flat: Option<Arc<crate::flat::FlatRouting>>,
    /// Shared routing/rebuild cache, when the caller threads one through
    /// ([`Simulator::with_routing_cache`]) — lets catch-up fault rebuilds
    /// reuse tables across simulations of the same topology.
    pub(crate) routing_cache: Option<Arc<crate::cache::RoutingCache>>,

    /// Per-channel in-flight flits `(arrival_cycle, flit, vc)` — dense
    /// engine only; the event engine schedules arrivals on its wheel.
    pub(crate) links: Vec<VecDeque<(u64, Flit, u8)>>,
    /// In-flight credit returns `(cycle, channel, vc)` — dense engine only.
    pub(crate) credits_in_flight: VecDeque<(u64, usize, u8)>,
    /// Flits sent per directed channel during the measurement window.
    pub(crate) channel_flits: Vec<u64>,
    /// Cycle of the last flit movement (send or ejection).
    pub(crate) last_progress: u64,
    /// Consecutive cycles with packets in flight but no flit movement.
    pub(crate) current_stall: u64,
    /// Longest observed gap with packets in flight but no flit movement.
    pub(crate) longest_stall: u64,
    /// Packets delivered (all time), to know how many are in flight.
    pub(crate) delivered_all_time: u64,
    pub(crate) now: u64,

    pub(crate) stats: StatsCollector,
    pub(crate) tracer: Option<PacketTracer>,
    /// Telemetry sink ([`Telemetry::Off`] unless `cfg.telemetry` is set or
    /// [`Self::with_telemetry`] was called). Hooks live in the shared
    /// mutation helpers below, so both engines feed it identically and
    /// `RunStats` stay bit-identical whether it is on or off.
    pub(crate) telemetry: Telemetry,
    /// Per-cycle scratch: which input units already sent a flit.
    pub(crate) input_used: Vec<bool>,
    /// Per-cycle scratch: which ejection ports are busy.
    pub(crate) eject_used: Vec<bool>,
    /// Indices set in `input_used` this cycle (for O(work) clearing).
    pub(crate) touched_inputs: Vec<u32>,
    /// Indices set in `eject_used` this cycle.
    pub(crate) touched_ejects: Vec<u32>,
    /// Flits currently resident across all input-VC buffers.
    pub(crate) buffered_flits: u64,
    pub(crate) peak_buffered_flits: u64,
    /// Scratch for routing candidate lists.
    pub(crate) cand_scratch: Vec<(usize, u8)>,
    /// Scratch for dynamic escape residues on the flat path.
    pub(crate) esc_scratch: Vec<(usize, u8)>,
    /// Event-engine bookkeeping (None while running dense).
    pub(crate) ev: Option<Box<crate::event::EventState>>,
    /// Fault-injection state (None when `cfg.fault_plan` is empty).
    pub(crate) fault: Option<Box<crate::fault::FaultRuntime>>,
    /// Shard-membership context when this simulator is one shard of a
    /// sharded run (None otherwise): cross-shard sends and credit returns
    /// divert into mailboxes here instead of the local wheel.
    pub(crate) shard: Option<Box<crate::shard::ShardCtx>>,
    /// The workload RNG seed (kept so the sharded driver can rebuild
    /// identically-seeded per-shard injectors).
    pub(crate) seed: u64,
    /// Open-loop injection rate (packets/cycle/host; 0.0 for closed
    /// batches), kept for the same reason.
    pub(crate) open_rate: f64,
}

impl Simulator {
    /// Build a simulator over `graph` with the given routing, traffic
    /// pattern, injection rate (packets per cycle per host) and RNG seed —
    /// the *open-loop* workload of the paper's Figure 10.
    pub fn new(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        pattern: TrafficPattern,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        Self::with_workload(
            graph,
            cfg,
            routing,
            Workload::Open {
                pattern,
                packets_per_cycle_per_host: injection_rate,
            },
            seed,
        )
    }

    /// Build a simulator with an explicit [`Workload`] (open-loop traffic
    /// or a closed batch such as an all-to-all exchange).
    pub fn with_workload(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        workload: Workload,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let n = graph.node_count();
        let channels = graph.channel_count();
        let hosts = n * cfg.hosts_per_switch;

        let (pattern, injector, pending_batch, closed_total, open_rate) = match workload {
            Workload::Open {
                pattern,
                packets_per_cycle_per_host,
            } => (
                Some(pattern),
                Injector::new(seed, hosts, packets_per_cycle_per_host),
                Vec::new(),
                None,
                packets_per_cycle_per_host,
            ),
            Workload::Closed { packets } => {
                let total = packets.len() as u64;
                (
                    None,
                    Injector::new(seed, hosts, 0.0),
                    packets,
                    Some(total),
                    0.0,
                )
            }
        };

        let nvc = cfg.vcs.max(1) as usize;
        assert!(nvc <= 64, "ch_ready packs the per-channel VC set in a u64");
        let n_inputs = channels + hosts;
        assert!(
            n_inputs < (1 << 23),
            "network too large for the packed owner/alloc ids"
        );
        let mut input_node = Vec::with_capacity(n_inputs);
        let mut input_upstream = Vec::with_capacity(n_inputs);
        for c in 0..channels {
            let (_, to) = graph.channel_endpoints(c);
            input_node.push(to as u32);
            input_upstream.push(c as u32);
        }
        for h in 0..hosts {
            input_node.push((h / cfg.hosts_per_switch) as u32);
            input_upstream.push(NO_UPSTREAM);
        }
        let iv_domain = n_inputs * nvc;
        let ov_domain = channels * nvc;

        let stats = StatsCollector::new(&cfg);
        let telemetry = match &cfg.telemetry {
            Some(tc) => Telemetry::on(tc.clone(), telemetry_topo(&graph, &cfg)),
            None => Telemetry::Off,
        };
        let fault = if cfg.fault_plan.is_empty() {
            None
        } else {
            Some(Box::new(crate::fault::FaultRuntime::new(
                &graph,
                &cfg.fault_plan,
            )))
        };
        let flat = match cfg.routing_tables {
            crate::config::RoutingTables::Flat => routing.compiled_flat(),
            crate::config::RoutingTables::Dyn => None,
        };
        Simulator {
            links: vec![VecDeque::new(); channels],
            channel_flits: vec![0; channels],
            last_progress: 0,
            current_stall: 0,
            longest_stall: 0,
            delivered_all_time: 0,
            graph,
            routing,
            pattern,
            injector,
            pending_batch,
            closed_total,
            packets: PacketSlab::default(),
            nvc,
            n_inputs,
            input_node,
            input_upstream,
            ivc_buf: vec![VecDeque::new(); iv_domain],
            ivc_ready: vec![u64::MAX; iv_domain],
            ivc_alloc: vec![ALLOC_NONE; iv_domain],
            ivc_alloc_pkt: vec![0; iv_domain],
            ovc_credits: vec![cfg.buffer_flits as u32; ov_domain],
            ovc_owner: vec![OWNER_NONE; ov_domain],
            out_rr: vec![0; channels],
            ch_ready: vec![0; channels],
            ch_owned: vec![0; channels],
            flat,
            routing_cache: None,
            credits_in_flight: VecDeque::new(),
            now: 0,
            input_used: vec![false; channels + hosts],
            eject_used: vec![false; n * cfg.hosts_per_switch],
            touched_inputs: Vec::new(),
            touched_ejects: Vec::new(),
            buffered_flits: 0,
            peak_buffered_flits: 0,
            cand_scratch: Vec::new(),
            esc_scratch: Vec::new(),
            ev: None,
            fault,
            shard: None,
            seed,
            open_rate,
            cfg,
            stats,
            tracer: None,
            telemetry,
        }
    }

    /// Thread a shared [`RoutingCache`](crate::cache::RoutingCache) through
    /// this run so post-fault catch-up rebuilds reuse tables computed by
    /// earlier runs on the same topology and mask; returns self for
    /// chaining. Bit-identical to running without a cache (rebuilds are
    /// pure in `(graph, mask, scheme)`).
    pub fn with_routing_cache(mut self, cache: Arc<crate::cache::RoutingCache>) -> Self {
        self.routing_cache = Some(cache);
        self
    }

    /// Recompute `self.flat` for the current `self.routing` (after a fault
    /// rebuild swapped the scheme).
    pub(crate) fn refresh_flat(&mut self) {
        self.flat = match self.cfg.routing_tables {
            crate::config::RoutingTables::Flat => self.routing.compiled_flat(),
            crate::config::RoutingTables::Dyn => None,
        };
    }

    /// How many VC slots input `i` actually uses (injection inputs have 1).
    #[inline]
    pub(crate) fn vc_count(&self, i: usize) -> usize {
        if i < self.links.len() {
            self.nvc
        } else {
            1
        }
    }

    /// Enable telemetry recording with the given configuration (windows +
    /// phases); returns self for chaining. Equivalent to setting
    /// `cfg.telemetry` before construction. Call
    /// [`Self::run_with_telemetry`] to get the report back.
    pub fn with_telemetry(mut self, tc: TelemetryConfig) -> Self {
        self.telemetry = Telemetry::on(tc, telemetry_topo(&self.graph, &self.cfg));
        self
    }

    /// Like [`Self::run`] but also returns the telemetry report (`None`
    /// when telemetry was not enabled).
    pub fn run_with_telemetry(mut self) -> (RunStats, Option<TelemetryReport>) {
        self.run_inner();
        let telemetry = std::mem::replace(&mut self.telemetry, Telemetry::Off);
        let final_cycle = self.now;
        let stats = self.finish_stats();
        (stats, telemetry.finish(final_cycle))
    }

    /// Enable packet tracing for every `sample`-th packet; returns self for
    /// chaining. Call [`Self::run_traced`] to get the records back.
    pub fn with_tracer(mut self, sample: u32) -> Self {
        self.tracer = Some(PacketTracer::new(sample));
        self
    }

    /// Like [`Self::run`] but also returns the packet trace (empty when
    /// tracing was not enabled).
    pub fn run_traced(mut self) -> (RunStats, PacketTracer) {
        self.run_inner();
        let tracer_out = self
            .tracer
            .take()
            .unwrap_or_else(|| PacketTracer::new(u32::MAX));
        let stats = self.finish_stats();
        (stats, tracer_out)
    }

    /// Total number of hosts.
    pub fn hosts(&self) -> usize {
        self.graph.node_count() * self.cfg.hosts_per_switch
    }

    pub(crate) fn injection_input(&self, host: usize) -> usize {
        self.graph.channel_count() + host
    }

    /// Run for the configured horizon (open workloads) or until the batch
    /// drains (closed workloads, still bounded by the horizon) and return
    /// the collected statistics.
    pub fn run(mut self) -> RunStats {
        self.run_inner();
        self.finish_stats()
    }

    fn run_inner(&mut self) {
        let total = self.cfg.total_cycles();
        match self.cfg.engine {
            crate::config::EngineKind::Dense => {
                while self.now < total {
                    self.step_dense();
                    if self.batch_done() {
                        break;
                    }
                }
            }
            crate::config::EngineKind::Event => {
                crate::event::prepare(self);
                while self.now < total {
                    crate::event::step(self, total);
                    if self.batch_done() {
                        break;
                    }
                }
            }
            crate::config::EngineKind::Sharded => {
                crate::shard::run(self, total);
            }
        }
    }

    pub(crate) fn batch_done(&self) -> bool {
        let retries_empty = self.fault.as_ref().is_none_or(|f| f.retries.is_empty());
        self.closed_total.is_some_and(|t| {
            self.packets.total_created >= t && self.packets.live() == 0 && retries_empty
        })
    }

    fn finish_stats(self) -> RunStats {
        let hosts = self.hosts();
        let packets = self.packets.total_created;
        let window = self.cfg.measure_cycles.max(1) as f64;
        let mean_util = if self.channel_flits.is_empty() {
            0.0
        } else {
            self.channel_flits.iter().sum::<u64>() as f64 / window / self.channel_flits.len() as f64
        };
        let max_util = self
            .channel_flits
            .iter()
            .map(|&f| f as f64 / window)
            .fold(0.0f64, f64::max);
        let mut stats = self.stats.finish(&self.cfg, hosts, packets as usize);
        stats.mean_channel_utilization = mean_util;
        stats.max_channel_utilization = max_util;
        let (dropped_all, retries_pending) = match &self.fault {
            Some(f) => {
                stats.dropped_packets = f.dropped_measured;
                stats.dropped_packets_all_time = f.dropped_all;
                stats.salvaged_packets = f.salvaged;
                stats.retried_packets = f.retried;
                stats.abandoned_packets = f.abandoned;
                (f.dropped_all, f.retries.len() as u64)
            }
            None => (0, 0),
        };
        stats.completion_cycle = if packets > 0
            && retries_pending == 0
            && self.delivered_all_time + dropped_all == packets
        {
            Some(self.last_progress)
        } else {
            None
        };
        stats.longest_stall_cycles = self.longest_stall;
        stats.peak_in_flight_packets = self.packets.peak_live;
        stats.peak_buffered_flits = self.peak_buffered_flits;
        // Threshold: far beyond any legitimate wait (a full header + link
        // pipeline plus one packet serialization, with a wide margin).
        let threshold =
            16 * (self.cfg.header_delay + self.cfg.link_delay + self.cfg.packet_flits as u64);
        stats.deadlock_suspected =
            self.longest_stall > threshold && packets > self.delivered_all_time + dropped_all;
        stats
    }

    // ------------------------------------------------------------------
    // Dense reference core: scan everything, every cycle.
    // ------------------------------------------------------------------

    /// Advance one cycle (dense reference).
    fn step_dense(&mut self) {
        let now = self.now;

        // 0. Faults due this cycle (mask mutation, purges, reroute).
        self.process_faults(now);

        // 1. Credit returns.
        while let Some(&(t, ch, vc)) = self.credits_in_flight.front() {
            if t > now {
                break;
            }
            self.credits_in_flight.pop_front();
            self.apply_credit(ch, vc);
        }

        // 2. Link arrivals into input buffers.
        for ch in 0..self.links.len() {
            while let Some(&(t, flit, vc)) = self.links[ch].front() {
                if t > now {
                    break;
                }
                self.links[ch].pop_front();
                self.buf_push(ch, vc as usize, flit, now);
            }
        }

        // 3. Injection.
        self.inject_dense(now);

        // 4. Routing + VC allocation.
        self.allocate_dense(now);

        // 5. Switch allocation + flit traversal.
        self.traverse_dense(now);

        self.clear_used();
        self.watchdog(now);
        self.now += 1;
    }

    fn inject_dense(&mut self, now: u64) {
        if now == 0 && !self.pending_batch.is_empty() {
            let batch = std::mem::take(&mut self.pending_batch);
            for (src, dest) in batch {
                self.enqueue_packet(now, src, dest);
            }
        }
        self.inject_retries(now);
        let hosts = self.hosts();
        for h in 0..hosts {
            if self.injector.next_cycle(h) == now {
                self.inject_host(h, now);
            }
        }
    }

    fn allocate_dense(&mut self, now: u64) {
        for i in 0..self.n_inputs {
            for v in 0..self.vc_count(i) {
                let iv = i * self.nvc + v;
                let Some(&head) = self.ivc_buf[iv].front() else {
                    continue;
                };
                if head.seq != 0 || self.ivc_alloc[iv] != ALLOC_NONE {
                    continue;
                }
                debug_assert_ne!(self.ivc_ready[iv], u64::MAX, "head never armed");
                if now < self.ivc_ready[iv] {
                    continue;
                }
                if let AllocOutcome::Unroutable = self.try_allocate_vc(i, v, now) {
                    self.unroutable_drop(i, v, now);
                }
            }
        }
    }

    fn traverse_dense(&mut self, now: u64) {
        // Network outputs: one flit per channel per cycle, round-robin over
        // the input VCs that own one of its output VCs.
        for ch in 0..self.links.len() {
            self.grant_channel(ch, now);
        }
        // Ejection: one flit per (switch, port) per cycle.
        for i in 0..self.n_inputs {
            if self.input_used[i] {
                continue;
            }
            for v in 0..self.vc_count(i) {
                self.try_eject_vc(i, v, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared mutation helpers: every observable state change goes through
    // these, on both the dense and the event core. The `self.ev` branches
    // keep the event engine's active sets and timing wheel in sync; they
    // are no-ops on the dense core.
    // ------------------------------------------------------------------

    /// Inject one packet from `host` at its scheduled cycle and draw the
    /// host's next injection gap.
    pub(crate) fn inject_host(&mut self, host: usize, now: u64) {
        debug_assert_eq!(self.injector.next_cycle(host), now);
        let hosts = self.hosts();
        let dest = {
            let pattern = self
                .pattern
                .as_ref()
                .expect("open workload has a traffic pattern");
            pattern.pick(host, hosts, self.injector.rng_mut(host))
        };
        self.injector.advance(host, now);
        if let Some(ev) = &mut self.ev {
            let next = self.injector.next_cycle(host);
            if next != NEVER {
                ev.schedule_injection(next, host);
            }
        }
        self.enqueue_packet(now, host, dest);
    }

    /// Create a packet and push its flits into the source host's injection
    /// queue.
    pub(crate) fn enqueue_packet(&mut self, now: u64, src_host: usize, dest_host: usize) {
        self.enqueue_packet_attempt(now, src_host, dest_host, 0);
    }

    /// Like [`Self::enqueue_packet`] but recording the retry attempt number
    /// (used when a fault-dropped packet is re-sent by its source host).
    pub(crate) fn enqueue_packet_attempt(
        &mut self,
        now: u64,
        src_host: usize,
        dest_host: usize,
        attempt: u32,
    ) {
        debug_assert_ne!(src_host, dest_host);
        let dest_sw = (dest_host / self.cfg.hosts_per_switch) as u32;
        let src_sw = src_host / self.cfg.hosts_per_switch;
        let route = self.routing.init(src_sw, dest_sw as usize);
        let measured =
            now >= self.cfg.warmup_cycles && now < self.cfg.warmup_cycles + self.cfg.measure_cycles;
        let uid = self.packets.total_created as u32;
        let id = self.packets.alloc(Packet {
            uid,
            src_host: src_host as u32,
            dest_host: dest_host as u32,
            dest_sw,
            created: now,
            route,
            measured,
            attempt,
        });
        self.stats.on_offered(now, self.cfg.packet_flits);
        self.telemetry.on_created(id, src_sw as u32, dest_sw, now);
        if let Some(tr) = &mut self.tracer {
            tr.record(
                now,
                uid,
                TraceEvent::Injected {
                    src_sw,
                    dest_sw: dest_sw as usize,
                },
            );
        }
        let input = self.injection_input(src_host);
        for seq in 0..self.cfg.packet_flits as u16 {
            self.buf_push(input, 0, Flit { packet: id, seq }, now);
        }
        if self.telemetry.enabled() {
            let depth = self.ivc_buf[input * self.nvc].len() as u32;
            self.telemetry.on_inject_depth(depth, now);
        }
    }

    /// Append a flit to an input-VC buffer. A head flit landing in an empty
    /// buffer arms the header-processing timer (the cycle at which the
    /// dense scan would first see it).
    pub(crate) fn buf_push(&mut self, i: usize, v: usize, flit: Flit, now: u64) {
        let iv = i * self.nvc + v;
        let was_empty = self.ivc_buf[iv].is_empty();
        self.ivc_buf[iv].push_back(flit);
        let depth = self.ivc_buf[iv].len();
        self.buffered_flits += 1;
        self.peak_buffered_flits = self.peak_buffered_flits.max(self.buffered_flits);
        if let Some(sc) = &mut self.shard {
            sc.pushes += 1;
        }
        // Network inputs only (input unit i receives channel i for
        // i < channels); injection pushes are covered by `on_inject_depth`.
        if i < self.links.len() {
            let is_tail = flit.seq as usize + 1 == self.cfg.packet_flits;
            self.telemetry.on_link_arrival(
                i as u32,
                v as u32,
                depth as u32,
                flit.packet,
                is_tail,
                now,
            );
        }
        if was_empty {
            if flit.seq == 0 {
                debug_assert!(
                    self.ivc_alloc[iv] == ALLOC_NONE,
                    "fresh head in a buffer still owned by a previous packet"
                );
                self.arm_header(i, v, now);
            } else if let Some(OutRef::Net { channel, vc }) = decode_alloc(self.ivc_alloc[iv]) {
                // Mid-stream refill of a drained buffer: the allocated
                // output VC may be sendable again.
                self.refresh_ready(channel, vc as usize);
            }
        }
    }

    fn buf_pop(&mut self, i: usize, v: usize) -> Flit {
        let flit = self.ivc_buf[i * self.nvc + v]
            .pop_front()
            .expect("nonempty");
        self.buffered_flits -= 1;
        flit
    }

    /// Arm the header-delay timer for the head packet of `(i, v)`: routing
    /// work conceptually starts at `arm_cycle`, and allocation may first be
    /// attempted `max(header_delay, 1)` cycles later (the dense scan needs
    /// at least one cycle between arming and allocating, so delay-0 configs
    /// still wait one cycle).
    pub(crate) fn arm_header(&mut self, i: usize, v: usize, arm_cycle: u64) {
        let ready = arm_cycle + self.cfg.header_delay.max(1);
        self.ivc_ready[i * self.nvc + v] = ready;
        if let Some(ev) = &mut self.ev {
            ev.schedule_route(ready, i, v);
        }
    }

    /// Release an input VC after its tail left; a revealed next-packet head
    /// is seen by the allocator no earlier than the following cycle.
    fn release_input_vc(&mut self, i: usize, v: usize, now: u64) {
        let iv = i * self.nvc + v;
        self.ivc_alloc[iv] = ALLOC_NONE;
        self.ivc_ready[iv] = u64::MAX;
        if let Some(&head) = self.ivc_buf[iv].front() {
            debug_assert_eq!(head.seq, 0, "packets stream whole, in order");
            self.arm_header(i, v, now + 1);
        }
    }

    pub(crate) fn apply_credit(&mut self, ch: usize, vc: u8) {
        let ov = ch * self.nvc + vc as usize;
        self.ovc_credits[ov] += 1;
        debug_assert!(
            self.ovc_credits[ov] as usize <= self.cfg.buffer_flits,
            "credit overflow on channel {ch} vc {vc}"
        );
        // A 0→1 credit transition may un-starve the owner.
        if self.ovc_credits[ov] == 1 {
            self.refresh_ready(ch, vc as usize);
        }
    }

    /// Recompute the [`Self::ch_ready`] bit for output VC `(ch, vc)` from
    /// the owner/credit/buffer state it summarizes.
    pub(crate) fn refresh_ready(&mut self, ch: usize, vc: usize) {
        let ov = ch * self.nvc + vc;
        let owner = self.ovc_owner[ov];
        let ready = owner != OWNER_NONE && self.ovc_credits[ov] > 0 && {
            let (i, v) = owner_unpack(owner);
            !self.ivc_buf[i * self.nvc + v as usize].is_empty()
        };
        if ready {
            self.ch_ready[ch] |= 1u64 << vc;
        } else {
            self.ch_ready[ch] &= !(1u64 << vc);
        }
    }

    /// Schedule a flit's link traversal toward the downstream input. A
    /// zero-delay link still delivers next cycle (the dense scan processes
    /// arrivals before sends, so a same-cycle send is seen one cycle later).
    fn send_flit_on_link(&mut self, ch: usize, flit: Flit, vc: u8, now: u64) {
        let t = now + self.cfg.link_delay.max(1);
        if let Some(sc) = &mut self.shard {
            if sc.remote_link[ch] {
                // Cross-shard hop: divert into the outbound mailbox. A
                // head flit also mails a copy of the packet via the payload
                // sidecar (route state is final for this hop — `on_hop`
                // already ran at allocation); the local copy is retired
                // when the tail crosses.
                let head = flit.seq == 0;
                if head {
                    sc.out_packets.push(self.packets.get(flit.packet).clone());
                }
                sc.out_links.push(crate::shard::LinkMsg {
                    t,
                    ch: ch as u32,
                    vc,
                    head,
                    flit,
                });
                if head {
                    // Log the slab handoff so telemetry replay can bind the
                    // destination shard's slot to the same replay identity.
                    self.telemetry.push_event(dsn_telemetry::HookEvent {
                        now,
                        kind: dsn_telemetry::hook_kind::EXPORT,
                        a: ch as u32,
                        b: vc as u32,
                        c: 0,
                        d: flit.packet,
                        flag: false,
                    });
                }
                return;
            }
        }
        match &mut self.ev {
            Some(ev) => ev.schedule_link(t, ch, flit, vc),
            None => self.links[ch].push_back((t, flit, vc)),
        }
    }

    /// Schedule a credit return toward the upstream output VC (zero-delay
    /// credits likewise land next cycle).
    fn return_credit(&mut self, ch: usize, vc: u8, now: u64) {
        let t = now + self.cfg.credit_delay.max(1);
        if let Some(sc) = &mut self.shard {
            if sc.remote_credit[ch] {
                sc.out_credits.push(crate::shard::CreditMsg {
                    t,
                    ch: ch as u32,
                    vc,
                });
                return;
            }
        }
        match &mut self.ev {
            Some(ev) => ev.schedule_credit(t, ch, vc),
            None => self.credits_in_flight.push_back((t, ch, vc)),
        }
    }

    fn mark_input_used(&mut self, i: usize) {
        debug_assert!(!self.input_used[i]);
        self.input_used[i] = true;
        self.touched_inputs.push(i as u32);
    }

    pub(crate) fn clear_used(&mut self) {
        let mut touched = std::mem::take(&mut self.touched_inputs);
        for &i in &touched {
            self.input_used[i as usize] = false;
        }
        touched.clear();
        self.touched_inputs = touched;
        let mut touched = std::mem::take(&mut self.touched_ejects);
        for &s in &touched {
            self.eject_used[s as usize] = false;
        }
        touched.clear();
        self.touched_ejects = touched;
    }

    /// Deadlock watchdog: count consecutive cycles in which packets are in
    /// flight yet no flit moved anywhere (injection does not count — an
    /// open workload keeps injecting into a wedged network).
    pub(crate) fn watchdog(&mut self, now: u64) {
        if self.last_progress == now || self.packets.live() == 0 {
            self.current_stall = 0;
        } else {
            self.current_stall += 1;
            self.longest_stall = self.longest_stall.max(self.current_stall);
        }
    }

    /// Routing + VC allocation for one head packet whose timer has expired.
    /// The caller guarantees the head is a seq-0 flit, unallocated, with
    /// `now >= route_ready_at`.
    pub(crate) fn try_allocate_vc(&mut self, i: usize, v: usize, now: u64) -> AllocOutcome {
        let node = self.input_node[i] as usize;
        let iv = i * self.nvc + v;
        let head = *self.ivc_buf[iv].front().expect("head present");
        debug_assert_eq!(head.seq, 0);
        debug_assert!(self.ivc_alloc[iv] == ALLOC_NONE);
        debug_assert!(now >= self.ivc_ready[iv]);
        let pkt_idx = head.packet;
        let dest_sw = self.packets.get(pkt_idx).dest_sw as usize;
        if let Some(f) = &self.fault {
            // A dead local or destination switch makes the packet unroutable
            // outright (it can never be delivered while the switch is down).
            if !f.mask.node_up(node) || !f.mask.node_up(dest_sw) {
                return AllocOutcome::Unroutable;
            }
        }
        if dest_sw == node {
            // Eject: always grantable (sink arbitrated per cycle).
            let port = self.packets.get(pkt_idx).dest_host as usize % self.cfg.hosts_per_switch;
            self.ivc_alloc[iv] = alloc_eject(port);
            self.ivc_alloc_pkt[iv] = pkt_idx;
            self.telemetry.on_alloc_granted(pkt_idx, now);
            return AllocOutcome::Eject;
        }
        let need = match self.cfg.switching {
            crate::config::Switching::VirtualCutThrough => self.cfg.packet_flits as u32,
            crate::config::Switching::Wormhole => 1,
        };
        let mut outcome = AllocOutcome::Blocked;
        let mut usable = 0usize;
        // Take the table out for the scan instead of cloning the Arc: a
        // per-attempt refcount bump on an Arc shared across sweep threads
        // would contend on its cache line.
        let flat_opt = self.flat.take();
        match &flat_opt {
            Some(flat) => {
                // Hot path: candidates from the compiled table, preference
                // order identical to the dynamic scan by construction.
                let ctx = flat.ctx(&self.packets.get(pkt_idx).route);
                let row = flat.row(ctx, node, dest_sw);
                debug_assert!(
                    self.fault.is_some() || flat.needs_dyn_escape() || !row.is_empty(),
                    "no route from {node} to {dest_sw}"
                );
                for &packed in row {
                    let (ch, vc) = crate::flat::unpack(packed);
                    debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                    if self
                        .fault
                        .as_ref()
                        .is_some_and(|f| !f.mask.channel_alive(ch))
                    {
                        continue;
                    }
                    usable += 1;
                    if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                        match flat.hop_phase(ch, vc) {
                            Some(phase) => {
                                self.packets.get_mut(pkt_idx).route.ud_phase = phase;
                            }
                            None => {
                                let route = &mut self.packets.get_mut(pkt_idx).route;
                                self.routing.on_hop(node, dest_sw, route, ch, vc);
                            }
                        }
                        self.telemetry.on_alloc_granted(pkt_idx, now);
                        outcome = AllocOutcome::Net(ch);
                        break;
                    }
                }
                if matches!(outcome, AllocOutcome::Blocked) && flat.needs_dyn_escape() {
                    // Escape residue: scanned only after every tabulated
                    // candidate blocked — the same concatenated preference
                    // list the dynamic path walks.
                    let mut esc = std::mem::take(&mut self.esc_scratch);
                    esc.clear();
                    self.routing.escape_candidates(
                        node,
                        dest_sw,
                        &self.packets.get(pkt_idx).route,
                        &mut esc,
                    );
                    for &(ch, vc) in &esc {
                        debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                        if self
                            .fault
                            .as_ref()
                            .is_some_and(|f| !f.mask.channel_alive(ch))
                        {
                            continue;
                        }
                        usable += 1;
                        if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                            let route = &mut self.packets.get_mut(pkt_idx).route;
                            self.routing.on_hop(node, dest_sw, route, ch, vc);
                            self.telemetry.on_alloc_granted(pkt_idx, now);
                            outcome = AllocOutcome::Net(ch);
                            break;
                        }
                    }
                    self.esc_scratch = esc;
                }
            }
            None => {
                // Reference path: dynamic trait calls per attempt.
                let mut candidates = std::mem::take(&mut self.cand_scratch);
                candidates.clear();
                self.routing.candidates(
                    node,
                    dest_sw,
                    &self.packets.get(pkt_idx).route,
                    &mut candidates,
                );
                debug_assert!(
                    self.fault.is_some() || !candidates.is_empty(),
                    "no route from {node} to {dest_sw}"
                );
                for &(ch, vc) in &candidates {
                    debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                    if self
                        .fault
                        .as_ref()
                        .is_some_and(|f| !f.mask.channel_alive(ch))
                    {
                        continue;
                    }
                    usable += 1;
                    if self.try_grant(i, v, pkt_idx, node, ch, vc, need, now) {
                        let route = &mut self.packets.get_mut(pkt_idx).route;
                        self.routing.on_hop(node, dest_sw, route, ch, vc);
                        self.telemetry.on_alloc_granted(pkt_idx, now);
                        outcome = AllocOutcome::Net(ch);
                        break;
                    }
                }
                self.cand_scratch = candidates;
            }
        }
        self.flat = flat_opt;
        if matches!(outcome, AllocOutcome::Blocked) && usable == 0 && self.fault.is_some() {
            // Every candidate is structurally dead on the survivor graph
            // (not merely busy): the packet cannot make progress here.
            outcome = AllocOutcome::Unroutable;
        }
        if matches!(outcome, AllocOutcome::Blocked) {
            // Countable identically on both engines: the dense scan and the
            // event core's `alloc_pending` set visit the same eligible
            // heads each cycle.
            self.telemetry.on_alloc_blocked(node as u32, now);
        }
        outcome
    }

    /// Attempt to grant output VC `(ch, vc)` to head `(i, v)`: checks the
    /// owner and credit gates, and on success records the ownership, the
    /// input allocation and the trace event (the caller commits the hop and
    /// telemetry, preserving the exact historical effect order).
    #[allow(clippy::too_many_arguments)]
    fn try_grant(
        &mut self,
        i: usize,
        v: usize,
        pkt_idx: u32,
        node: usize,
        ch: usize,
        vc: u8,
        need: u32,
        now: u64,
    ) -> bool {
        let ov = ch * self.nvc + vc as usize;
        if self.ovc_owner[ov] != OWNER_NONE || self.ovc_credits[ov] < need {
            return false;
        }
        self.ovc_owner[ov] = owner_pack(i, v as u8);
        self.ch_owned[ch] |= 1u64 << vc;
        // Freshly granted: credits >= need >= 1 and the head flit is
        // buffered, so the VC is sendable right away.
        self.ch_ready[ch] |= 1u64 << vc;
        self.ivc_alloc[i * self.nvc + v] = alloc_net(ch, vc);
        self.ivc_alloc_pkt[i * self.nvc + v] = pkt_idx;
        if let Some(tr) = &mut self.tracer {
            let uid = self.packets.get(pkt_idx).uid;
            tr.record(
                now,
                uid,
                TraceEvent::VcAllocated {
                    at: node,
                    channel: ch,
                    vc,
                },
            );
        }
        true
    }

    /// Switch allocation + flit send for one output channel this cycle:
    /// round-robin over the sendable output VCs ([`Self::ch_ready`] —
    /// owned, credited, flit buffered), send at most one flit.
    pub(crate) fn grant_channel(&mut self, ch: usize, now: u64) {
        let ready = self.ch_ready[ch];
        if ready == 0 {
            return;
        }
        let nvc = self.nvc;
        let base = ch * nvc;
        let start = self.out_rr[ch] as usize;
        let mut granted: Option<(usize, u8, u8)> = None; // (input, ivc, ovc)
                                                         // Round-robin order from `start`: the ready bits at or above the
                                                         // pointer (low-to-high), then the wrapped bits below it.
        'scan: for (mut m, off) in [(ready >> start, start), (ready & ((1u64 << start) - 1), 0)] {
            while m != 0 {
                let ovc = off + m.trailing_zeros() as usize;
                let owner = self.ovc_owner[base + ovc];
                debug_assert_ne!(owner, OWNER_NONE, "ready bit without owner");
                let (i, v) = owner_unpack(owner);
                if !self.input_used[i] {
                    granted = Some((i, v, ovc as u8));
                    break 'scan;
                }
                m &= m - 1;
            }
        }
        let Some((i, v, ovc)) = granted else {
            return;
        };
        self.last_progress = now;
        self.mark_input_used(i);
        self.out_rr[ch] = ((ovc as usize + 1) % nvc) as u32;
        let flit = self.buf_pop(i, v as usize);
        self.ovc_credits[base + ovc as usize] -= 1;
        self.send_flit_on_link(ch, flit, ovc, now);
        if now >= self.cfg.warmup_cycles && now < self.cfg.warmup_cycles + self.cfg.measure_cycles {
            self.channel_flits[ch] += 1;
        }
        // Return a credit upstream for the flit leaving this buffer.
        let up = self.input_upstream[i];
        if up != NO_UPSTREAM {
            self.return_credit(up as usize, v, now);
        }
        let tail = flit.seq as usize + 1 == self.cfg.packet_flits;
        if tail
            || self.ovc_credits[base + ovc as usize] == 0
            || self.ivc_buf[i * nvc + v as usize].is_empty()
        {
            self.ch_ready[ch] &= !(1u64 << ovc);
        }
        self.telemetry
            .on_flit_sent(ch as u32, flit.packet, tail, now);
        if tail {
            // tail: release ownership and input state
            self.ovc_owner[base + ovc as usize] = OWNER_NONE;
            self.ch_owned[ch] &= !(1u64 << ovc);
            if let Some(tr) = &mut self.tracer {
                let at = self.input_node[i] as usize;
                let uid = self.packets.get(flit.packet).uid;
                tr.record(now, uid, TraceEvent::TailSent { at, channel: ch });
            }
            self.release_input_vc(i, v as usize, now);
            // Tail crossed a shard boundary: the packet now lives in the
            // destination shard's slab (imported from the head payload), so
            // the local copy can be retired.
            if self.shard.as_ref().is_some_and(|sc| sc.remote_link[ch]) {
                self.packets.retire(flit.packet);
            }
        }
    }

    /// Eject one flit from `(i, v)` if it holds an ejection grant and the
    /// input port + ejection port are both free this cycle. Returns true
    /// when the tail was ejected (packet delivered and retired).
    pub(crate) fn try_eject_vc(&mut self, i: usize, v: usize, now: u64) -> bool {
        if self.input_used[i] {
            return false;
        }
        let iv = i * self.nvc + v;
        let a = self.ivc_alloc[iv];
        if !alloc_is_eject(a) {
            return false;
        }
        let port = (a & !ALLOC_EJECT_BIT) as usize;
        if self.ivc_buf[iv].is_empty() {
            return false;
        }
        let node = self.input_node[i] as usize;
        let slot = node * self.cfg.hosts_per_switch + port;
        if self.eject_used[slot] {
            return false;
        }
        self.eject_used[slot] = true;
        self.touched_ejects.push(slot as u32);
        self.mark_input_used(i);
        self.last_progress = now;
        let flit = self.buf_pop(i, v);
        let up = self.input_upstream[i];
        if up != NO_UPSTREAM {
            self.return_credit(up as usize, v as u8, now);
        }
        let tail = flit.seq as usize + 1 == self.cfg.packet_flits;
        self.telemetry.on_ejected(flit.packet, tail, now);
        if tail {
            self.delivered_all_time += 1;
            {
                let pkt = self.packets.get(flit.packet);
                let (uid, created, measured) = (pkt.uid, pkt.created, pkt.measured);
                if let Some(tr) = &mut self.tracer {
                    tr.record(now, uid, TraceEvent::Delivered { at: node });
                }
                self.stats
                    .on_delivered(now, created, measured, self.cfg.packet_flits);
            }
            self.packets.retire(flit.packet);
            self.release_input_vc(i, v, now);
            return true;
        }
        false
    }
}

/// Describe the simulated network to the (simulator-agnostic) telemetry
/// crate: channel endpoints plus a `ring` flag marking index-ring adjacency
/// (ring distance 1), which keys the exporter's ring-position heatmap.
fn telemetry_topo(graph: &Graph, cfg: &SimConfig) -> TelemetryTopo {
    let n = graph.node_count();
    let channels = (0..graph.channel_count())
        .map(|c| {
            let (src, dst) = graph.channel_endpoints(c);
            let d = src.abs_diff(dst);
            ChannelDesc {
                src: src as u32,
                dst: dst as u32,
                ring: d.min(n - d) == 1,
            }
        })
        .collect();
    TelemetryTopo {
        nodes: n,
        vcs: cfg.vcs as usize,
        channels,
        measure_start: cfg.warmup_cycles,
        measure_end: cfg.warmup_cycles + cfg.measure_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::routing::AdaptiveEscape;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    fn tiny_sim(rate: f64) -> Simulator {
        tiny_sim_engine(rate, EngineKind::default())
    }

    fn tiny_sim_engine(rate: f64, engine: EngineKind) -> Simulator {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig {
            engine,
            ..SimConfig::test_small()
        };
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, 42)
    }

    #[test]
    fn low_load_delivers_everything() {
        let stats = tiny_sim(0.002).run();
        assert!(stats.delivered_packets > 0, "nothing delivered");
        assert!(
            stats.delivery_ratio() > 0.95,
            "delivery ratio {} too low at near-zero load",
            stats.delivery_ratio()
        );
        assert!(stats.avg_latency_cycles > 0.0);
    }

    #[test]
    fn zero_load_latency_matches_analytical_floor() {
        // One measured hop costs header + link; the packet also pays
        // serialization (packet_flits) and final header + ejection.
        let stats = tiny_sim(0.0005).run();
        let cfg = SimConfig::test_small();
        let floor = (cfg.header_delay + cfg.link_delay + cfg.packet_flits as u64) as f64;
        assert!(
            stats.avg_latency_cycles >= floor,
            "latency {} below physical floor {floor}",
            stats.avg_latency_cycles
        );
    }

    #[test]
    fn higher_load_never_lowers_latency() {
        let low = tiny_sim(0.002).run();
        let high = tiny_sim(0.02).run();
        assert!(
            high.avg_latency_cycles >= low.avg_latency_cycles * 0.9,
            "latency should not improve with load: low {} high {}",
            low.avg_latency_cycles,
            high.avg_latency_cycles
        );
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let stats = tiny_sim(0.01).run();
        let offered = stats.offered_flits_per_cycle_per_host;
        let accepted = stats.accepted_flits_per_cycle_per_host;
        assert!(
            (accepted - offered).abs() / offered < 0.15,
            "accepted {accepted} vs offered {offered}"
        );
    }

    #[test]
    fn dense_reference_agrees_with_event_default() {
        let dense = tiny_sim_engine(0.01, EngineKind::Dense).run();
        let event = tiny_sim_engine(0.01, EngineKind::Event).run();
        assert_eq!(dense, event, "engines diverged");
    }

    #[test]
    fn torus_with_dor_runs() {
        let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
        let g = Arc::new(torus.graph().clone());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(crate::routing::SourceRouted::torus_dor(torus));
        let sim = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 7);
        let stats = sim.run();
        assert!(stats.delivered_packets > 0);
        assert!(stats.delivery_ratio() > 0.9);
    }

    #[test]
    fn wormhole_mode_delivers_at_low_load() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig {
            switching: crate::config::Switching::Wormhole,
            buffer_flits: 2,
            ..SimConfig::test_small()
        };
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.002, 5).run();
        assert!(stats.delivery_ratio() > 0.95, "{}", stats.delivery_ratio());
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn wormhole_saturates_no_later_than_vct() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mk = |mode, buffer| {
            let cfg = SimConfig {
                switching: mode,
                buffer_flits: buffer,
                ..SimConfig::test_small()
            };
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::new(g.clone(), cfg, routing, TrafficPattern::Uniform, 0.05, 5).run()
        };
        let vct = mk(crate::config::Switching::VirtualCutThrough, 8);
        let worm = mk(crate::config::Switching::Wormhole, 2);
        assert!(
            worm.accepted_flits_per_cycle_per_host <= vct.accepted_flits_per_cycle_per_host * 1.05
        );
    }

    #[test]
    fn all_to_all_batch_completes() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 50_000; // plenty of horizon for the batch
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats =
            Simulator::with_workload(g, cfg, routing, crate::workload::Workload::all_to_all(8), 3)
                .run();
        let makespan = stats.completion_cycle.expect("batch must finish");
        assert!(makespan > 0);
        assert_eq!(stats.total_packets_all_time, 8 * 7);
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn batch_makespan_scales_with_size() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 100_000;
        let run = |count: usize| {
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::with_workload(
                g.clone(),
                cfg.clone(),
                routing,
                crate::workload::Workload::ring_shift(8, 1, count),
                3,
            )
            .run()
            .completion_cycle
            .expect("finishes")
        };
        assert!(run(8) > run(1));
    }

    #[test]
    fn tracer_records_full_packet_lifecycles() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let sim =
            Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 11).with_tracer(1);
        let (stats, trace) = sim.run_traced();
        assert!(stats.delivered_packets > 0);
        assert!(!trace.records().is_empty());
        // Find a delivered packet and sanity-check its timeline ordering
        // and latency decomposition.
        let delivered: Vec<u32> = trace
            .records()
            .iter()
            .filter_map(|&(_, p, e)| matches!(e, TraceEvent::Delivered { .. }).then_some(p))
            .collect();
        assert!(!delivered.is_empty());
        for &p in delivered.iter().take(5) {
            let timeline = trace.packet_timeline(p);
            assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
            assert!(matches!(timeline[0].2, TraceEvent::Injected { .. }));
            let (queue, transit, total) = trace.latency_breakdown(p).expect("delivered");
            assert_eq!(queue + transit, total);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_sim(0.01).run();
        let b = tiny_sim(0.01).run();
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
    }

    #[test]
    fn memory_stays_bounded_on_open_runs() {
        let stats = tiny_sim(0.01).run();
        assert!(stats.total_packets_all_time > 50);
        assert!(
            stats.peak_in_flight_packets < stats.total_packets_all_time / 2,
            "peak in-flight {} should be far below total {}",
            stats.peak_in_flight_packets,
            stats.total_packets_all_time
        );
        assert!(stats.peak_buffered_flits > 0);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = PacketSlab::default();
        let mk = |uid| Packet {
            uid,
            src_host: 0,
            dest_host: 1,
            dest_sw: 0,
            created: 0,
            route: RouteState {
                ud_phase: dsn_route::updown::UdPhase::Up,
                path: None,
                idx: 0,
            },
            measured: false,
            attempt: 0,
        };
        let a = slab.alloc(mk(0));
        let b = slab.alloc(mk(1));
        assert_ne!(a, b);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.peak_live, 2);
        slab.retire(a);
        assert_eq!(slab.live(), 1);
        let c = slab.alloc(mk(2));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.get(c).uid, 2);
        assert_eq!(slab.peak_live, 2, "peak unchanged by recycling");
        assert_eq!(slab.total_created, 3);
    }
}
