//! Cycle-driven flit-level simulation engine.
//!
//! Models input-queued switches with virtual-channel flow control and
//! virtual cut-through switching, per Section VII.A of the paper:
//!
//! * each directed physical channel has `V` virtual channels with
//!   credit-based flow control;
//! * a packet's header spends `header_delay` cycles per hop on routing,
//!   VC allocation, switch allocation and crossbar traversal; body flits
//!   then stream at one flit per cycle (cut-through);
//! * VC allocation grants an output VC only when the downstream buffer has
//!   room for the whole packet (virtual cut-through) and holds it until the
//!   tail flit leaves;
//! * link traversal (including injection overhead) takes `link_delay`
//!   cycles; credits return with `credit_delay`;
//! * each switch serializes at most one flit per output channel per cycle
//!   and one flit per input port per cycle, with round-robin arbitration.

use crate::config::SimConfig;
use crate::routing::{RouteState, SimRouting};
use crate::stats::{RunStats, StatsCollector};
use crate::trace::{PacketTracer, TraceEvent};
use crate::traffic::TrafficPattern;
use crate::workload::Workload;
use dsn_core::graph::Graph;
use dsn_core::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// A flit in flight: packet index plus sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    packet: u32,
    seq: u16,
}

#[derive(Debug)]
struct Packet {
    dest_host: u32,
    dest_sw: u32,
    created: u64,
    route: RouteState,
    measured: bool,
}

/// Where an allocated packet is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutRef {
    /// Network channel + VC.
    Net { channel: usize, vc: u8 },
    /// Ejection port (host-local index at the destination switch).
    Eject { port: usize },
}

#[derive(Debug, Default)]
struct InputVc {
    buf: VecDeque<Flit>,
    /// Cycle at which header processing completes; `u64::MAX` = idle.
    route_ready_at: u64,
    alloc: Option<OutRef>,
}

#[derive(Debug)]
struct InputUnit {
    node: NodeId,
    /// Upstream directed channel feeding this input (None for injection).
    upstream: Option<usize>,
    vcs: Vec<InputVc>,
}

#[derive(Debug, Clone)]
struct OutVc {
    credits: usize,
    owner: Option<(usize, u8)>,
}

#[derive(Debug)]
struct OutputUnit {
    vcs: Vec<OutVc>,
    rr: usize,
}

/// The simulator: a topology + routing + traffic + configuration, run for a
/// fixed horizon.
pub struct Simulator {
    graph: Arc<Graph>,
    cfg: SimConfig,
    routing: Arc<dyn SimRouting>,
    rng: SmallRng,

    packets: Vec<Packet>,
    inputs: Vec<InputUnit>,
    outputs: Vec<OutputUnit>,
    /// Per-channel in-flight flits: `(arrival_cycle, flit, vc)`.
    links: Vec<VecDeque<(u64, Flit, u8)>>,
    /// In-flight credit returns `(cycle, channel, vc)`.
    credits_in_flight: VecDeque<(u64, usize, u8)>,
    /// Flits sent per directed channel during the measurement window.
    channel_flits: Vec<u64>,
    /// Cycle of the last flit movement (send or ejection).
    last_progress: u64,
    /// Consecutive cycles with packets in flight but no flit movement.
    current_stall: u64,
    /// Longest observed gap with packets in flight but no flit movement.
    longest_stall: u64,
    /// Packets delivered (all time), to know how many are in flight.
    delivered_all_time: u64,
    /// Per-ejection-port busy marker for the current cycle.
    now: u64,

    workload: Workload,
    stats: StatsCollector,
    tracer: Option<PacketTracer>,
    /// Per-cycle scratch: which input units already sent a flit.
    input_used: Vec<bool>,
    /// Per-cycle scratch: which ejection ports are busy.
    eject_used: Vec<bool>,
}

impl Simulator {
    /// Build a simulator over `graph` with the given routing, traffic
    /// pattern, injection rate (packets per cycle per host) and RNG seed —
    /// the *open-loop* workload of the paper's Figure 10.
    pub fn new(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        pattern: TrafficPattern,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        Self::with_workload(
            graph,
            cfg,
            routing,
            Workload::Open {
                pattern,
                packets_per_cycle_per_host: injection_rate,
            },
            seed,
        )
    }

    /// Build a simulator with an explicit [`Workload`] (open-loop traffic
    /// or a closed batch such as an all-to-all exchange).
    pub fn with_workload(
        graph: Arc<Graph>,
        cfg: SimConfig,
        routing: Arc<dyn SimRouting>,
        workload: Workload,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let n = graph.node_count();
        let channels = graph.channel_count();
        let hosts = n * cfg.hosts_per_switch;

        let mut inputs = Vec::with_capacity(channels + hosts);
        for c in 0..channels {
            let (_, to) = graph.channel_endpoints(c);
            inputs.push(InputUnit {
                node: to,
                upstream: Some(c),
                vcs: (0..cfg.vcs)
                    .map(|_| InputVc {
                        buf: VecDeque::new(),
                        route_ready_at: u64::MAX,
                        alloc: None,
                    })
                    .collect(),
            });
        }
        for h in 0..hosts {
            inputs.push(InputUnit {
                node: h / cfg.hosts_per_switch,
                upstream: None,
                vcs: vec![InputVc {
                    buf: VecDeque::new(),
                    route_ready_at: u64::MAX,
                    alloc: None,
                }],
            });
        }

        let outputs = (0..channels)
            .map(|_| OutputUnit {
                vcs: vec![
                    OutVc {
                        credits: cfg.buffer_flits,
                        owner: None,
                    };
                    cfg.vcs as usize
                ],
                rr: 0,
            })
            .collect();

        let stats = StatsCollector::new(&cfg);
        Simulator {
            links: vec![VecDeque::new(); channels],
            channel_flits: vec![0; channels],
            last_progress: 0,
            current_stall: 0,
            longest_stall: 0,
            delivered_all_time: 0,
            graph,
            routing,
            rng: SmallRng::seed_from_u64(seed),
            packets: Vec::new(),
            inputs,
            outputs,
            credits_in_flight: VecDeque::new(),
            now: 0,
            workload,
            input_used: vec![false; channels + hosts],
            eject_used: vec![false; n * cfg.hosts_per_switch],
            cfg,
            stats,
            tracer: None,
        }
    }

    /// Enable packet tracing for every `sample`-th packet; returns self for
    /// chaining. Call [`Self::run_traced`] to get the records back.
    pub fn with_tracer(mut self, sample: u32) -> Self {
        self.tracer = Some(PacketTracer::new(sample));
        self
    }

    /// Like [`Self::run`] but also returns the packet trace (empty when
    /// tracing was not enabled).
    pub fn run_traced(mut self) -> (RunStats, PacketTracer) {
        let total = self.cfg.total_cycles();
        while self.now < total {
            self.step();
            if let Workload::Closed { packets } = &self.workload {
                if self.delivered_all_time == packets.len() as u64 {
                    break;
                }
            }
        }
        let tracer_out = self
            .tracer
            .take()
            .unwrap_or_else(|| PacketTracer::new(u32::MAX));
        let stats = self.finish_stats();
        (stats, tracer_out)
    }

    /// Total number of hosts.
    pub fn hosts(&self) -> usize {
        self.graph.node_count() * self.cfg.hosts_per_switch
    }

    fn injection_input(&self, host: usize) -> usize {
        self.graph.channel_count() + host
    }

    /// Run for the configured horizon (open workloads) or until the batch
    /// drains (closed workloads, still bounded by the horizon) and return
    /// the collected statistics.
    pub fn run(mut self) -> RunStats {
        let total = self.cfg.total_cycles();
        while self.now < total {
            self.step();
            if let Workload::Closed { packets } = &self.workload {
                if self.delivered_all_time == packets.len() as u64 {
                    break;
                }
            }
        }
        self.finish_stats()
    }

    fn finish_stats(self) -> RunStats {
        let hosts = self.hosts();
        let packets = self.packets.len();
        let window = self.cfg.measure_cycles.max(1) as f64;
        let mean_util = if self.channel_flits.is_empty() {
            0.0
        } else {
            self.channel_flits.iter().sum::<u64>() as f64 / window / self.channel_flits.len() as f64
        };
        let max_util = self
            .channel_flits
            .iter()
            .map(|&f| f as f64 / window)
            .fold(0.0f64, f64::max);
        let mut stats = self.stats.finish(&self.cfg, hosts, packets);
        stats.mean_channel_utilization = mean_util;
        stats.max_channel_utilization = max_util;
        stats.completion_cycle = if self.delivered_all_time == packets as u64 && packets > 0 {
            Some(self.last_progress)
        } else {
            None
        };
        stats.longest_stall_cycles = self.longest_stall;
        // Threshold: far beyond any legitimate wait (a full header + link
        // pipeline plus one packet serialization, with a wide margin).
        let threshold =
            16 * (self.cfg.header_delay + self.cfg.link_delay + self.cfg.packet_flits as u64);
        stats.deadlock_suspected =
            self.longest_stall > threshold && self.packets.len() as u64 > self.delivered_all_time;
        stats
    }

    /// Advance one cycle.
    fn step(&mut self) {
        let now = self.now;

        // 1. Credit returns.
        while let Some(&(t, ch, vc)) = self.credits_in_flight.front() {
            if t > now {
                break;
            }
            self.credits_in_flight.pop_front();
            let ovc = &mut self.outputs[ch].vcs[vc as usize];
            ovc.credits += 1;
            debug_assert!(
                ovc.credits <= self.cfg.buffer_flits,
                "credit overflow on channel {ch} vc {vc}"
            );
        }

        // 2. Link arrivals into input buffers.
        for ch in 0..self.links.len() {
            while let Some(&(t, flit, vc)) = self.links[ch].front() {
                if t > now {
                    break;
                }
                self.links[ch].pop_front();
                self.inputs[ch].vcs[vc as usize].buf.push_back(flit);
            }
        }

        // 3. Injection.
        self.inject(now);

        // 4. Routing + VC allocation.
        self.allocate(now);

        // 5. Switch allocation + flit traversal.
        self.traverse(now);

        // Deadlock watchdog: count consecutive cycles in which packets are
        // in flight yet no flit moved anywhere (injection does not count —
        // an open workload keeps injecting into a wedged network).
        let in_flight = self.packets.len() as u64 - self.delivered_all_time;
        if self.last_progress == now || in_flight == 0 {
            self.current_stall = 0;
        } else {
            self.current_stall += 1;
            self.longest_stall = self.longest_stall.max(self.current_stall);
        }

        self.now += 1;
    }

    fn inject(&mut self, now: u64) {
        let hosts = self.hosts();
        match &self.workload {
            Workload::Open {
                pattern,
                packets_per_cycle_per_host,
            } => {
                let pattern = pattern.clone();
                let rate = packets_per_cycle_per_host.min(1.0);
                for h in 0..hosts {
                    if self.rng.gen_bool(rate) {
                        let dest = pattern.pick(h, hosts, &mut self.rng);
                        self.enqueue_packet(now, h, dest);
                    }
                }
            }
            Workload::Closed { packets } => {
                if now == 0 {
                    let batch = packets.clone();
                    for (src, dest) in batch {
                        self.enqueue_packet(now, src, dest);
                    }
                }
            }
        }
    }

    fn enqueue_packet(&mut self, now: u64, src_host: usize, dest_host: usize) {
        debug_assert_ne!(src_host, dest_host);
        let dest_sw = (dest_host / self.cfg.hosts_per_switch) as u32;
        let src_sw = src_host / self.cfg.hosts_per_switch;
        let route = self.routing.init(src_sw, dest_sw as usize);
        let id = self.packets.len() as u32;
        let measured =
            now >= self.cfg.warmup_cycles && now < self.cfg.warmup_cycles + self.cfg.measure_cycles;
        self.packets.push(Packet {
            dest_host: dest_host as u32,
            dest_sw,
            created: now,
            route,
            measured,
        });
        self.stats.on_offered(now, self.cfg.packet_flits);
        if let Some(tr) = &mut self.tracer {
            tr.record(
                now,
                id,
                TraceEvent::Injected {
                    src_sw,
                    dest_sw: dest_sw as usize,
                },
            );
        }
        let input = self.injection_input(src_host);
        for seq in 0..self.cfg.packet_flits as u16 {
            self.inputs[input].vcs[0]
                .buf
                .push_back(Flit { packet: id, seq });
        }
    }

    fn allocate(&mut self, now: u64) {
        let mut candidates: Vec<(usize, u8)> = Vec::new();
        for i in 0..self.inputs.len() {
            let node = self.inputs[i].node;
            for v in 0..self.inputs[i].vcs.len() {
                let ivc = &self.inputs[i].vcs[v];
                let Some(&head) = ivc.buf.front() else {
                    continue;
                };
                if head.seq != 0 || ivc.alloc.is_some() {
                    continue;
                }
                if ivc.route_ready_at == u64::MAX {
                    self.inputs[i].vcs[v].route_ready_at = now + self.cfg.header_delay;
                    continue;
                }
                if now < ivc.route_ready_at {
                    continue;
                }
                let pkt_idx = head.packet as usize;
                let dest_sw = self.packets[pkt_idx].dest_sw as usize;
                if dest_sw == node {
                    // Eject: always grantable (sink arbitrated per cycle).
                    let port = self.packets[pkt_idx].dest_host as usize % self.cfg.hosts_per_switch;
                    self.inputs[i].vcs[v].alloc = Some(OutRef::Eject { port });
                    continue;
                }
                candidates.clear();
                self.routing.candidates(
                    node,
                    dest_sw,
                    &self.packets[pkt_idx].route,
                    &mut candidates,
                );
                debug_assert!(!candidates.is_empty(), "no route from {node} to {dest_sw}");
                let need = match self.cfg.switching {
                    crate::config::Switching::VirtualCutThrough => self.cfg.packet_flits,
                    crate::config::Switching::Wormhole => 1,
                };
                for &(ch, vc) in &candidates {
                    debug_assert_eq!(self.graph.channel_endpoints(ch).0, node);
                    let ovc = &mut self.outputs[ch].vcs[vc as usize];
                    if ovc.owner.is_none() && ovc.credits >= need {
                        ovc.owner = Some((i, v as u8));
                        self.inputs[i].vcs[v].alloc = Some(OutRef::Net { channel: ch, vc });
                        if let Some(tr) = &mut self.tracer {
                            tr.record(
                                now,
                                head.packet,
                                TraceEvent::VcAllocated {
                                    at: node,
                                    channel: ch,
                                    vc,
                                },
                            );
                        }
                        let pkt = &mut self.packets[pkt_idx];
                        let route = &mut pkt.route;
                        self.routing.on_hop(node, dest_sw, route, ch, vc);
                        break;
                    }
                }
            }
        }
    }

    fn traverse(&mut self, now: u64) {
        self.input_used.iter_mut().for_each(|u| *u = false);
        self.eject_used.iter_mut().for_each(|u| *u = false);

        // Network outputs: one flit per channel per cycle, round-robin over
        // the input VCs that own one of its output VCs.
        for ch in 0..self.outputs.len() {
            let nvc = self.outputs[ch].vcs.len();
            let start = self.outputs[ch].rr;
            let mut granted: Option<(usize, u8, u8)> = None; // (input, ivc, ovc)
            for k in 0..nvc {
                let ovc = (start + k) % nvc;
                let Some((i, v)) = self.outputs[ch].vcs[ovc].owner else {
                    continue;
                };
                if self.input_used[i] {
                    continue;
                }
                if self.outputs[ch].vcs[ovc].credits == 0 {
                    continue;
                }
                let ivc = &self.inputs[i].vcs[v as usize];
                if ivc.buf.is_empty() {
                    continue;
                }
                granted = Some((i, v, ovc as u8));
                break;
            }
            if let Some((i, v, ovc)) = granted {
                self.last_progress = now;
                self.input_used[i] = true;
                self.outputs[ch].rr = (ovc as usize + 1) % nvc;
                let flit = self.inputs[i].vcs[v as usize].buf.pop_front().unwrap();
                self.outputs[ch].vcs[ovc as usize].credits -= 1;
                self.links[ch].push_back((now + self.cfg.link_delay, flit, ovc));
                if now >= self.cfg.warmup_cycles
                    && now < self.cfg.warmup_cycles + self.cfg.measure_cycles
                {
                    self.channel_flits[ch] += 1;
                }
                // Return a credit upstream for the flit leaving this buffer.
                if let Some(up) = self.inputs[i].upstream {
                    self.credits_in_flight
                        .push_back((now + self.cfg.credit_delay, up, v));
                }
                if flit.seq as usize + 1 == self.cfg.packet_flits {
                    // tail: release ownership and input state
                    self.outputs[ch].vcs[ovc as usize].owner = None;
                    let ivc = &mut self.inputs[i].vcs[v as usize];
                    ivc.alloc = None;
                    ivc.route_ready_at = u64::MAX;
                    if let Some(tr) = &mut self.tracer {
                        let at = self.inputs[i].node;
                        tr.record(now, flit.packet, TraceEvent::TailSent { at, channel: ch });
                    }
                }
            }
        }

        // Ejection: one flit per (switch, port) per cycle.
        let ports = self.cfg.hosts_per_switch;
        // i is an input-unit id used against several arrays; keep indexed.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.inputs.len() {
            if self.input_used[i] {
                continue;
            }
            let node = self.inputs[i].node;
            for v in 0..self.inputs[i].vcs.len() {
                let Some(OutRef::Eject { port }) = self.inputs[i].vcs[v].alloc else {
                    continue;
                };
                if self.inputs[i].vcs[v].buf.is_empty() {
                    continue;
                }
                let slot = node * ports + port;
                if self.eject_used[slot] || self.input_used[i] {
                    continue;
                }
                self.eject_used[slot] = true;
                self.input_used[i] = true;
                self.last_progress = now;
                let flit = self.inputs[i].vcs[v].buf.pop_front().unwrap();
                if let Some(up) = self.inputs[i].upstream {
                    self.credits_in_flight
                        .push_back((now + self.cfg.credit_delay, up, v as u8));
                }
                if flit.seq as usize + 1 == self.cfg.packet_flits {
                    let ivc = &mut self.inputs[i].vcs[v];
                    ivc.alloc = None;
                    ivc.route_ready_at = u64::MAX;
                    self.delivered_all_time += 1;
                    if let Some(tr) = &mut self.tracer {
                        tr.record(now, flit.packet, TraceEvent::Delivered { at: node });
                    }
                    let pkt = &self.packets[flit.packet as usize];
                    self.stats
                        .on_delivered(now, pkt.created, pkt.measured, self.cfg.packet_flits);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::AdaptiveEscape;
    use dsn_core::ring::Ring;
    use dsn_core::torus::Torus;

    fn tiny_sim(rate: f64) -> Simulator {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        Simulator::new(g, cfg, routing, TrafficPattern::Uniform, rate, 42)
    }

    #[test]
    fn low_load_delivers_everything() {
        let stats = tiny_sim(0.002).run();
        assert!(stats.delivered_packets > 0, "nothing delivered");
        assert!(
            stats.delivery_ratio() > 0.95,
            "delivery ratio {} too low at near-zero load",
            stats.delivery_ratio()
        );
        assert!(stats.avg_latency_cycles > 0.0);
    }

    #[test]
    fn zero_load_latency_matches_analytical_floor() {
        // One measured hop costs header + link; the packet also pays
        // serialization (packet_flits) and final header + ejection.
        let stats = tiny_sim(0.0005).run();
        let cfg = SimConfig::test_small();
        let floor = (cfg.header_delay + cfg.link_delay + cfg.packet_flits as u64) as f64;
        assert!(
            stats.avg_latency_cycles >= floor,
            "latency {} below physical floor {floor}",
            stats.avg_latency_cycles
        );
    }

    #[test]
    fn higher_load_never_lowers_latency() {
        let low = tiny_sim(0.002).run();
        let high = tiny_sim(0.02).run();
        assert!(
            high.avg_latency_cycles >= low.avg_latency_cycles * 0.9,
            "latency should not improve with load: low {} high {}",
            low.avg_latency_cycles,
            high.avg_latency_cycles
        );
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let stats = tiny_sim(0.01).run();
        let offered = stats.offered_flits_per_cycle_per_host;
        let accepted = stats.accepted_flits_per_cycle_per_host;
        assert!(
            (accepted - offered).abs() / offered < 0.15,
            "accepted {accepted} vs offered {offered}"
        );
    }

    #[test]
    fn torus_with_dor_runs() {
        let torus = Arc::new(Torus::new(&[4, 4]).unwrap());
        let g = Arc::new(torus.graph().clone());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(crate::routing::SourceRouted::torus_dor(torus));
        let sim = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 7);
        let stats = sim.run();
        assert!(stats.delivered_packets > 0);
        assert!(stats.delivery_ratio() > 0.9);
    }

    #[test]
    fn wormhole_mode_delivers_at_low_load() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig {
            switching: crate::config::Switching::Wormhole,
            buffer_flits: 2,
            ..SimConfig::test_small()
        };
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats = Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.002, 5).run();
        assert!(stats.delivery_ratio() > 0.95, "{}", stats.delivery_ratio());
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn wormhole_saturates_no_later_than_vct() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mk = |mode, buffer| {
            let cfg = SimConfig {
                switching: mode,
                buffer_flits: buffer,
                ..SimConfig::test_small()
            };
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::new(g.clone(), cfg, routing, TrafficPattern::Uniform, 0.05, 5).run()
        };
        let vct = mk(crate::config::Switching::VirtualCutThrough, 8);
        let worm = mk(crate::config::Switching::Wormhole, 2);
        assert!(
            worm.accepted_flits_per_cycle_per_host <= vct.accepted_flits_per_cycle_per_host * 1.05
        );
    }

    #[test]
    fn all_to_all_batch_completes() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 50_000; // plenty of horizon for the batch
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let stats =
            Simulator::with_workload(g, cfg, routing, crate::workload::Workload::all_to_all(8), 3)
                .run();
        let makespan = stats.completion_cycle.expect("batch must finish");
        assert!(makespan > 0);
        assert_eq!(stats.total_packets_all_time, 8 * 7);
        assert!(!stats.deadlock_suspected);
    }

    #[test]
    fn batch_makespan_scales_with_size() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let mut cfg = SimConfig::test_small();
        cfg.drain_cycles = 100_000;
        let run = |count: usize| {
            let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
            Simulator::with_workload(
                g.clone(),
                cfg.clone(),
                routing,
                crate::workload::Workload::ring_shift(8, 1, count),
                3,
            )
            .run()
            .completion_cycle
            .expect("finishes")
        };
        assert!(run(8) > run(1));
    }

    #[test]
    fn tracer_records_full_packet_lifecycles() {
        let g = Arc::new(Ring::new(8).unwrap().into_graph());
        let cfg = SimConfig::test_small();
        let routing = Arc::new(AdaptiveEscape::new(g.clone(), cfg.vcs));
        let sim =
            Simulator::new(g, cfg, routing, TrafficPattern::Uniform, 0.005, 11).with_tracer(1);
        let (stats, trace) = sim.run_traced();
        assert!(stats.delivered_packets > 0);
        assert!(!trace.records().is_empty());
        // Find a delivered packet and sanity-check its timeline ordering
        // and latency decomposition.
        let delivered: Vec<u32> = trace
            .records()
            .iter()
            .filter_map(|&(_, p, e)| {
                matches!(e, crate::trace::TraceEvent::Delivered { .. }).then_some(p)
            })
            .collect();
        assert!(!delivered.is_empty());
        for &p in delivered.iter().take(5) {
            let timeline = trace.packet_timeline(p);
            assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
            assert!(matches!(
                timeline[0].2,
                crate::trace::TraceEvent::Injected { .. }
            ));
            let (queue, transit, total) = trace.latency_breakdown(p).expect("delivered");
            assert_eq!(queue + transit, total);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_sim(0.01).run();
        let b = tiny_sim(0.01).run();
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
    }
}
